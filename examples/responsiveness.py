#!/usr/bin/env python3
"""Responsiveness under network fluctuation and a crash (paper §VI-D, Fig. 15).

The fault schedule is fully declarative: a window of large, variable network
delay followed by a replica crash, expressed as two scenario events in a
JSON-style dict and handed to ``api.run`` alongside the cluster
configuration.  The optimistically responsive protocol (HotStuff) resumes at
network speed as soon as the fluctuation ends; the others depend on how the
timeout was tuned.

Run with::

    python examples/responsiveness.py
"""

from repro import api

PROTOCOLS = ["hotstuff", "2chainhs", "streamlet"]

FLUCTUATION_START, FLUCTUATION_END = 3.0, 7.0
CRASH_AT, TOTAL = 8.0, 14.0

#: The whole Fig. 15 fault schedule, as data.
SCENARIO = {
    "name": "responsiveness",
    "duration": TOTAL,
    "events": [
        {"kind": "network-fluctuation", "at": FLUCTUATION_START,
         "duration": FLUCTUATION_END - FLUCTUATION_START,
         "min_delay": 0.05, "max_delay": 0.2},
        {"kind": "crash-replica", "at": CRASH_AT, "replica": "last"},
    ],
}

BASE = api.Configuration(
    num_nodes=4,
    block_size=400,
    payload_size=128,
    concurrency=200,
    num_clients=2,
    runtime=TOTAL,
    warmup=0.0,
    cooldown=0.0,
    cost_profile="standard",
    election="hash",
    request_timeout=1.0,
    mempool_capacity=4000,
    seed=41,
)


def sparkline(values, peak):
    """Render a throughput timeline as a coarse text sparkline."""
    blocks = " .:-=+*#%@"
    if peak <= 0:
        return ""
    chars = []
    for value in values:
        index = min(len(blocks) - 1, int(round(value / peak * (len(blocks) - 1))))
        chars.append(blocks[index])
    return "".join(chars)


def main() -> None:
    for setting, timeout, wait in [("small timeout", 0.01, 0.0), ("large timeout", 0.25, 0.25)]:
        print(f"\n=== {setting}: view timeout {timeout * 1e3:.0f} ms ===")
        print(f"(fluctuation {FLUCTUATION_START:.0f}-{FLUCTUATION_END:.0f}s, crash at {CRASH_AT:.0f}s)")
        for protocol in PROTOCOLS:
            config = BASE.replace(protocol=protocol, view_timeout=timeout, propose_wait_after_tc=wait)
            result = api.run(config, scenario=SCENARIO)
            values = [tps for _, tps in result.timeline]
            peak = max(values) if values else 0.0
            print(
                f"{protocol:<10} before={result.mean_throughput(0.0, FLUCTUATION_START):>7,.0f}  "
                f"during={result.mean_throughput(FLUCTUATION_START, FLUCTUATION_END):>7,.0f}  "
                f"after-crash={result.mean_throughput(CRASH_AT, TOTAL):>7,.0f} Tx/s"
            )
            print(f"           |{sparkline(values, peak)}|")


if __name__ == "__main__":
    main()
