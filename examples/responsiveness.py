#!/usr/bin/env python3
"""Responsiveness under network fluctuation and a crash (paper §VI-D, Fig. 15).

Injects a window of large, variable network delay into a 4-replica cluster
under load, then crashes one replica, and prints a throughput timeline per
protocol for two timeout settings.  The optimistically responsive protocol
(HotStuff) resumes at network speed as soon as the fluctuation ends; the
others depend on how the timeout was tuned.

Run with::

    python examples/responsiveness.py
"""

from repro import Configuration, ResponsivenessScenario, run_responsiveness

PROTOCOLS = ["hotstuff", "2chainhs", "streamlet"]


def sparkline(values, peak):
    """Render a throughput timeline as a coarse text sparkline."""
    blocks = " .:-=+*#%@"
    if peak <= 0:
        return ""
    chars = []
    for value in values:
        index = min(len(blocks) - 1, int(round(value / peak * (len(blocks) - 1))))
        chars.append(blocks[index])
    return "".join(chars)


def main() -> None:
    scenario = ResponsivenessScenario(
        fluctuation_start=3.0,
        fluctuation_duration=4.0,
        fluctuation_min=0.05,
        fluctuation_max=0.2,
        crash_at=8.0,
        total_duration=14.0,
        bucket=0.5,
    )
    base = Configuration(
        num_nodes=4,
        block_size=400,
        payload_size=128,
        concurrency=200,
        num_clients=2,
        runtime=scenario.total_duration,
        warmup=0.0,
        cooldown=0.0,
        cost_profile="standard",
        election="hash",
        request_timeout=1.0,
        mempool_capacity=4000,
        seed=41,
    )

    for setting, timeout, wait in [("small timeout", 0.01, 0.0), ("large timeout", 0.25, 0.25)]:
        print(f"\n=== {setting}: view timeout {timeout * 1e3:.0f} ms ===")
        print(f"(fluctuation {scenario.fluctuation_start:.0f}-{scenario.fluctuation_end:.0f}s, crash at {scenario.crash_at:.0f}s)")
        for protocol in PROTOCOLS:
            config = base.replace(protocol=protocol, view_timeout=timeout, propose_wait_after_tc=wait)
            result = run_responsiveness(config, scenario)
            values = [tps for _, tps in result.timeline]
            peak = max(values) if values else 0.0
            print(
                f"{protocol:<10} before={result.throughput_before:>7,.0f}  "
                f"during={result.throughput_during:>7,.0f}  "
                f"after-crash={result.throughput_after:>7,.0f} Tx/s"
            )
            print(f"           |{sparkline(values, peak)}|")


if __name__ == "__main__":
    main()
