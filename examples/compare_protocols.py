#!/usr/bin/env python3
"""Compare the three protocols the paper evaluates under identical conditions.

Runs HotStuff, two-chain HotStuff, and Streamlet on the same cluster, the
same workload, and the same network through the ``repro.api`` facade, then
prints a side-by-side comparison — the "apples-to-apples" comparison Bamboo
exists to make possible.  The expected pattern (paper §VI-B): 2CHS commits
one round earlier than HotStuff (lower latency, same throughput), and
Streamlet pays for vote broadcasting and message echoing with lower
throughput.

Run with::

    python examples/compare_protocols.py
"""

from repro import api

PROTOCOLS = ["hotstuff", "2chainhs", "streamlet"]

BASE = api.Configuration(
    num_nodes=4,
    block_size=100,
    payload_size=128,
    concurrency=50,
    num_clients=2,
    runtime=2.0,
    warmup=0.5,
    cost_profile="fast",
    view_timeout=0.1,
    seed=7,
)


def main() -> None:
    print(f"{'protocol':<12} {'Tx/s':>10} {'latency':>10} {'p99':>10} {'BI':>6} {'CGR':>6}")
    for protocol in PROTOCOLS:
        result = api.run(BASE.replace(protocol=protocol))
        metrics = result.metrics
        print(
            f"{protocol:<12} {metrics.throughput_tps:>10,.0f} "
            f"{metrics.mean_latency * 1e3:>8.2f}ms {metrics.p99_latency * 1e3:>8.2f}ms "
            f"{metrics.block_interval:>6.2f} {metrics.chain_growth_rate:>6.2f}"
        )

    print(
        "\nExpected pattern: 2chainhs has the lowest latency (two-chain commit), "
        "hotstuff pays one extra round, streamlet trades throughput for simplicity."
    )


if __name__ == "__main__":
    main()
