#!/usr/bin/env python3
"""Quickstart: run a 4-replica HotStuff cluster and print its metrics.

This is the smallest useful use of the library: describe one experiment as a
plain JSON-style dict, hand it to the ``repro.api`` facade, and inspect
throughput, latency, chain growth rate, and block interval — the four
metrics the paper evaluates.

Run with::

    python examples/quickstart.py
"""

from repro import api

CONFIG = {
    "protocol": "hotstuff",   # any name from api.available("protocols")
    "num_nodes": 4,
    "block_size": 100,
    "payload_size": 0,
    "concurrency": 50,        # outstanding requests per client
    "num_clients": 2,
    "runtime": 2.0,           # measured simulated seconds
    "warmup": 0.5,
    "cost_profile": "fast",   # microsecond-scale crypto costs: fast to simulate
    "view_timeout": 0.1,
    "seed": 1,
}


def main() -> None:
    print(f"Available protocols: {', '.join(api.available('protocols'))}")
    print(f"Running {CONFIG['protocol']} with {CONFIG['num_nodes']} replicas...")
    result = api.run(CONFIG)
    metrics = result.metrics

    print(f"  throughput        : {metrics.throughput_tps:,.0f} Tx/s")
    print(f"  mean latency      : {metrics.mean_latency * 1e3:.2f} ms")
    print(f"  p99 latency       : {metrics.p99_latency * 1e3:.2f} ms")
    print(f"  committed blocks  : {metrics.committed_blocks}")
    print(f"  chain growth rate : {metrics.chain_growth_rate:.2f}")
    print(f"  block interval    : {metrics.block_interval:.2f} views")
    print(f"  highest view      : {result.highest_view}")
    print(f"  chains consistent : {result.consistent}")
    print(f"  safety violations : {metrics.safety_violations}")


if __name__ == "__main__":
    main()
