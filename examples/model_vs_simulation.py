#!/usr/bin/env python3
"""Back-of-the-envelope forecasting with the analytical model (paper §V).

The queuing model predicts end-to-end latency from first principles
(t_L + t_s + t_commit + w_Q).  This example prints the model's building
blocks for each protocol, then checks the prediction against an actual
simulation (run through the ``repro.api`` facade) at a moderate arrival
rate — the same cross-validation the paper performs in Figure 8.

Run with::

    python examples/model_vs_simulation.py
"""

from repro import AnalyticalModel, ModelParameters, api

PROTOCOLS = ["hotstuff", "2chainhs", "streamlet"]

CONFIG = api.Configuration(
    num_nodes=4,
    block_size=400,
    payload_size=0,
    num_clients=2,
    runtime=1.5,
    warmup=0.4,
    cost_profile="standard",
    view_timeout=0.5,
    mempool_capacity=4000,
    seed=13,
)


def main() -> None:
    print("Model building blocks (milliseconds):")
    print(f"{'protocol':<12} {'t_s':>8} {'t_commit':>9} {'t_Q':>8} {'t_NIC':>8} {'saturation':>12}")
    models = {}
    for protocol in PROTOCOLS:
        model = AnalyticalModel(protocol, ModelParameters.from_configuration(CONFIG))
        models[protocol] = model
        summary = model.summary()
        print(
            f"{protocol:<12} {summary['t_s'] * 1e3:>8.2f} {summary['t_commit'] * 1e3:>9.2f} "
            f"{summary['t_q'] * 1e3:>8.3f} {summary['t_nic'] * 1e3:>8.3f} "
            f"{summary['saturation_tps']:>10,.0f}/s"
        )

    print("\nModel vs. simulation at 40% of HotStuff's saturation rate:")
    rate = 0.4 * models["hotstuff"].saturation_rate()
    print(f"{'protocol':<12} {'model (ms)':>12} {'simulated (ms)':>15}")
    for protocol in PROTOCOLS:
        predicted = models[protocol].latency(rate) * 1e3
        result = api.run(CONFIG.replace(protocol=protocol, arrival_rate=rate))
        measured = result.metrics.mean_latency * 1e3
        print(f"{protocol:<12} {predicted:>12.1f} {measured:>15.1f}")

    print(
        "\nThe model tracks the simulator because both charge the same CPU, NIC, "
        "and propagation costs — exactly how the paper validates Bamboo."
    )


if __name__ == "__main__":
    main()
