#!/usr/bin/env python3
"""Demonstrate the two Byzantine strategies of the paper (§IV-A, §VI-C).

Runs an 8-replica cluster with 2 Byzantine replicas performing either the
forking attack (proposing conflicting blocks that overwrite uncommitted
ancestors) or the silence attack (not proposing at all), and shows how the
four metrics respond for each protocol:

* forking: HotStuff loses two blocks per attack, 2CHS one, Streamlet none;
* silence: chain growth of the HotStuff variants drops (the pre-silence
  block loses its certificate) while Streamlet's stays at 1, but every
  protocol loses throughput to the timeouts.

Both strategies come from the Byzantine-strategy registry
(``api.available("strategies")``); registering a new attack is a subclass
plus a decorator — see README.md.

Run with::

    python examples/byzantine_attacks.py
"""

from repro import api

PROTOCOLS = ["hotstuff", "2chainhs", "streamlet"]
STRATEGIES = ["forking", "silence"]

BASE = api.Configuration(
    num_nodes=8,
    byzantine_nodes=2,
    block_size=50,
    concurrency=30,
    num_clients=2,
    runtime=1.5,
    warmup=0.3,
    cost_profile="fast",
    view_timeout=0.05,
    election="hash",        # per-view random leaders, as in the paper's overview
    request_timeout=0.3,    # clients re-submit requests stuck at silent replicas
    seed=5,
)


def main() -> None:
    for strategy in STRATEGIES:
        print(f"\n=== {strategy} attack: 8 replicas, 2 Byzantine ===")
        print(f"{'protocol':<12} {'Tx/s':>9} {'latency':>10} {'CGR':>6} {'BI':>6} {'forked':>7}")
        for protocol in PROTOCOLS:
            result = api.run(BASE.replace(protocol=protocol, strategy=strategy))
            metrics = result.metrics
            print(
                f"{protocol:<12} {metrics.throughput_tps:>9,.0f} "
                f"{metrics.mean_latency * 1e3:>8.1f}ms {metrics.chain_growth_rate:>6.2f} "
                f"{metrics.block_interval:>6.2f} {metrics.blocks_forked:>7}"
            )
            assert metrics.safety_violations == 0, "attacks must never break safety"

    print(
        "\nNote how Streamlet's chain growth rate stays at 1.0 under both attacks "
        "(vote broadcasting + the longest-chain rule), while HotStuff loses more "
        "blocks to forking than two-chain HotStuff does."
    )


if __name__ == "__main__":
    main()
