"""Integration tests: full clusters running each protocol end to end.

These tests run the whole stack (clients, network, replicas, metrics) for a
short simulated interval and assert the qualitative properties the paper's
evaluation relies on: liveness, cross-replica consistency, the expected
block-interval baselines, and the latency ordering between protocols.
"""

import pytest

from repro.bench.config import Configuration
from repro.bench.runner import build_cluster, run_experiment

FAST = dict(
    num_nodes=4,
    block_size=30,
    runtime=0.8,
    warmup=0.2,
    cooldown=0.2,
    concurrency=15,
    num_clients=2,
    cost_profile="fast",
    view_timeout=0.05,
    seed=3,
)


def run(protocol, **overrides):
    params = dict(FAST)
    params.update(overrides)
    return run_experiment(Configuration(protocol=protocol, **params))


class TestHappyPathAllProtocols:
    @pytest.mark.parametrize("protocol", ["hotstuff", "2chainhs", "streamlet", "fasthotstuff", "lbft"])
    def test_commits_and_stays_consistent(self, protocol):
        result = run(protocol)
        assert result.metrics.committed_transactions > 0
        assert result.metrics.throughput_tps > 0
        assert result.consistent
        assert result.metrics.safety_violations == 0

    @pytest.mark.parametrize("protocol", ["hotstuff", "2chainhs", "streamlet"])
    def test_no_forks_in_fault_free_runs(self, protocol):
        result = run(protocol)
        assert result.metrics.blocks_forked == 0
        # Blocks added right at the window edge may commit just after it, so
        # allow a small boundary effect on the ratio.
        assert result.metrics.chain_growth_rate == pytest.approx(1.0, abs=0.02)

    def test_block_interval_baselines(self):
        # Paper §VI-C: BI starts at 3 for HotStuff and 2 for 2CHS; Streamlet
        # commits a block one view after the next block is certified.
        assert run("hotstuff").metrics.block_interval == pytest.approx(3.0, abs=0.15)
        assert run("2chainhs").metrics.block_interval == pytest.approx(2.0, abs=0.15)
        assert run("streamlet").metrics.block_interval == pytest.approx(2.0, abs=0.3)

    def test_hotstuff_latency_exceeds_two_chain(self):
        # One extra round of voting before commit (paper §II-C).
        hs = run("hotstuff")
        two_chain = run("2chainhs")
        assert hs.metrics.mean_latency > two_chain.metrics.mean_latency

    def test_streamlet_throughput_is_lowest(self):
        # Vote broadcasting and message echoing cost Streamlet throughput
        # even in a 4-node cluster (paper §VI-B).
        streamlet = run("streamlet")
        hotstuff = run("hotstuff")
        assert streamlet.metrics.throughput_tps < hotstuff.metrics.throughput_tps

    def test_latency_samples_are_collected(self):
        result = run("hotstuff")
        assert result.metrics.latency_samples > 50


class TestWorkloadKnobs:
    def test_larger_blocks_do_not_reduce_throughput(self):
        small = run("hotstuff", block_size=5, concurrency=30)
        large = run("hotstuff", block_size=60, concurrency=30)
        assert large.metrics.throughput_tps >= small.metrics.throughput_tps * 0.9

    def test_payload_size_increases_latency(self):
        light = run("hotstuff", payload_size=0)
        heavy = run("hotstuff", payload_size=4096)
        assert heavy.metrics.mean_latency > light.metrics.mean_latency

    def test_added_network_delay_increases_latency(self):
        near = run("hotstuff")
        far = run("hotstuff", extra_delay_mean=0.005, extra_delay_stddev=0.001)
        assert far.metrics.mean_latency > near.metrics.mean_latency + 0.004

    def test_more_nodes_increase_latency(self):
        small = run("hotstuff", num_nodes=4)
        large = run("hotstuff", num_nodes=8)
        assert large.metrics.mean_latency > small.metrics.mean_latency

    def test_throughput_scales_with_offered_load_until_saturation(self):
        light = run("hotstuff", concurrency=2)
        heavy = run("hotstuff", concurrency=40)
        assert heavy.metrics.throughput_tps > light.metrics.throughput_tps


class TestClusterInternals:
    def test_happy_path_has_no_pacemaker_timeouts(self):
        config = Configuration(protocol="hotstuff", **FAST)
        cluster = build_cluster(config)
        cluster.start()
        cluster.run()
        for replica in cluster.replicas.values():
            assert replica.pacemaker.stats.local_timeouts == 0

    def test_observer_is_honest_and_collects_metrics(self):
        config = Configuration(protocol="hotstuff", **FAST)
        cluster = build_cluster(config)
        cluster.start()
        cluster.run()
        assert cluster.observer_id == "r0"
        assert cluster.metrics.committed_blocks
        assert cluster.replicas["r1"].metrics is None

    def test_executor_state_matches_across_replicas(self):
        config = Configuration(protocol="hotstuff", **FAST)
        cluster = build_cluster(config)
        cluster.start()
        cluster.run()
        # Compare kv state over the common committed prefix by re-checking
        # the chain consistency hash (state is derived from the chain).
        assert cluster.consistency_check()

    def test_streamlet_sends_more_messages_than_hotstuff(self):
        hs_cluster = build_cluster(Configuration(protocol="hotstuff", **FAST))
        hs_cluster.start()
        hs_cluster.run()
        sl_cluster = build_cluster(Configuration(protocol="streamlet", **FAST))
        sl_cluster.start()
        sl_cluster.run()
        hs_msgs = hs_cluster.network.stats.messages_sent / max(1, hs_cluster.metrics.summarize().committed_blocks)
        sl_msgs = sl_cluster.network.stats.messages_sent / max(1, sl_cluster.metrics.summarize().committed_blocks)
        assert sl_msgs > 2 * hs_msgs
