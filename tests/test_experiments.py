"""Tests for the campaign layer: specs, stores, runners, serialization.

The fast configurations here mirror the other integration tests (tiny
blocks, sub-second horizons, the microsecond cost profile) so a whole
campaign runs in a few seconds.
"""

import json

import pytest

from repro import api
from repro.bench.config import Configuration
from repro.bench.metrics import RunMetrics
from repro.bench.runner import ExperimentResult, run_experiment
from repro.bench.sweeps import SweepPoint, saturation_sweep
from repro.experiments import (
    CampaignRunner,
    ExperimentSpec,
    ResultStore,
    SpecError,
    StoreError,
    TruncatedRecordWarning,
    encode_record,
    run_key,
    timeline_mean,
)

FAST = dict(
    block_size=20,
    runtime=0.5,
    warmup=0.1,
    cooldown=0.1,
    concurrency=8,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.05,
    request_timeout=0.2,
)

BASE = Configuration(**FAST)


class TestSpecExpansion:
    def test_grid_is_cartesian_product_in_insertion_order(self):
        spec = ExperimentSpec(
            base=BASE, grid={"protocol": ["hotstuff", "2chainhs"], "block_size": [20, 40]}
        )
        runs = spec.expand()
        assert len(runs) == len(spec) == 4
        combos = [(r.config.protocol, r.config.block_size) for r in runs]
        assert combos == [("hotstuff", 20), ("hotstuff", 40), ("2chainhs", 20), ("2chainhs", 40)]
        assert [r.index for r in runs] == [0, 1, 2, 3]

    def test_zip_axes_advance_together(self):
        spec = ExperimentSpec(
            base=BASE,
            zip_axes={"view_timeout": [0.05, 0.2], "propose_wait_after_tc": [0.0, 0.2]},
        )
        runs = spec.expand()
        assert [(r.config.view_timeout, r.config.propose_wait_after_tc) for r in runs] == [
            (0.05, 0.0),
            (0.2, 0.2),
        ]

    def test_points_cross_zip_cross_grid(self):
        spec = ExperimentSpec(
            base=BASE,
            points=[{"payload_size": 0}, {"payload_size": 64}],
            zip_axes={"view_timeout": [0.05, 0.1]},
            grid={"protocol": ["hotstuff", "2chainhs"]},
        )
        assert len(spec.expand()) == 2 * 2 * 2

    def test_tags_are_recorded_but_never_touch_the_config(self):
        spec = ExperimentSpec(base=BASE, points=[{"_series": "HS", "protocol": "hotstuff"}])
        (run,) = spec.expand()
        assert run.params == {"protocol": "hotstuff", "_series": "HS"}
        assert run.config == BASE.replace(protocol="hotstuff")

    def test_repetitions_increment_seed_by_default(self):
        spec = ExperimentSpec(base=BASE.replace(seed=10), repetitions=3)
        runs = spec.expand()
        assert [r.config.seed for r in runs] == [10, 11, 12]
        assert [r.params["_repetition"] for r in runs] == [0, 1, 2]

    def test_fixed_seed_policy_reuses_the_seed(self):
        spec = ExperimentSpec(base=BASE.replace(seed=10), repetitions=2, seed_policy="fixed")
        runs = spec.expand()
        assert [r.config.seed for r in runs] == [10, 10]
        # Each same-seed repetition keeps its own identity (salted key), so
        # repeats execute and are stored separately instead of deduplicating.
        assert len({r.run_id for r in runs}) == 2

    def test_unknown_config_field_rejected(self):
        with pytest.raises(SpecError, match="not a Configuration field"):
            ExperimentSpec(base=BASE, grid={"blocksize": [1]})

    def test_unequal_zip_lengths_rejected(self):
        with pytest.raises(SpecError, match="equal lengths"):
            ExperimentSpec(base=BASE, zip_axes={"block_size": [1, 2], "payload_size": [0]})

    def test_overlapping_axes_rejected(self):
        with pytest.raises(SpecError, match="both axes"):
            ExperimentSpec(
                base=BASE, grid={"block_size": [1]}, zip_axes={"block_size": [2]}
            )
        with pytest.raises(SpecError, match="point override"):
            ExperimentSpec(
                base=BASE, grid={"block_size": [1]}, points=[{"block_size": 2}]
            )

    def test_bad_policy_and_repetitions_rejected(self):
        with pytest.raises(SpecError, match="seed_policy"):
            ExperimentSpec(base=BASE, seed_policy="random")
        with pytest.raises(SpecError, match="repetitions"):
            ExperimentSpec(base=BASE, repetitions=0)


class TestSpecSerialization:
    def test_round_trip_through_json(self):
        spec = ExperimentSpec(
            name="trip",
            base=BASE,
            grid={"protocol": ["hotstuff", "2chainhs"]},
            points=[{"_tag": "a", "block_size": 20}],
            scenario={"events": [{"kind": "crash-replica", "at": 0.3, "replica": "last"}]},
            repetitions=2,
            seed_policy="fixed",
        )
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone.to_dict() == spec.to_dict()
        assert [r.run_id for r in clone.expand()] == [r.run_id for r in spec.expand()]

    def test_from_dict_accepts_wrapper_and_zip_alias(self):
        data = {"spec": {"name": "w", "base": dict(FAST), "zip": {"block_size": [20, 40]}}}
        spec = ExperimentSpec.from_dict(data)
        assert spec.name == "w"
        assert len(spec.expand()) == 2

    def test_from_dict_rejects_unknown_top_level_keys(self):
        # A flat Configuration dict must not silently become the default
        # spec; it fails naming the stray keys.
        with pytest.raises(SpecError, match="unknown spec keys.*protocol"):
            ExperimentSpec.from_dict({"protocol": "2chainhs", "block_size": 999})
        with pytest.raises(SpecError, match="repetiton"):
            ExperimentSpec.from_dict({"base": dict(FAST), "repetiton": 3})

    def test_grid_helper_builds_a_spec(self):
        spec = api.grid(dict(FAST), name="g", protocol=["hotstuff"], block_size=[20, 40])
        assert isinstance(spec, ExperimentSpec)
        assert len(spec) == 2
        assert spec.name == "g"

    def test_grid_helper_rejects_scalar_axis_values(self):
        with pytest.raises(TypeError, match="must be a list"):
            api.grid(dict(FAST), protocol="hotstuff")
        with pytest.raises(TypeError, match="must be a list"):
            api.grid(dict(FAST), block_size=400)


class TestRunKey:
    def test_key_depends_on_config_content_only(self):
        a = run_key(BASE.replace(seed=1))
        assert a == run_key(Configuration(**FAST).replace(seed=1))
        assert a != run_key(BASE.replace(seed=2))

    def test_scenario_changes_the_key(self):
        from repro.scenario import Scenario

        scenario = Scenario(events=[{"kind": "crash-replica", "at": 0.3, "replica": "last"}])
        assert run_key(BASE) != run_key(BASE, scenario)


class TestResultStore:
    def test_add_get_contains_persist(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        record = {"run_id": "abc", "campaign": "c", "metrics": {"throughput_tps": 1.0}}
        store.add(record)
        assert "abc" in store
        assert len(store) == 1
        assert store.get("abc") == record
        reloaded = ResultStore(tmp_path / "s")
        assert reloaded.get("abc") == record
        assert reloaded.keys() == ["abc"]

    def test_records_filter_by_campaign(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.add({"run_id": "a", "campaign": "x"})
        store.add({"run_id": "b", "campaign": "y"})
        assert [r["run_id"] for r in store.records("x")] == ["a"]

    def test_rejects_record_without_run_id(self, tmp_path):
        with pytest.raises(StoreError, match="run_id"):
            ResultStore(tmp_path / "s").add({"campaign": "c"})

    def test_rejects_corrupt_file(self, tmp_path):
        # Corruption anywhere but the final line is not a crash signature
        # (killed workers only ever truncate the tail) and still refuses
        # the store.
        root = tmp_path / "s"
        root.mkdir()
        (root / "results.jsonl").write_text('not json\n{"run_id": "ok"}\n')
        with pytest.raises(StoreError, match="not valid JSON"):
            ResultStore(root)

    def test_truncated_final_line_is_skipped_with_warning(self, tmp_path):
        # A worker killed mid-append leaves a partial last line: loading
        # keeps every complete record, warns, and compact() heals the file.
        store = ResultStore(tmp_path / "s")
        store.add({"run_id": "aaa", "v": 1})
        store.add({"run_id": "bbb", "v": 2})
        with store.path.open("a") as handle:
            handle.write('{"run_id": "ccc", "v":')  # killed mid-write
        with pytest.warns(TruncatedRecordWarning, match="truncated final record"):
            reopened = ResultStore(tmp_path / "s")
        assert reopened.keys() == ["aaa", "bbb"]
        assert "ccc" not in reopened
        reopened.compact()
        assert len(reopened.path.read_text().splitlines()) == 2
        # The healed file reloads silently.
        assert ResultStore(tmp_path / "s").keys() == ["aaa", "bbb"]

    def test_add_after_truncated_tail_never_fuses_lines(self, tmp_path):
        # Appending onto a tail that lost its newline would fuse the new
        # record with the remnant; the first add() must rewrite instead, so
        # a crash *before* compact() still leaves a loadable file.
        store = ResultStore(tmp_path / "s")
        store.add({"run_id": "aaa"})
        with store.path.open("a") as handle:
            handle.write('{"run_id": "bbb", "v":')  # killed mid-write
        with pytest.warns(TruncatedRecordWarning):
            reopened = ResultStore(tmp_path / "s")
        reopened.add({"run_id": "ccc"})
        # No compact() ran: the file must already be clean.
        assert ResultStore(tmp_path / "s").keys() == ["aaa", "ccc"]
        lines = reopened.path.read_text().splitlines()
        assert lines == [encode_record({"run_id": "aaa"}),
                         encode_record({"run_id": "ccc"})]

    def test_add_after_terminated_junk_tail_rewrites_too(self, tmp_path):
        # A corrupt final line *with* its newline must equally not be
        # stranded mid-file by a later append.
        store = ResultStore(tmp_path / "s")
        store.add({"run_id": "aaa"})
        with store.path.open("a") as handle:
            handle.write("junk tail\n")
        with pytest.warns(TruncatedRecordWarning):
            reopened = ResultStore(tmp_path / "s")
        reopened.add({"run_id": "ccc"})
        assert ResultStore(tmp_path / "s").keys() == ["aaa", "ccc"]

    def test_resume_re_executes_the_truncated_point(self, tmp_path):
        # End to end: a campaign's store loses its final record to a crash
        # mid-write; resuming re-executes exactly that point and the store
        # ends up whole again.
        spec = ExperimentSpec(base=BASE, grid={"block_size": [20, 40]})
        store_dir = tmp_path / "s"
        first = CampaignRunner(spec, store=ResultStore(store_dir)).run()
        assert first.executed == 2
        path = store_dir / "results.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2])
        with pytest.warns(TruncatedRecordWarning):
            resumed_store = ResultStore(store_dir)
        resumed = CampaignRunner(spec, store=resumed_store).run()
        assert resumed.executed == 1
        assert resumed.skipped == 1
        assert resumed.records == first.records
        # The re-executed record was re-appended; the file is whole again.
        clean = ResultStore(store_dir)
        assert sorted(clean.keys()) == sorted(first.records[i]["run_id"] for i in range(2))

    def test_superseding_add_is_append_and_compact_folds_it(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.add({"run_id": "abc", "v": 1})
        store.add({"run_id": "abc", "v": 2})
        # Append-only on disk (last write wins in memory) until compacted.
        assert len(store.path.read_text().splitlines()) == 2
        assert len(store) == 1
        assert store.get("abc")["v"] == 2
        store.compact()
        assert len(store.path.read_text().splitlines()) == 1
        # Reopening never writes: superseded lines stay on disk, folded
        # in memory with last-write-wins, until the next compact().
        store.add({"run_id": "abc", "v": 3})
        reopened = ResultStore(tmp_path / "s")
        assert len(reopened.path.read_text().splitlines()) == 2
        assert len(reopened) == 1
        assert reopened.get("abc")["v"] == 3
        reopened.compact()
        assert len(reopened.path.read_text().splitlines()) == 1

    def test_opening_a_missing_store_creates_nothing(self, tmp_path):
        root = tmp_path / "nope"
        store = ResultStore(root)
        assert len(store) == 0
        assert not root.exists()
        # The directory appears on the first write.
        store.add({"run_id": "abc"})
        assert root.is_dir()


class TestCampaignRunner:
    def _spec(self, name="campaign"):
        return ExperimentSpec(
            name=name,
            base=BASE,
            grid={"protocol": ["hotstuff", "2chainhs"], "block_size": [20, 40]},
        )

    def test_serial_records_match_run_experiment(self):
        result = CampaignRunner(self._spec()).run()
        assert result.executed == 4 and result.skipped == 0
        record = result.records[0]
        direct = run_experiment(Configuration.from_dict(record["config"]))
        assert record["metrics"] == direct.metrics.to_dict()
        assert record["consistent"] == direct.consistent
        assert record["highest_view"] == direct.highest_view

    def test_parallel_records_are_bit_identical_to_serial(self, tmp_path):
        serial = CampaignRunner(self._spec(), workers=1, store=tmp_path / "a").run()
        parallel = CampaignRunner(self._spec(), workers=4, store=tmp_path / "b").run()
        # The returned records are identical byte for byte and in order;
        # the stored files are identical modulo line ordering (parallel
        # campaigns persist each run the moment it completes).
        assert [encode_record(r) for r in serial.records] == [
            encode_record(r) for r in parallel.records
        ]
        lines_a = sorted((tmp_path / "a" / "results.jsonl").read_text().splitlines())
        lines_b = sorted((tmp_path / "b" / "results.jsonl").read_text().splitlines())
        assert lines_a == lines_b

    def test_interrupted_campaign_keeps_finished_runs(self, tmp_path):
        # The second point fails config validation inside the run; the
        # first point must already be persisted when the failure surfaces.
        spec = ExperimentSpec(
            base=BASE,
            points=[{"protocol": "hotstuff"}, {"protocol": "pbft"}],
        )
        store = tmp_path / "s"
        with pytest.raises(Exception, match="unknown protocol"):
            CampaignRunner(spec, store=store).run()
        survivors = ResultStore(store)
        assert len(survivors) == 1
        assert survivors.records()[0]["config"]["protocol"] == "hotstuff"

    def test_parallel_failure_persists_surviving_siblings(self, tmp_path):
        # With workers, a failing point must not discard the siblings the
        # pool ran to completion anyway: they are stored before the first
        # failure is re-raised.
        spec = ExperimentSpec(
            base=BASE,
            points=[
                {"protocol": "hotstuff"},
                {"protocol": "pbft"},
                {"protocol": "2chainhs"},
            ],
        )
        store = tmp_path / "s"
        with pytest.raises(Exception, match="unknown protocol"):
            CampaignRunner(spec, workers=2, store=store).run()
        survivors = {r["config"]["protocol"] for r in ResultStore(store).records()}
        assert survivors == {"hotstuff", "2chainhs"}

    def test_resume_executes_zero_runs(self, tmp_path):
        store = tmp_path / "s"
        first = CampaignRunner(self._spec(), store=store).run()
        resumed = CampaignRunner(self._spec(), workers=2, store=store).run()
        assert resumed.executed == 0
        assert resumed.skipped == 4
        assert [encode_record(r) for r in resumed.records] == [
            encode_record(r) for r in first.records
        ]
        # Nothing was appended to the store by the resumed campaign.
        assert len(ResultStore(store)) == 4

    def test_force_reruns_stored_points_without_duplicating_records(self, tmp_path):
        store = tmp_path / "s"
        CampaignRunner(self._spec(), store=store).run()
        forced = CampaignRunner(self._spec(), store=store, force=True).run()
        assert forced.executed == 4
        # Forced records replace the stored ones: still one record per run.
        assert len(ResultStore(store)) == 4

    def test_fixed_seed_repetitions_execute_and_agree(self):
        spec = ExperimentSpec(base=BASE, repetitions=2, seed_policy="fixed")
        result = CampaignRunner(spec).run()
        assert result.executed == 2
        # Same seed, independent executions: the simulator is deterministic.
        assert result.records[0]["metrics"] == result.records[1]["metrics"]

    def test_reused_records_are_relabelled_with_the_current_campaign(self, tmp_path):
        store = tmp_path / "s"
        CampaignRunner(self._spec("first"), store=store).run()
        reused = CampaignRunner(self._spec("second"), store=store).run()
        assert reused.executed == 0
        assert all(r["campaign"] == "second" for r in reused.records)

    def test_identical_points_execute_once(self):
        spec = ExperimentSpec(
            base=BASE,
            points=[{"_arm": "a", "protocol": "2chainhs"}, {"_arm": "b", "protocol": "2chainhs"}],
        )
        result = CampaignRunner(spec).run()
        assert result.executed == 1
        # The duplicate was deduplicated, not served from any store.
        assert result.skipped == 0
        assert result.deduplicated == 1
        assert len(result.records) == 2
        assert result.records[0]["metrics"] == result.records[1]["metrics"]
        assert result.records[0]["params"]["_arm"] == "a"
        assert result.records[1]["params"]["_arm"] == "b"

    def test_scenario_campaign_records_timeline(self):
        spec = ExperimentSpec(
            base=BASE,
            grid={"protocol": ["hotstuff"]},
            scenario={"events": [{"kind": "crash-replica", "at": 0.3, "replica": "last"}]},
        )
        (record,) = CampaignRunner(spec).run().records
        assert record["scenario"]["events"][0]["kind"] == "crash-replica"
        assert record["timeline"]
        assert record["consistent"]
        assert timeline_mean(record["timeline"], 0.0, 0.7) >= 0.0

    def test_api_campaign_accepts_dict_spec_and_path(self, tmp_path):
        spec_dict = {"name": "d", "base": dict(FAST), "grid": {"block_size": [20]}}
        from_dict = api.campaign(spec_dict)
        assert len(from_dict.records) == 1
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec_dict))
        from_path = api.campaign(str(path))
        assert encode_record(from_path.records[0]) == encode_record(from_dict.records[0])
        with pytest.raises(TypeError, match="expected ExperimentSpec"):
            api.campaign(42)

    def test_campaign_result_metric_helper(self):
        spec = ExperimentSpec(base=BASE, grid={"block_size": [20, 40]})
        result = CampaignRunner(spec).run()
        assert result.metric("throughput_tps") == [
            r["metrics"]["throughput_tps"] for r in result.records
        ]
        assert len(result) == 2


class TestSweepOnCampaign:
    def test_sweep_unchanged_semantics(self):
        points = saturation_sweep(BASE, concurrency_levels=[4, 8])
        assert [p.load for p in points] == [4.0, 8.0]
        direct = run_experiment(BASE.replace(concurrency=4, arrival_rate=0.0))
        assert points[0].throughput_tps == direct.metrics.throughput_tps
        assert points[0].mean_latency == direct.metrics.mean_latency

    def test_sweep_with_store_resumes(self, tmp_path):
        first = saturation_sweep(BASE, concurrency_levels=[4, 8], store=tmp_path / "s")
        again = saturation_sweep(
            BASE, concurrency_levels=[4, 8], workers=2, store=tmp_path / "s"
        )
        assert [p.to_dict() for p in first] == [p.to_dict() for p in again]
        assert len(ResultStore(tmp_path / "s")) == 2

    def test_sweep_rejects_both_kinds_of_load(self):
        with pytest.raises(ValueError, match="not both"):
            saturation_sweep(BASE, concurrency_levels=[1], arrival_rates=[1.0])


class TestSerializationRoundTrips:
    def test_configuration_json_round_trip_reproduces_metrics(self):
        config = Configuration(protocol="2chainhs", seed=7, **FAST)
        clone = Configuration.from_dict(json.loads(json.dumps(config.to_dict())))
        assert clone == config
        assert run_experiment(clone).metrics == run_experiment(config).metrics

    def test_run_metrics_round_trip(self):
        metrics = run_experiment(BASE).metrics
        clone = RunMetrics.from_dict(json.loads(json.dumps(metrics.to_dict())))
        assert clone == metrics

    def test_run_metrics_from_dict_ignores_unknown_keys(self):
        metrics = run_experiment(BASE).metrics
        data = metrics.to_dict() | {"bogus": 1}
        assert RunMetrics.from_dict(data) == metrics

    def test_experiment_result_round_trip(self):
        result = run_experiment(BASE)
        clone = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert clone.config == result.config
        assert clone.metrics == result.metrics
        assert clone.consistent == result.consistent
        assert clone.highest_view == result.highest_view
        assert clone.timeline == result.timeline

    def test_sweep_point_round_trip(self):
        point = SweepPoint(8.0, 1500.0, 0.005, 0.009, 1.0, 3.0)
        clone = SweepPoint.from_dict(json.loads(json.dumps(point.to_dict())))
        assert clone == point
