"""Tests for the declarative scenario layer: events, JSON round-trip, runner."""

import pytest

from repro import api
from repro.bench.config import Configuration
from repro.scenario import (
    CrashReplica,
    Heal,
    NetworkFluctuation,
    Partition,
    RecoverReplica,
    Scenario,
    ScenarioEvent,
    ScenarioResult,
    SetArrivalRate,
    SetByzantine,
    SetDelayModel,
    run_scenario,
)

FAST = dict(
    block_size=20,
    runtime=1.0,
    warmup=0.0,
    cooldown=0.0,
    concurrency=8,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.05,
    request_timeout=0.2,
    seed=3,
)


def fast_config(**overrides):
    params = dict(FAST)
    params.update(overrides)
    return Configuration(**params)


ALL_EVENTS = [
    CrashReplica(at=1.0, replica="r2"),
    RecoverReplica(at=2.0, replica="last"),
    NetworkFluctuation(at=0.5, duration=2.0, min_delay=0.01, max_delay=0.05),
    Partition(at=1.0, groups=[["r0", "r1"], ["r2", "r3"]], duration=0.5),
    Heal(at=2.5),
    SetDelayModel(at=3.0, model={"kind": "fixed", "delay": 0.002}, target="extra"),
    SetByzantine(at=1.5, replica="r3", strategy="silence"),
    SetArrivalRate(at=2.0, rate=500.0),
]


class TestSerialization:
    @pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
    def test_event_round_trip(self, event):
        data = event.to_dict()
        clone = ScenarioEvent.from_dict(data)
        assert type(clone) is type(event)
        assert clone == event
        assert clone.to_dict() == data

    def test_event_dicts_are_json_compatible(self):
        import json

        payload = json.dumps([e.to_dict() for e in ALL_EVENTS])
        restored = [ScenarioEvent.from_dict(d) for d in json.loads(payload)]
        assert restored == ALL_EVENTS

    def test_scenario_round_trip(self):
        scenario = Scenario(name="demo", events=list(ALL_EVENTS), duration=5.0)
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_scenario_accepts_event_dicts_directly(self):
        scenario = Scenario(events=[{"kind": "crash-replica", "at": 1.0}])
        assert isinstance(scenario.events[0], CrashReplica)

    def test_unknown_kind_rejected_with_available_list(self):
        with pytest.raises(ValueError, match="unknown scenario event 'meteor'"):
            ScenarioEvent.from_dict({"kind": "meteor", "at": 1.0})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="needs a 'kind' key"):
            ScenarioEvent.from_dict({"at": 1.0})

    def test_alias_kinds_resolve(self):
        event = ScenarioEvent.from_dict({"kind": "crash", "at": 1.0, "replica": "r1"})
        assert isinstance(event, CrashReplica)


class TestEventApplication:
    def test_crash_and_recover(self):
        scenario = Scenario(events=[
            CrashReplica(at=0.3, replica="last"),
            RecoverReplica(at=0.6, replica="last"),
        ])
        cluster = api.build(fast_config(), scenario)
        cluster.start()
        cluster.run(until=0.4)
        assert cluster.network.is_crashed("r3")
        cluster.run(until=1.0)
        assert not cluster.network.is_crashed("r3")
        assert cluster.consistency_check()
        # The recovered replica rejoins view synchronization (within one view
        # of the observer at any sampling instant) and — with the block-fetch
        # subsystem — recovers the blocks it missed as well.
        assert cluster.replicas["r3"].current_view >= cluster.replicas["r0"].current_view - 1
        assert (
            cluster.replicas["r3"].forest.committed_height
            >= cluster.replicas["r0"].forest.committed_height - 2
        )

    def test_partition_and_heal(self):
        scenario = Scenario(events=[
            Partition(at=0.2, groups=[["r0", "r1"], ["r2", "r3"]]),
            Heal(at=0.5),
        ])
        cluster = api.build(fast_config(), scenario)
        cluster.start()
        cluster.run(until=0.3)
        dropped_mid_partition = cluster.network.stats.messages_dropped
        assert dropped_mid_partition > 0  # cross-group traffic is blocked
        cluster.run(until=1.0)
        assert cluster.consistency_check()
        # After healing, commits resume cluster-wide.
        assert all(r.stats.blocks_committed > 0 for r in cluster.replicas.values())

    def test_set_byzantine_converts_live_replica(self):
        from repro.core.byzantine import SilentReplica

        scenario = Scenario(events=[SetByzantine(at=0.5, replica="r3", strategy="silence")])
        cluster = api.build(fast_config(), scenario)
        assert type(cluster.replicas["r3"]).strategy == "honest"
        cluster.start()
        cluster.run(until=1.0)
        victim = cluster.replicas["r3"]
        assert isinstance(victim, SilentReplica)
        assert victim.views_silenced >= 0  # counter was initialized on conversion
        assert cluster.consistency_check()

    def test_set_delay_model_swaps_network_delay(self):
        from repro.network.delays import FixedDelay

        scenario = Scenario(events=[
            SetDelayModel(at=0.5, model={"kind": "fixed", "delay": 0.01}, target="extra"),
        ])
        cluster = api.build(fast_config(), scenario)
        cluster.start()
        cluster.run(until=1.0)
        assert isinstance(cluster.network.extra_delay, FixedDelay)
        assert cluster.network.extra_delay.delay == pytest.approx(0.01)

    def test_set_arrival_rate_rescales_open_loop_clients(self):
        scenario = Scenario(events=[SetArrivalRate(at=0.5, rate=800.0)])
        cluster = api.build(fast_config(arrival_rate=200.0, num_clients=2), scenario)
        assert all(c.rate == pytest.approx(100.0) for c in cluster.clients)
        cluster.start()
        cluster.run(until=1.0)
        assert all(c.rate == pytest.approx(400.0) for c in cluster.clients)

    def test_symbolic_replica_names_resolve(self):
        config = fast_config()
        scenario = Scenario(events=[CrashReplica(at=0.5, replica="first")])
        cluster = api.build(config, scenario)
        cluster.start()
        cluster.run(until=1.0)
        assert cluster.network.is_crashed("r0")

    def test_unknown_replica_name_rejected_at_apply_time(self):
        scenario = Scenario(events=[CrashReplica(at=0.1, replica="r99")])
        cluster = api.build(fast_config(), scenario)
        cluster.start()
        with pytest.raises(ValueError, match="unknown replica 'r99'"):
            cluster.run(until=0.5)


class TestScenarioRunner:
    def test_run_scenario_returns_result_with_timeline(self):
        scenario = Scenario(
            events=[CrashReplica(at=0.5, replica="last")], duration=1.0
        )
        result = run_scenario(fast_config(), scenario, bucket=0.25)
        assert isinstance(result, ScenarioResult)
        assert result.consistent
        assert len(result.timeline) >= 4
        assert all(t <= 1.0 for t, _ in result.timeline)
        assert result.mean_throughput(0.0, 0.5) > 0

    def test_empty_scenario_matches_plain_run_metrics(self):
        config = fast_config(warmup=0.1, runtime=0.6, cooldown=0.1)
        plain = api.run(config)
        scenario_result = api.run(config, scenario=Scenario(name="empty"))
        assert scenario_result.metrics == plain.metrics
        assert scenario_result.highest_view == plain.highest_view


class TestResponsivenessDeclarative:
    """The Fig. 15 experiment is now a two-event scenario."""

    def test_to_scenario_shape(self):
        from repro.bench.timeline import ResponsivenessScenario

        scenario = ResponsivenessScenario().to_scenario()
        assert scenario.name == "responsiveness"
        assert [e.kind for e in scenario.events] == ["network-fluctuation", "crash-replica"]
        clone = Scenario.from_dict(scenario.to_dict())
        assert clone == scenario

    def test_run_responsiveness_still_works(self):
        from repro.bench.timeline import ResponsivenessScenario, run_responsiveness

        scenario = ResponsivenessScenario(
            fluctuation_start=0.3, fluctuation_duration=0.3, fluctuation_min=0.02,
            fluctuation_max=0.08, crash_at=0.8, total_duration=1.2, bucket=0.2,
        )
        result = run_responsiveness(fast_config(), scenario)
        assert result.crashed_replica == "r3"
        assert result.consistent
        assert result.throughput_before > 0
