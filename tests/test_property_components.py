"""Property-based tests for the scheduler, mempool, quorum, and model components."""

from hypothesis import given, settings, strategies as st

from repro.crypto.keys import KeyRegistry
from repro.mempool.mempool import Mempool
from repro.model.orderstats import expected_order_statistic
from repro.model.queuing import md1_waiting_time
from repro.quorum.quorum import QuorumTracker, max_faulty, quorum_size
from repro.sim.events import EventScheduler
from repro.types.transaction import Transaction

from helpers import build_certified_chain, make_vote


class TestSchedulerProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_nondecreasing_time_order(self, delays):
        sched = EventScheduler()
        fired = []
        for delay in delays:
            sched.call_after(delay, lambda: fired.append(sched.now))
        sched.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=30),
        horizon=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_horizon_splits_events_exactly(self, delays, horizon):
        sched = EventScheduler()
        fired = []
        for delay in delays:
            sched.call_after(delay, lambda d=delay: fired.append(d))
        sched.run_until(horizon)
        assert sorted(fired) == sorted(d for d in delays if d <= horizon)


class TestMempoolProperties:
    @given(
        batch_sizes=st.lists(st.integers(min_value=1, max_value=20), min_size=1, max_size=10),
        num_txs=st.integers(min_value=0, max_value=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_batches_preserve_fifo_order_and_never_duplicate(self, batch_sizes, num_txs):
        pool = Mempool(capacity=1000)
        txs = [Transaction.create("c0", created_at=0.0) for _ in range(num_txs)]
        for tx in txs:
            pool.add(tx)
        drained = []
        for size in batch_sizes:
            drained.extend(pool.next_batch(size))
        drained_ids = [t.txid for t in drained]
        assert drained_ids == [t.txid for t in txs[: len(drained_ids)]]
        assert len(set(drained_ids)) == len(drained_ids)

    @given(num_txs=st.integers(min_value=1, max_value=40), requeue_at=st.integers(min_value=1, max_value=40))
    @settings(max_examples=60, deadline=None)
    def test_requeue_then_drain_loses_nothing(self, num_txs, requeue_at):
        pool = Mempool(capacity=1000)
        txs = [Transaction.create("c0", created_at=0.0) for _ in range(num_txs)]
        for tx in txs:
            pool.add(tx)
        taken = pool.next_batch(min(requeue_at, num_txs))
        pool.requeue_front(taken)
        drained = pool.next_batch(num_txs)
        assert {t.txid for t in drained} == {t.txid for t in txs}


class TestQuorumProperties:
    @given(num_nodes=st.integers(min_value=1, max_value=200))
    @settings(max_examples=100, deadline=None)
    def test_quorum_intersection_contains_an_honest_node(self, num_nodes):
        # Two quorums of size 2f+1 out of n >= 3f+1 nodes overlap in at least
        # f+1 nodes, hence contain at least one honest node.
        f = max_faulty(num_nodes)
        q = quorum_size(num_nodes)
        overlap = 2 * q - num_nodes
        assert overlap >= f + 1 or f == 0  # f == 0 clusters tolerate no faults

    @given(
        voters=st.lists(st.sampled_from([f"r{i}" for i in range(8)]), min_size=0, max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_qc_forms_iff_distinct_voters_reach_threshold(self, voters):
        registry = KeyRegistry()
        forest, blocks = build_certified_chain([1], num_nodes=8)
        tracker = QuorumTracker(8, registry)
        qc = None
        for voter in voters:
            result = tracker.add_and_certify(make_vote(registry, voter, blocks[0]))
            if result is not None:
                qc = result
        distinct = len(set(voters))
        if distinct >= quorum_size(8):
            assert qc is not None
            assert len(qc.signers) >= quorum_size(8)
        else:
            assert qc is None


class TestModelProperties:
    @given(
        k=st.integers(min_value=1, max_value=10),
        n=st.integers(min_value=1, max_value=10),
        mean=st.floats(min_value=-5.0, max_value=5.0),
        stddev=st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_order_statistic_is_monotone_and_scales(self, k, n, mean, stddev):
        if k > n:
            return
        value = expected_order_statistic(k, n, mean, stddev)
        if k < n:
            assert value <= expected_order_statistic(k + 1, n, mean, stddev) + 1e-9
        if stddev == 0:
            assert value == mean

    @given(
        rho=st.floats(min_value=0.01, max_value=0.95),
        service_rate=st.floats(min_value=0.1, max_value=1000.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_md1_waiting_time_is_nonnegative_and_increasing_in_load(self, rho, service_rate):
        arrival = rho * service_rate
        waiting = md1_waiting_time(arrival, service_rate)
        assert waiting >= 0
        heavier = md1_waiting_time(min(arrival * 1.02, service_rate * 0.99), service_rate)
        assert heavier >= waiting - 1e-12
