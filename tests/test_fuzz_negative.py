"""The negative control: proof that the safety oracles can actually fail.

A fuzzer whose invariants never fire is indistinguishable from one that
checks nothing.  This module deliberately breaks quorum intersection — a
flexible-quorum threshold of 2 in a 5-node cluster is below ``2f+1 = 3`` —
and puts an equivocating static leader on top.  The leader feeds each half
of the cluster its own chain branch; with non-intersecting quorums both
branches certify and commit, so the agreement oracle (and usually
certified-safety) must trip, reproducibly.

The same module exercises the shrinker on that counterexample: decoy
timeline events must be dropped, the cluster must *not* shrink below n=5
(with n=4 the 2+1 group split leaves the minority branch unable to reach
even the weakened quorum without the leader's own vote — the divergence
genuinely needs 5 nodes), and the minimized artifact must replay to the
same violation.
"""

import json

import pytest

from repro.bench.config import Configuration
from repro.fuzz import FuzzCase, audit, replay, shrink_case, write_artifact
from repro.scenario import Scenario

pytestmark = pytest.mark.slow


def unsafe_config(**overrides):
    """n=5, equivocating static leader r4, quorum threshold 2 < 2f+1."""
    params = dict(
        protocol="hotstuff",
        num_nodes=5,
        byzantine_nodes=1,
        strategy="equivocate",
        master="r4",
        quorum_threshold=2,
        block_size=20,
        mempool_capacity=200,
        concurrency=16,
        num_clients=2,
        view_timeout=0.05,
        runtime=1.0,
        warmup=0.2,
        cooldown=0.3,
        cost_profile="fast",
        seed=3,
    )
    params.update(overrides)
    return Configuration(**params)


DECOY_EVENTS = [
    {"kind": "network-fluctuation", "at": 0.3, "duration": 0.2,
     "min_delay": 0.001, "max_delay": 0.01},
    {"kind": "crash-replica", "at": 0.5, "replica": "r1"},
    {"kind": "recover-replica", "at": 0.7, "replica": "r1"},
]


class TestNegativeControl:
    def test_unsafe_quorum_trips_the_agreement_oracle(self):
        outcome = audit(unsafe_config())
        fired = {v.oracle for v in outcome.violations}
        assert "agreement" in fired
        assert "certified-safety" in fired
        assert any("divergent chains" in v.detail for v in outcome.violations)
        # The run itself must also flag the divergence through the ordinary
        # consistency check, not just the oracles.
        assert outcome.record["consistent"] is False

    def test_safe_threshold_restores_agreement(self):
        # Identical setup with the default (intersecting) quorum size: the
        # equivocating leader gets no traction and every oracle passes.
        outcome = audit(unsafe_config(quorum_threshold=0))
        assert outcome.ok, [v.to_dict() for v in outcome.violations]

    def test_violation_is_deterministic(self):
        first = audit(unsafe_config(), oracles=["agreement"])
        second = audit(unsafe_config(), oracles=["agreement"])
        assert [v.to_dict() for v in first.violations] == [
            v.to_dict() for v in second.violations
        ]


class TestShrinking:
    def _violating_case(self):
        return FuzzCase(
            seed=0,
            index=0,
            config=unsafe_config(),
            scenario=Scenario(name="negative-control", events=list(DECOY_EVENTS)),
            liveness_eligible=False,
        )

    def test_shrinker_minimizes_and_artifact_replays(self, tmp_path):
        result = shrink_case(self._violating_case(), oracles=["agreement"])
        minimized = result.case

        # All three decoy events are irrelevant to the divergence.
        assert minimized.scenario.events == []
        # The cluster must not shrink: r4 is the (Byzantine) master, and
        # with n=4 the minority branch cannot certify at threshold 2.
        assert minimized.config.num_nodes == 5
        # The run shortens but stays long enough to diverge.
        assert minimized.config.runtime < unsafe_config().runtime
        assert result.reductions >= len(DECOY_EVENTS)
        assert any(v.oracle == "agreement" for v in result.outcome.violations)

        # The minimized case dumps to a self-contained artifact that
        # replays to the same violation.
        path = write_artifact(str(tmp_path), result.outcome, suffix="-min")
        document = json.loads(open(path).read())
        assert document["case"]["config"]["quorum_threshold"] == 2
        replayed = replay(path)
        assert any(v.oracle == "agreement" for v in replayed.violations)

    def test_shrinker_returns_original_when_not_reproducible(self):
        # A healthy configuration never violates, so the shrinker reports
        # zero reductions and a passing outcome instead of looping.
        case = FuzzCase(
            seed=0,
            index=0,
            config=unsafe_config(quorum_threshold=0),
            scenario=Scenario(name="healthy"),
            liveness_eligible=False,
        )
        result = shrink_case(case, oracles=["agreement"])
        assert result.reductions == 0
        assert result.executions == 1
        assert result.outcome.ok
