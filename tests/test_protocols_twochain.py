"""Unit tests for the two-chain HotStuff safety rules (paper §II-C)."""

from repro.forest.forest import BlockForest
from repro.protocols.twochain import TwoChainHotStuffSafety
from repro.types.block import GENESIS_ID, make_block

from helpers import build_certified_chain, make_transactions


def chain_with_safety(views):
    forest, blocks = build_certified_chain(views)
    safety = TwoChainHotStuffSafety(forest)
    for block in blocks:
        safety.note_embedded_qc(forest.get(block.block_id).qc)
    return forest, blocks, safety


class TestMetadata:
    def test_protocol_properties(self):
        safety = TwoChainHotStuffSafety(BlockForest())
        assert safety.protocol_name == "2chainhs"
        assert not safety.votes_broadcast
        assert not safety.responsive
        assert safety.commit_rule_depth == 2


class TestStateUpdating:
    def test_lock_is_head_of_highest_one_chain(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        # 2CHS locks on the block certified by the highest QC itself.
        assert safety.locked_block_id == blocks[-1].block_id

    def test_lock_trails_by_one_block_less_than_hotstuff(self):
        from repro.protocols.hotstuff import HotStuffSafety

        forest, blocks, two_chain = chain_with_safety([1, 2, 3])
        hs_forest, hs_blocks = build_certified_chain([1, 2, 3])
        hotstuff = HotStuffSafety(hs_forest)
        for block in hs_blocks:
            hotstuff.note_embedded_qc(hs_forest.get(block.block_id).qc)
        assert two_chain.locked_view() == hotstuff.locked_view() + 1


class TestVotingRule:
    def test_votes_for_extension_of_lock(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        proposal = make_block(4, blocks[-1], safety.high_qc, "r0", make_transactions(1))
        assert safety.should_vote(proposal)

    def test_rejects_fork_below_lock(self):
        # The HotStuff-depth forking attack (two blocks back) is rejected by
        # 2CHS because its lock is one block tighter.
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        target = blocks[0]
        target_qc = forest.get(target.block_id).qc
        fork = make_block(4, target, target_qc, "byz", ())
        assert not safety.should_vote(fork)

    def test_accepts_fork_at_lock(self):
        # Forking one block back (to the lock itself) remains possible.
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        lock = forest.get_block(safety.locked_block_id)
        fork = make_block(4, lock, forest.get(lock.block_id).qc, "byz", ())
        # The fork extends the lock, hence is votable; it overwrites nothing
        # in this case because the lock is the tip, so use the view-2 state:
        assert safety.should_vote(fork)

    def test_rejects_stale_view(self):
        forest, blocks, safety = chain_with_safety([1, 2])
        safety.record_vote_sent(make_block(5, blocks[-1], safety.high_qc, "r0", ()))
        proposal = make_block(3, blocks[-1], safety.high_qc, "r0", ())
        assert not safety.should_vote(proposal)


class TestCommitRule:
    def test_two_consecutive_certified_blocks_commit_head(self):
        forest, blocks, safety = chain_with_safety([1, 2])
        assert safety.commit_candidate(blocks[1].block_id) == blocks[0].block_id

    def test_gap_in_views_prevents_commit(self):
        forest, blocks, safety = chain_with_safety([1, 3])
        assert safety.commit_candidate(blocks[1].block_id) is None

    def test_single_certified_block_not_committed(self):
        forest, blocks, safety = chain_with_safety([1])
        assert safety.commit_candidate(blocks[0].block_id) is None

    def test_commits_one_view_earlier_than_hotstuff(self):
        from repro.protocols.hotstuff import HotStuffSafety

        forest, blocks, two_chain = chain_with_safety([1, 2])
        hs_forest, hs_blocks = build_certified_chain([1, 2])
        hotstuff = HotStuffSafety(hs_forest)
        assert two_chain.commit_candidate(blocks[1].block_id) is not None
        assert hotstuff.commit_candidate(hs_blocks[1].block_id) is None

    def test_already_committed_head_returns_none(self):
        forest, blocks, safety = chain_with_safety([1, 2])
        forest.commit(blocks[0].block_id, at_view=3)
        assert safety.commit_candidate(blocks[1].block_id) is None
