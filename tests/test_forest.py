"""Unit tests for the block forest."""

import pytest

from repro.forest.forest import BlockForest, ForestError
from repro.types.block import Block, GENESIS_ID, make_block
from repro.types.certificates import QuorumCertificate

from helpers import build_certified_chain, certify, extend_chain, make_transactions


def _block(forest, parent, view, proposer="r0", txs=0):
    qc = forest.get(parent.block_id).qc
    if qc is None:
        qc = QuorumCertificate(block_id=parent.block_id, view=parent.view, signers=frozenset({"r0"}))
    return make_block(view, parent, qc, proposer, make_transactions(txs))


class TestInsertion:
    def test_forest_starts_with_committed_genesis(self):
        forest = BlockForest()
        assert GENESIS_ID in forest
        assert forest.get(GENESIS_ID).committed
        assert forest.committed_height == 0

    def test_add_block_links_parent_and_child(self):
        forest = BlockForest()
        block = _block(forest, forest.genesis, 1)
        forest.add_block(block)
        assert block.block_id in forest
        assert forest.parent(block.block_id).block_id == GENESIS_ID
        assert [c.block_id for c in forest.children(GENESIS_ID)] == [block.block_id]

    def test_add_block_is_idempotent(self):
        forest = BlockForest()
        block = _block(forest, forest.genesis, 1)
        first = forest.add_block(block)
        second = forest.add_block(block)
        assert first is second
        assert forest.stats.blocks_added == 1

    def test_unknown_parent_rejected(self):
        forest = BlockForest()
        orphan = Block(
            block_id="orphan", view=5, parent_id="missing", height=5, qc=None, proposer="r0"
        )
        with pytest.raises(ForestError):
            forest.add_block(orphan)

    def test_wrong_height_rejected(self):
        forest = BlockForest()
        bad = Block(
            block_id="bad", view=1, parent_id=GENESIS_ID, height=7, qc=None, proposer="r0"
        )
        with pytest.raises(ForestError):
            forest.add_block(bad)

    def test_non_increasing_view_rejected(self):
        forest = BlockForest()
        bad = Block(
            block_id="bad", view=0, parent_id=GENESIS_ID, height=1, qc=None, proposer="r0"
        )
        with pytest.raises(ForestError):
            forest.add_block(bad)

    def test_forks_are_tracked(self):
        forest = BlockForest()
        a = _block(forest, forest.genesis, 1, proposer="r0")
        b = _block(forest, forest.genesis, 2, proposer="r1")
        forest.add_block(a)
        forest.add_block(b)
        assert len(forest.blocks_at_height(1)) == 2
        assert forest.stats.views_with_conflicts


class TestCertification:
    def test_record_qc_attaches_to_vertex(self):
        forest, blocks = build_certified_chain([1, 2])
        assert forest.get(blocks[0].block_id).certified
        assert forest.get(blocks[1].block_id).certified

    def test_record_qc_for_unknown_block_returns_none(self):
        forest = BlockForest()
        qc = QuorumCertificate(block_id="missing", view=9, signers=frozenset({"r0"}))
        assert forest.record_qc(qc) is None

    def test_highest_certified_tracks_view(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        assert forest.highest_certified().block_id == blocks[-1].block_id

    def test_longest_certified_tip_prefers_longer_chain(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        # A certified fork off genesis is shorter and must not win.
        fork = _block(forest, forest.genesis, 4, proposer="r9")
        forest.add_block(fork)
        certify(forest, fork)
        assert forest.longest_certified_tip().block_id == blocks[-1].block_id

    def test_certified_chain_length_counts_certified_ancestors(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        # genesis + 3 certified blocks
        assert forest.certified_chain_length(blocks[-1].block_id) == 4


class TestAncestry:
    def test_is_ancestor_on_a_chain(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        assert forest.is_ancestor(blocks[0].block_id, blocks[2].block_id)
        assert not forest.is_ancestor(blocks[2].block_id, blocks[0].block_id)

    def test_block_is_its_own_ancestor(self):
        forest, blocks = build_certified_chain([1])
        assert forest.is_ancestor(blocks[0].block_id, blocks[0].block_id)

    def test_forked_blocks_are_not_ancestors(self):
        forest, blocks = build_certified_chain([1, 2])
        fork = _block(forest, forest.genesis, 3, proposer="r9")
        forest.add_block(fork)
        assert not forest.is_ancestor(blocks[0].block_id, fork.block_id)
        assert not forest.is_ancestor(fork.block_id, blocks[1].block_id)

    def test_extends_accepts_direct_parent_before_insertion(self):
        forest, blocks = build_certified_chain([1, 2])
        child = _block(forest, blocks[-1], 3)
        assert forest.extends(child, blocks[-1].block_id)
        assert forest.extends(child, blocks[0].block_id)
        assert forest.extends(child, GENESIS_ID)

    def test_ancestors_walks_to_genesis(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        ids = [v.block_id for v in forest.ancestors(blocks[-1].block_id)]
        assert ids == [blocks[1].block_id, blocks[0].block_id, GENESIS_ID]


class TestCommit:
    def test_commit_commits_all_uncommitted_ancestors(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        newly = forest.commit(blocks[2].block_id, at_view=4)
        assert [v.block_id for v in newly] == [b.block_id for b in blocks]
        assert forest.committed_height == 3

    def test_commit_is_idempotent(self):
        forest, blocks = build_certified_chain([1, 2])
        forest.commit(blocks[1].block_id, at_view=3)
        assert forest.commit(blocks[1].block_id, at_view=4) == []

    def test_commit_unknown_block_raises(self):
        forest = BlockForest()
        with pytest.raises(ForestError):
            forest.commit("missing", at_view=1)

    def test_conflicting_commit_raises_safety_violation(self):
        forest, blocks = build_certified_chain([1, 2])
        fork = _block(forest, forest.genesis, 3, proposer="r9")
        forest.add_block(fork)
        forest.commit(blocks[1].block_id, at_view=3)
        with pytest.raises(ForestError):
            forest.commit(fork.block_id, at_view=4)

    def test_commit_records_view_and_order(self):
        forest, blocks = build_certified_chain([1, 2])
        forest.commit(blocks[1].block_id, at_view=3)
        chain = forest.committed_chain
        assert chain[0] == GENESIS_ID
        assert chain[-1] == blocks[1].block_id
        assert forest.get(blocks[0].block_id).committed_at_view == 3

    def test_committed_transactions_in_order(self):
        forest = BlockForest()
        blocks = extend_chain(forest, forest.genesis, [1, 2], txs_per_block=2)
        forest.commit(blocks[-1].block_id, at_view=3)
        txids = forest.committed_transactions()
        expected = [tx.txid for b in blocks for tx in b.transactions]
        assert txids == expected


class TestPruneAndConsistency:
    def test_prune_removes_abandoned_branches(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        fork = _block(forest, forest.genesis, 4, proposer="r9", txs=2)
        forest.add_block(fork)
        forest.commit(blocks[2].block_id, at_view=4)
        removed = forest.prune(forest.committed_height)
        assert [v.block_id for v in removed] == [fork.block_id]
        assert fork.block_id not in forest
        assert forest.stats.blocks_forked == 1
        assert forest.stats.transactions_forked == 2

    def test_prune_keeps_committed_chain(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        forest.commit(blocks[2].block_id, at_view=4)
        forest.prune(forest.committed_height)
        for block in blocks:
            assert block.block_id in forest

    def test_forked_blocks_below_ignores_committed(self):
        forest, blocks = build_certified_chain([1, 2])
        forest.commit(blocks[1].block_id, at_view=3)
        assert forest.forked_blocks_below(forest.committed_height) == []

    def test_consistency_hash_matches_for_identical_chains(self):
        forest_a, blocks_a = build_certified_chain([1, 2, 3])
        forest_a.commit(blocks_a[2].block_id, at_view=4)

        forest_b = BlockForest()
        for block in blocks_a:
            forest_b.add_block(block)
            certify(forest_b, block)
        forest_b.commit(blocks_a[2].block_id, at_view=4)

        assert forest_a.consistency_hash() == forest_b.consistency_hash()

    def test_consistency_hash_respects_height_prefix(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        forest.commit(blocks[2].block_id, at_view=4)
        prefix = forest.consistency_hash(height=1)
        full = forest.consistency_hash()
        assert prefix != full

    def test_fork_rate_statistic(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        fork = _block(forest, forest.genesis, 4, proposer="r9")
        forest.add_block(fork)
        forest.commit(blocks[2].block_id, at_view=4)
        forest.prune(forest.committed_height)
        assert forest.stats.fork_rate == pytest.approx(1 / 4)
