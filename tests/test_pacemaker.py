"""Unit tests for the pacemaker (view synchronization)."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.pacemaker.pacemaker import Pacemaker, ViewChangeReason
from repro.quorum.quorum import TimeoutTracker
from repro.sim.events import EventScheduler
from repro.types.certificates import Timeout, TimeoutCertificate, timeout_digest


class PacemakerHarness:
    """Wires a pacemaker to recording callbacks for the tests."""

    def __init__(self, view_timeout=0.1, num_nodes=4, timeout_provider=None):
        self.scheduler = EventScheduler()
        self.registry = KeyRegistry()
        self.view_starts = []
        self.local_timeouts = []
        self.pacemaker = Pacemaker(
            scheduler=self.scheduler,
            node_id="r0",
            timeout_tracker=TimeoutTracker(num_nodes, self.registry),
            view_timeout=view_timeout,
            on_view_start=lambda view, reason: self.view_starts.append((view, reason)),
            on_local_timeout=self.local_timeouts.append,
            timeout_provider=timeout_provider,
        )

    def remote_timeout(self, voter, view):
        keypair = self.registry.register(voter)
        return Timeout(
            voter=voter,
            view=view,
            high_qc_view=0,
            signature=sign(keypair, timeout_digest(view)),
        )


class TestViewAdvancement:
    def test_start_enters_initial_view(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        assert h.pacemaker.current_view == 1
        assert h.view_starts == [(1, ViewChangeReason.START)]

    def test_start_twice_rejected(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        with pytest.raises(RuntimeError):
            h.pacemaker.start()

    def test_qc_advances_to_next_view(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        assert h.pacemaker.advance_on_qc(1)
        assert h.pacemaker.current_view == 2
        assert h.view_starts[-1] == (2, ViewChangeReason.QC)

    def test_stale_qc_does_not_advance(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        h.pacemaker.advance_on_qc(5)
        assert not h.pacemaker.advance_on_qc(3)
        assert h.pacemaker.current_view == 6

    def test_qc_can_skip_ahead_many_views(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        h.pacemaker.advance_on_qc(10)
        assert h.pacemaker.current_view == 11

    def test_tc_advances_to_next_view(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        tc = TimeoutCertificate(view=1, signers=frozenset({"r0", "r1", "r2"}))
        assert h.pacemaker.advance_on_tc(tc)
        assert h.pacemaker.current_view == 2
        assert h.view_starts[-1] == (2, ViewChangeReason.TC)

    def test_stats_count_reasons(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        h.pacemaker.advance_on_qc(1)
        h.pacemaker.advance_on_tc(TimeoutCertificate(view=2, signers=frozenset({"r0"})))
        assert h.pacemaker.stats.view_changes_on_qc == 1
        assert h.pacemaker.stats.view_changes_on_tc == 1
        assert h.pacemaker.stats.highest_view == 3

    def test_views_entered_at_records_times(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        h.scheduler.run_until(0.0)
        assert 1 in h.pacemaker.stats.views_entered_at


class TestTimers:
    def test_local_timeout_fires_after_view_timeout(self):
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        h.scheduler.run_until(0.06)
        assert h.local_timeouts == [1]
        assert h.pacemaker.stats.local_timeouts == 1

    def test_timer_is_reset_on_view_change(self):
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        h.scheduler.run_until(0.03)
        h.pacemaker.advance_on_qc(1)
        h.scheduler.run_until(0.07)
        # The old view-1 timer was cancelled; only view 2's timer may fire later.
        assert h.local_timeouts == []
        h.scheduler.run_until(0.09)
        assert h.local_timeouts == [2]

    def test_timeout_rearms_while_stuck(self):
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        h.scheduler.run_until(0.26)
        assert h.local_timeouts == [1] * 5

    def test_stop_cancels_timer(self):
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        h.pacemaker.stop()
        h.scheduler.run_until(1.0)
        assert h.local_timeouts == []

    def test_timeout_provider_backoff(self):
        h = PacemakerHarness(
            view_timeout=0.05, timeout_provider=lambda consecutive: 0.05 * (2 ** consecutive)
        )
        h.pacemaker.start()
        # Fires at 0.05, re-arms with 0.1 (one consecutive timeout) so it
        # fires again at 0.15, then with 0.2 so it fires at 0.35.
        h.scheduler.run_until(0.31)
        assert h.local_timeouts == [1, 1]
        h.scheduler.run_until(0.36)
        assert h.local_timeouts == [1, 1, 1]

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            PacemakerHarness(view_timeout=0.0)


class TestTimeoutCertificates:
    def test_remote_timeouts_form_tc(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        tc = None
        for voter in ["r1", "r2", "r3"]:
            tc = h.pacemaker.process_remote_timeout(h.remote_timeout(voter, view=1))
        assert tc is not None
        assert tc.view == 1

    def test_tc_then_advance(self):
        h = PacemakerHarness()
        h.pacemaker.start()
        for voter in ["r1", "r2", "r3"]:
            tc = h.pacemaker.process_remote_timeout(h.remote_timeout(voter, view=1))
        h.pacemaker.advance_on_tc(tc)
        assert h.pacemaker.current_view == 2

    def test_consecutive_timeout_counter_resets_on_qc(self):
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        h.scheduler.run_until(0.06)
        assert h.pacemaker._consecutive_timeouts == 1
        h.pacemaker.advance_on_qc(1)
        assert h.pacemaker._consecutive_timeouts == 0

    def test_consecutive_timeout_counter_resets_on_tc(self):
        """A TC is quorum progress too: backoff must not keep compounding
        while TC-driven view changes are succeeding."""
        h = PacemakerHarness(
            view_timeout=0.05, timeout_provider=lambda c: 0.05 * (2 ** c)
        )
        h.pacemaker.start()
        h.scheduler.run_until(0.06)
        assert h.pacemaker._consecutive_timeouts == 1
        h.pacemaker.advance_on_tc(
            TimeoutCertificate(view=1, signers=frozenset({"r0", "r1", "r2"}))
        )
        assert h.pacemaker._consecutive_timeouts == 0
        # The new view's timer is armed with the base timeout, not 2x.
        assert h.pacemaker.current_timeout() == pytest.approx(0.05)

    def test_stale_tc_does_not_reset_backoff(self):
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        h.pacemaker.advance_on_qc(5)
        h.scheduler.run_until(h.scheduler.now + 0.06)
        assert h.pacemaker._consecutive_timeouts == 1
        stale = TimeoutCertificate(view=2, signers=frozenset({"r0", "r1", "r2"}))
        assert not h.pacemaker.advance_on_tc(stale)
        assert h.pacemaker._consecutive_timeouts == 1


class TestStatsBounds:
    def test_views_entered_at_is_bounded(self):
        from repro.pacemaker.pacemaker import VIEW_HISTORY_BOUND

        h = PacemakerHarness()
        h.pacemaker.start()
        last = VIEW_HISTORY_BOUND + 500
        for view in range(1, last + 1):
            h.pacemaker.advance_on_qc(view)
        stats = h.pacemaker.stats
        assert len(stats.views_entered_at) == VIEW_HISTORY_BOUND
        assert (last + 1) in stats.views_entered_at  # newest retained
        assert 1 not in stats.views_entered_at  # oldest evicted
        assert stats.highest_view == last + 1


class TestStopResume:
    def test_stop_resume_reenters_current_view(self):
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        h.pacemaker.advance_on_qc(3)
        h.pacemaker.stop()
        h.scheduler.run_until(0.5)
        assert h.local_timeouts == []  # crashed: no timer fires
        h.pacemaker.resume()
        assert h.pacemaker.current_view == 4
        assert h.view_starts[-1] == (4, ViewChangeReason.START)
        h.scheduler.run_until(0.56)
        assert h.local_timeouts == [4]  # the timer is re-armed

    def test_stop_resume_repeatedly_leaves_one_live_timer(self):
        """Crash/recover cycles must not accumulate live timers."""
        h = PacemakerHarness(view_timeout=0.05)
        h.pacemaker.start()
        for _ in range(3):
            h.pacemaker.stop()
            h.pacemaker.resume()
        h.scheduler.run_until(0.06)
        assert h.local_timeouts == [1]  # exactly one timer fired

    def test_resume_counts_toward_view_synchronization(self):
        """After resume, remote timeouts still certify and advance views."""
        h = PacemakerHarness()
        h.pacemaker.start()
        h.pacemaker.stop()
        h.pacemaker.resume()
        tc = None
        for voter in ["r1", "r2", "r3"]:
            tc = h.pacemaker.process_remote_timeout(h.remote_timeout(voter, view=1))
        assert tc is not None
        assert h.pacemaker.advance_on_tc(tc)
        assert h.pacemaker.current_view == 2
