"""Unit tests for the HotStuff safety rules (paper §II-B)."""

import pytest

from repro.forest.forest import BlockForest
from repro.protocols.hotstuff import HotStuffSafety
from repro.types.block import GENESIS_ID, make_block
from repro.types.certificates import QuorumCertificate

from helpers import build_certified_chain, certify, extend_chain, make_transactions


def chain_with_safety(views):
    forest, blocks = build_certified_chain(views)
    safety = HotStuffSafety(forest)
    for block in blocks:
        qc = forest.get(block.block_id).qc
        safety.note_embedded_qc(qc)
    return forest, blocks, safety


class TestMetadata:
    def test_protocol_properties(self):
        safety = HotStuffSafety(BlockForest())
        assert safety.protocol_name == "hotstuff"
        assert not safety.votes_broadcast
        assert not safety.echo_messages
        assert safety.responsive
        assert safety.commit_rule_depth == 3


class TestStateUpdating:
    def test_initial_state_points_at_genesis(self):
        safety = HotStuffSafety(BlockForest())
        assert safety.high_qc.block_id == GENESIS_ID
        assert safety.locked_block_id == GENESIS_ID
        assert safety.last_voted_view == 0

    def test_high_qc_tracks_highest_view(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        assert safety.high_qc.block_id == blocks[-1].block_id

    def test_stale_qc_does_not_regress_high_qc(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        old_qc = forest.get(blocks[0].block_id).qc
        safety.update_qc(old_qc)
        assert safety.high_qc.block_id == blocks[-1].block_id

    def test_lock_is_head_of_highest_two_chain(self):
        # Certifying block at view 3 whose parent (view 2) is certified locks
        # the parent (the two-chain head).
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        assert safety.locked_block_id == blocks[1].block_id

    def test_lock_not_advanced_without_certified_parent(self):
        forest, blocks = build_certified_chain([1])
        safety = HotStuffSafety(forest)
        # Add a block at view 2 and certify it, but leave view 1 uncertified
        # from safety's perspective by feeding only the new QC.
        child = extend_chain(forest, blocks[0], [2])[0]
        qc = forest.get(child.block_id).qc
        fresh_forest, fresh_blocks = build_certified_chain([1])
        safety2 = HotStuffSafety(fresh_forest)
        safety2.update_qc(forest.get(blocks[0].block_id).qc)
        assert safety2.locked_block_id == GENESIS_ID

    def test_public_high_qc_tracks_embedded_only(self):
        forest, blocks = build_certified_chain([1, 2])
        safety = HotStuffSafety(forest)
        safety.note_embedded_qc(forest.get(blocks[0].block_id).qc)
        safety.update_qc(forest.get(blocks[1].block_id).qc)
        assert safety.public_high_qc.block_id == blocks[0].block_id
        assert safety.high_qc.block_id == blocks[1].block_id


class TestProposingRule:
    def test_proposal_extends_high_qc_block(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        plan = safety.choose_extension()
        assert plan.parent_id == blocks[-1].block_id
        assert plan.qc.block_id == blocks[-1].block_id


class TestVotingRule:
    def test_votes_for_block_extending_lock(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        proposal = make_block(4, blocks[-1], safety.high_qc, "r0", make_transactions(1))
        assert safety.should_vote(proposal)

    def test_rejects_stale_view(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        safety.last_voted_view = 10
        proposal = make_block(4, blocks[-1], safety.high_qc, "r0", ())
        assert not safety.should_vote(proposal)

    def test_record_vote_sent_advances_last_voted_view(self):
        forest, blocks, safety = chain_with_safety([1, 2])
        proposal = make_block(3, blocks[-1], safety.high_qc, "r0", ())
        safety.record_vote_sent(proposal)
        assert safety.last_voted_view == 3
        assert not safety.should_vote(proposal)

    def test_rejects_mismatched_justification(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        genesis_qc = forest.get(GENESIS_ID).qc
        proposal = make_block(4, blocks[-1], genesis_qc, "r0", ())
        assert not safety.should_vote(proposal)

    def test_accepts_fork_extending_locked_block(self):
        # The forking attack: a proposal abandoning the two newest blocks but
        # extending the lock is still voted for.
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        lock = forest.get_block(safety.locked_block_id)
        lock_qc = forest.get(lock.block_id).qc
        fork = make_block(4, lock, lock_qc, "byz", ())
        assert safety.should_vote(fork)

    def test_rejects_fork_below_locked_block(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        genesis = forest.get_block(GENESIS_ID)
        genesis_qc = forest.get(GENESIS_ID).qc
        fork = make_block(4, genesis, genesis_qc, "byz", ())
        assert not safety.should_vote(fork)

    def test_liveness_escape_via_higher_justify_view(self):
        # A proposal that conflicts with the lock is accepted when its
        # justification is newer than the lock (the unlock rule).
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        # Build a conflicting branch from block 2 certified at a higher view.
        fork = make_block(4, blocks[1], forest.get(blocks[1].block_id).qc, "r1", ())
        forest.add_block(fork)
        fork_qc = certify(forest, fork)
        proposal = make_block(5, fork, fork_qc, "r2", ())
        # The proposal does not extend the lock (blocks[1] is the lock, the
        # fork extends it, so actually pick a deeper conflict): lock is b2.
        assert safety.should_vote(proposal)


class TestCommitRule:
    def test_three_consecutive_certified_blocks_commit_head(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        assert safety.commit_candidate(blocks[2].block_id) == blocks[0].block_id

    def test_gap_in_views_prevents_commit(self):
        forest, blocks, safety = chain_with_safety([1, 2, 4])
        assert safety.commit_candidate(blocks[2].block_id) is None

    def test_two_blocks_are_not_enough(self):
        forest, blocks, safety = chain_with_safety([1, 2])
        assert safety.commit_candidate(blocks[1].block_id) is None

    def test_uncertified_tail_prevents_commit(self):
        forest, blocks = build_certified_chain([1, 2])
        safety = HotStuffSafety(forest)
        tail = extend_chain(forest, blocks[-1], [3], certify_blocks=False)[0]
        assert safety.commit_candidate(tail.block_id) is None

    def test_already_committed_head_returns_none(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        forest.commit(blocks[0].block_id, at_view=4)
        assert safety.commit_candidate(blocks[2].block_id) is None

    def test_silence_gap_delays_commit_like_fig6(self):
        # Views 1,2 then a gap (silent view 3 loses its QC), then 5,6,7:
        # block 1 only commits once the consecutive run 5,6,7 is certified.
        forest, blocks, safety = chain_with_safety([1, 2, 5, 6, 7])
        assert safety.commit_candidate(blocks[1].block_id) is None  # after view-2 QC
        assert safety.commit_candidate(blocks[3].block_id) is None  # 5,6 not enough
        assert safety.commit_candidate(blocks[4].block_id) == blocks[2].block_id
