"""Unit tests for the Streamlet safety rules (paper §II-D)."""

from repro.forest.forest import BlockForest
from repro.protocols.streamlet import StreamletSafety
from repro.types.block import GENESIS_ID, make_block

from helpers import build_certified_chain, certify, extend_chain, make_transactions


def chain_with_safety(views):
    forest, blocks = build_certified_chain(views)
    safety = StreamletSafety(forest)
    for block in blocks:
        safety.note_embedded_qc(forest.get(block.block_id).qc)
    return forest, blocks, safety


class TestMetadata:
    def test_protocol_properties(self):
        safety = StreamletSafety(BlockForest())
        assert safety.protocol_name == "streamlet"
        assert safety.votes_broadcast
        assert safety.echo_messages
        assert not safety.responsive
        assert safety.commit_rule_depth == 3


class TestProposingRule:
    def test_proposal_extends_longest_notarized_chain(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        plan = safety.choose_extension()
        assert plan.parent_id == blocks[-1].block_id

    def test_proposal_ignores_shorter_certified_fork(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        fork = make_block(4, forest.get_block(GENESIS_ID), forest.get(GENESIS_ID).qc, "byz", ())
        forest.add_block(fork)
        certify(forest, fork)
        plan = safety.choose_extension()
        assert plan.parent_id == blocks[-1].block_id

    def test_proposal_on_fresh_forest_extends_genesis(self):
        safety = StreamletSafety(BlockForest())
        assert safety.choose_extension().parent_id == GENESIS_ID


class TestVotingRule:
    def test_votes_for_extension_of_longest_chain(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        tip_qc = forest.get(blocks[-1].block_id).qc
        proposal = make_block(4, blocks[-1], tip_qc, "r0", make_transactions(1))
        assert safety.should_vote(proposal)

    def test_rejects_block_on_shorter_chain(self):
        # This is the forking-attack immunity: a proposal abandoning the
        # longest notarized chain is never voted for.
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        target = blocks[1]
        fork = make_block(4, target, forest.get(target.block_id).qc, "byz", ())
        assert not safety.should_vote(fork)

    def test_rejects_block_with_uncertified_parent(self):
        forest, blocks, safety = chain_with_safety([1, 2])
        loose = extend_chain(forest, blocks[-1], [3], certify_blocks=False)[0]
        tip_qc = forest.get(blocks[-1].block_id).qc
        proposal = make_block(
            4,
            loose,
            tip_qc,
            "r0",
            (),
        )
        assert not safety.should_vote(proposal)

    def test_votes_only_once_per_view(self):
        forest, blocks, safety = chain_with_safety([1, 2])
        tip_qc = forest.get(blocks[-1].block_id).qc
        first = make_block(3, blocks[-1], tip_qc, "r0", ())
        second = make_block(3, blocks[-1], tip_qc, "r1", make_transactions(1))
        assert safety.should_vote(first)
        safety.record_vote_sent(first)
        assert not safety.should_vote(second)

    def test_accepts_tie_between_equal_length_chains(self):
        # Two certified chains of equal length: extending either is valid.
        forest, blocks = build_certified_chain([1, 2])
        safety = StreamletSafety(forest)
        rival = make_block(3, blocks[0], forest.get(blocks[0].block_id).qc, "r1", ())
        forest.add_block(rival)
        certify(forest, rival)
        tip_qc = forest.get(rival.block_id).qc
        proposal = make_block(4, rival, tip_qc, "r2", ())
        assert safety.should_vote(proposal)


class TestCommitRule:
    def test_three_consecutive_views_commit_first_two(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        assert safety.commit_candidate(blocks[2].block_id) == blocks[1].block_id

    def test_gap_in_views_prevents_commit(self):
        forest, blocks, safety = chain_with_safety([1, 3, 4])
        assert safety.commit_candidate(blocks[2].block_id) is None

    def test_genesis_completes_the_first_trio(self):
        # Genesis is notarized at view 0, so certified blocks at views 1 and 2
        # already form three consecutive notarized views and commit view 1.
        forest, blocks, safety = chain_with_safety([1, 2])
        assert safety.commit_candidate(blocks[1].block_id) == blocks[0].block_id

    def test_commit_requires_three_consecutive_views(self):
        forest, blocks, safety = chain_with_safety([2, 3])
        assert safety.commit_candidate(blocks[1].block_id) is None

    def test_middle_already_committed_returns_none(self):
        forest, blocks, safety = chain_with_safety([1, 2, 3])
        forest.commit(blocks[1].block_id, at_view=3)
        assert safety.commit_candidate(blocks[2].block_id) is None
