"""Shared helpers for the test suite: hand-built chains, forests, and votes."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.forest.forest import BlockForest
from repro.types.block import Block, make_block
from repro.types.certificates import QuorumCertificate, Vote, vote_digest
from repro.types.transaction import Transaction


def make_transactions(count: int, client_id: str = "c0", payload_size: int = 0) -> Tuple[Transaction, ...]:
    """Create ``count`` distinct transactions."""
    return tuple(
        Transaction.create(client_id=client_id, created_at=0.0, payload_size=payload_size)
        for _ in range(count)
    )


def certify(forest: BlockForest, block: Block, num_nodes: int = 4) -> QuorumCertificate:
    """Record a quorum certificate for ``block`` in ``forest`` and return it."""
    signers = frozenset(f"r{i}" for i in range(2 * ((num_nodes - 1) // 3) + 1))
    qc = QuorumCertificate(block_id=block.block_id, view=block.view, signers=signers)
    forest.record_qc(qc)
    return qc


def extend_chain(
    forest: BlockForest,
    parent: Block,
    views: List[int],
    proposer: str = "r0",
    txs_per_block: int = 0,
    certify_blocks: bool = True,
    num_nodes: int = 4,
) -> List[Block]:
    """Append a chain of blocks at the given views, optionally certified."""
    blocks = []
    current = parent
    for view in views:
        parent_vertex = forest.get(current.block_id)
        qc = parent_vertex.qc
        if qc is None:
            qc = QuorumCertificate(
                block_id=current.block_id, view=current.view, signers=frozenset({"r0", "r1", "r2"})
            )
        block = make_block(
            view=view,
            parent=current,
            qc=qc,
            proposer=proposer,
            transactions=make_transactions(txs_per_block),
        )
        forest.add_block(block)
        if certify_blocks:
            certify(forest, block, num_nodes)
        blocks.append(block)
        current = block
    return blocks


def build_certified_chain(
    views: List[int], txs_per_block: int = 0, num_nodes: int = 4
) -> Tuple[BlockForest, List[Block]]:
    """A fresh forest containing one certified chain at the given views."""
    forest = BlockForest()
    blocks = extend_chain(
        forest, forest.genesis, views, txs_per_block=txs_per_block, num_nodes=num_nodes
    )
    return forest, blocks


def make_vote(registry: KeyRegistry, voter: str, block: Block) -> Vote:
    """Create a validly signed vote from ``voter`` for ``block``."""
    keypair = registry.register(voter)
    return Vote(
        voter=voter,
        block_id=block.block_id,
        view=block.view,
        signature=sign(keypair, vote_digest(block.block_id, block.view)),
    )
