"""Unit tests for the extension protocols (Fast-HotStuff, LBFT) and the registry."""

import pytest

from repro.forest.forest import BlockForest
from repro.protocols.fasthotstuff import FastHotStuffSafety
from repro.protocols.lbft import LeaderBroadcastSafety
from repro.protocols.registry import available_protocols, make_safety
from repro.types.block import make_block

from helpers import build_certified_chain


class TestRegistry:
    def test_available_protocols(self):
        names = available_protocols()
        assert {"hotstuff", "2chainhs", "streamlet", "fasthotstuff", "lbft"} <= set(names)

    @pytest.mark.parametrize(
        "alias,expected",
        [
            ("hotstuff", "hotstuff"),
            ("HS", "hotstuff"),
            ("2CHS", "2chainhs"),
            ("two-chain", "2chainhs"),
            ("streamlet", "streamlet"),
            ("SL", "streamlet"),
            ("Fast-HotStuff", "fasthotstuff"),
            ("lbft", "lbft"),
        ],
    )
    def test_aliases_resolve(self, alias, expected):
        safety = make_safety(alias, BlockForest())
        assert safety.protocol_name == expected

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            make_safety("pbft", BlockForest())

    def test_each_instantiation_gets_fresh_state(self):
        forest = BlockForest()
        a = make_safety("hotstuff", forest)
        b = make_safety("hotstuff", forest)
        assert a is not b


class TestFastHotStuff:
    def test_metadata(self):
        safety = FastHotStuffSafety(BlockForest())
        assert safety.responsive
        assert safety.commit_rule_depth == 2
        assert not safety.votes_broadcast

    def test_two_chain_commit(self):
        forest, blocks = build_certified_chain([1, 2])
        safety = FastHotStuffSafety(forest)
        assert safety.commit_candidate(blocks[1].block_id) == blocks[0].block_id

    def test_accepts_justification_equal_to_lock(self):
        # The responsiveness relaxation: a new leader that only knows a QC as
        # high as the lock may still make an acceptable proposal.
        forest, blocks = build_certified_chain([1, 2, 3])
        safety = FastHotStuffSafety(forest)
        for block in blocks:
            safety.note_embedded_qc(forest.get(block.block_id).qc)
        lock = forest.get_block(safety.locked_block_id)
        proposal = make_block(5, lock, forest.get(lock.block_id).qc, "r1", ())
        assert safety.should_vote(proposal)

    def test_two_chain_hotstuff_would_reject_that_relaxation(self):
        from repro.protocols.twochain import TwoChainHotStuffSafety

        forest, blocks = build_certified_chain([1, 2, 3])
        strict = TwoChainHotStuffSafety(forest)
        relaxed = FastHotStuffSafety(forest)
        for block in blocks:
            strict.note_embedded_qc(forest.get(block.block_id).qc)
            relaxed.note_embedded_qc(forest.get(block.block_id).qc)
        # Build a conflicting sibling of the tip justified by the same QC as
        # the lock: relaxed accepts (>=), strict rejects (needs >).
        lock = forest.get_block(strict.locked_block_id)
        parent = forest.get_block(blocks[1].block_id)
        rival = make_block(5, parent, forest.get(parent.block_id).qc, "r1", ())
        assert not strict.should_vote(rival)
        assert not relaxed.forest.extends(rival, relaxed.locked_block_id) or True
        # The rival extends b2 (not the lock b3): justify view == 2 < lock 3,
        # so both reject; now test the >= case with a proposal on the lock.
        on_lock = make_block(6, lock, forest.get(lock.block_id).qc, "r2", ())
        assert relaxed.should_vote(on_lock)
        assert strict.should_vote(on_lock)  # extends the lock, both accept


class TestLeaderBroadcast:
    def test_metadata(self):
        safety = LeaderBroadcastSafety(BlockForest())
        assert safety.votes_broadcast
        assert not safety.echo_messages
        assert safety.commit_rule_depth == 2

    def test_two_chain_commit(self):
        forest, blocks = build_certified_chain([1, 2])
        safety = LeaderBroadcastSafety(forest)
        assert safety.commit_candidate(blocks[0].block_id) is None
        assert safety.commit_candidate(blocks[1].block_id) == blocks[0].block_id

    def test_votes_for_chain_extension(self):
        forest, blocks = build_certified_chain([1, 2])
        safety = LeaderBroadcastSafety(forest)
        for block in blocks:
            safety.note_embedded_qc(forest.get(block.block_id).qc)
        proposal = make_block(3, blocks[-1], safety.high_qc, "r0", ())
        assert safety.should_vote(proposal)
