"""Property-based tests (hypothesis) for the block forest invariants."""

from hypothesis import given, settings, strategies as st

from repro.forest.forest import BlockForest
from repro.types.block import GENESIS_ID, make_block
from repro.types.certificates import QuorumCertificate


def apply_script(script):
    """Build a forest from a script of (parent_choice, certify) actions.

    Each action extends a randomly chosen existing block with a new block at
    the next unused view, optionally certifying it.  The result is an
    arbitrary block tree that nevertheless respects the structural rules
    (monotone views, height = parent height + 1).
    """
    forest = BlockForest()
    blocks = [forest.genesis]
    view = 0
    for parent_choice, certify_flag in script:
        view += 1
        parent = blocks[parent_choice % len(blocks)]
        qc = QuorumCertificate(
            block_id=parent.block_id, view=parent.view, signers=frozenset({"r0", "r1", "r2"})
        )
        block = make_block(view, parent, qc, f"r{parent_choice % 4}", ())
        forest.add_block(block)
        if certify_flag:
            forest.record_qc(
                QuorumCertificate(
                    block_id=block.block_id, view=block.view, signers=frozenset({"r0", "r1", "r2"})
                )
            )
        blocks.append(block)
    return forest, blocks


script_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=1000), st.booleans()),
    min_size=1,
    max_size=40,
)


class TestForestInvariants:
    @given(script=script_strategy)
    @settings(max_examples=60, deadline=None)
    def test_heights_and_views_increase_along_every_path(self, script):
        forest, blocks = apply_script(script)
        for block in blocks[1:]:
            vertex = forest.get(block.block_id)
            parent = forest.parent(block.block_id)
            assert vertex.height == parent.height + 1
            assert vertex.view > parent.view

    @given(script=script_strategy)
    @settings(max_examples=60, deadline=None)
    def test_every_block_reaches_genesis(self, script):
        forest, blocks = apply_script(script)
        for block in blocks[1:]:
            ancestors = list(forest.ancestors(block.block_id))
            assert ancestors[-1].block_id == GENESIS_ID

    @given(script=script_strategy)
    @settings(max_examples=60, deadline=None)
    def test_ancestry_is_antisymmetric(self, script):
        forest, blocks = apply_script(script)
        for a in blocks:
            for b in blocks:
                if a.block_id == b.block_id:
                    continue
                both = forest.is_ancestor(a.block_id, b.block_id) and forest.is_ancestor(
                    b.block_id, a.block_id
                )
                assert not both

    @given(script=script_strategy)
    @settings(max_examples=60, deadline=None)
    def test_longest_certified_tip_is_certified_and_highest(self, script):
        forest, _blocks = apply_script(script)
        tip = forest.longest_certified_tip()
        assert tip.certified
        for vertex in [forest.get(b.block_id) for b in _blocks]:
            if vertex.certified:
                assert vertex.height <= tip.height

    @given(script=script_strategy)
    @settings(max_examples=60, deadline=None)
    def test_tip_maximizes_chain_length_on_fully_notarized_forests(self, script):
        # In the states Streamlet can actually reach, every certified block
        # has a certified parent; restrict the forest to that case and check
        # that the height-based tip is also the longest-notarized-chain tip.
        forest, blocks = apply_script([(choice, True) for choice, _ in script])
        tip = forest.longest_certified_tip()
        tip_length = forest.certified_chain_length(tip.block_id)
        for vertex in [forest.get(b.block_id) for b in blocks]:
            assert forest.certified_chain_length(vertex.block_id) <= tip_length

    @given(script=script_strategy, commit_index=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_committed_chain_is_a_single_path(self, script, commit_index):
        forest, blocks = apply_script(script)
        target = blocks[commit_index % len(blocks)]
        forest.commit(target.block_id, at_view=999)
        chain = forest.committed_chain
        # Consecutive committed blocks are parent/child pairs.
        for parent_id, child_id in zip(chain, chain[1:]):
            assert forest.get(child_id).block.parent_id == parent_id

    @given(script=script_strategy, commit_index=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_prune_never_removes_committed_blocks(self, script, commit_index):
        forest, blocks = apply_script(script)
        target = blocks[commit_index % len(blocks)]
        forest.commit(target.block_id, at_view=999)
        committed_before = set(forest.committed_chain)
        forest.prune(forest.committed_height)
        for block_id in committed_before:
            assert block_id in forest

    @given(script=script_strategy, commit_index=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_pruned_blocks_conflict_with_the_committed_chain(self, script, commit_index):
        forest, blocks = apply_script(script)
        target = blocks[commit_index % len(blocks)]
        forest.commit(target.block_id, at_view=999)
        last_committed = forest.last_committed().block_id
        removed = forest.prune(forest.committed_height)
        for vertex in removed:
            assert not forest.is_ancestor(vertex.block_id, last_committed)
