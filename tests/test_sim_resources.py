"""Unit tests for the FIFO server resource (CPU / NIC model)."""

import pytest

from repro.sim.events import EventScheduler
from repro.sim.resources import FifoServer


class TestFifoServer:
    def test_single_job_completes_after_service_time(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        done = []
        server.submit(2.0, lambda: done.append(sched.now))
        sched.run_until(10.0)
        assert done == [2.0]

    def test_jobs_are_served_in_order(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        done = []
        server.submit(1.0, lambda: done.append(("a", sched.now)))
        server.submit(1.0, lambda: done.append(("b", sched.now)))
        server.submit(1.0, lambda: done.append(("c", sched.now)))
        sched.run_until(10.0)
        assert done == [("a", 1.0), ("b", 2.0), ("c", 3.0)]

    def test_server_is_work_conserving(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        done = []
        server.submit(1.0, lambda: done.append(sched.now))
        sched.run_until(5.0)
        # Submit again after an idle period; service starts immediately.
        server.submit(1.0, lambda: done.append(sched.now))
        sched.run_until(10.0)
        assert done == [1.0, 6.0]

    def test_queue_length_excludes_job_in_service(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        for _ in range(3):
            server.submit(1.0, lambda: None)
        assert server.queue_length == 2
        assert server.busy

    def test_negative_service_time_rejected(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        with pytest.raises(ValueError):
            server.submit(-1.0, lambda: None)

    def test_zero_service_time_allowed(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        done = []
        server.submit(0.0, lambda: done.append(sched.now))
        sched.run_until(1.0)
        assert done == [0.0]

    def test_jobs_submitted_from_callbacks(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        done = []

        def first():
            done.append(("first", sched.now))
            server.submit(2.0, lambda: done.append(("second", sched.now)))

        server.submit(1.0, first)
        sched.run_until(10.0)
        assert done == [("first", 1.0), ("second", 3.0)]


class TestStatistics:
    def test_utilization_of_busy_server(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        server.submit(4.0, lambda: None)
        sched.run_until(8.0)
        assert server.utilization() == pytest.approx(0.5)

    def test_utilization_is_zero_initially(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        assert server.utilization() == 0.0

    def test_jobs_served_counter(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        for _ in range(5):
            server.submit(0.5, lambda: None)
        sched.run_until(10.0)
        assert server.jobs_served == 5

    def test_average_sojourn_includes_queueing(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        server.submit(1.0, lambda: None)  # sojourn 1
        server.submit(1.0, lambda: None)  # sojourn 2 (waits 1)
        sched.run_until(10.0)
        assert server.average_sojourn() == pytest.approx(1.5)

    def test_average_sojourn_with_no_jobs(self):
        sched = EventScheduler()
        server = FifoServer(sched, "cpu")
        assert server.average_sojourn() == 0.0
