"""Unit tests for the core data types."""

import pytest

from repro.types.block import GENESIS_ID, compute_block_id, make_block, make_genesis
from repro.types.certificates import QuorumCertificate, TimeoutCertificate, timeout_digest, vote_digest
from repro.types.messages import (
    UNASSIGNED_MESSAGE_ID,
    ClientReply,
    ProposalMessage,
    VoteMessage,
)
from repro.types.sizes import SizeModel
from repro.types.transaction import Transaction

from helpers import make_transactions


class TestTransaction:
    def test_create_assigns_unique_ids(self):
        a = Transaction.create("c0", created_at=0.0)
        b = Transaction.create("c0", created_at=0.0)
        assert a.txid != b.txid

    def test_create_records_client_and_time(self):
        tx = Transaction.create("c7", created_at=1.25, payload_size=128)
        assert tx.client_id == "c7"
        assert tx.created_at == 1.25
        assert tx.payload_size == 128

    def test_default_operation_is_put(self):
        tx = Transaction.create("c0", created_at=0.0)
        assert tx.operation == "put"

    def test_hash_by_txid(self):
        tx = Transaction.create("c0", created_at=0.0)
        assert hash(tx) == hash(tx.txid)


class TestGenesis:
    def test_genesis_has_height_zero_and_no_parent(self):
        genesis, qc = make_genesis()
        assert genesis.height == 0
        assert genesis.parent_id is None
        assert genesis.is_genesis
        assert qc.is_genesis

    def test_genesis_qc_certifies_genesis(self):
        genesis, qc = make_genesis()
        assert qc.block_id == genesis.block_id == GENESIS_ID


class TestBlock:
    def test_make_block_links_to_parent(self):
        genesis, qc = make_genesis()
        block = make_block(1, genesis, qc, "r0", make_transactions(3))
        assert block.parent_id == genesis.block_id
        assert block.height == 1
        assert block.view == 1
        assert block.num_transactions == 3

    def test_block_id_depends_on_content(self):
        genesis, _qc = make_genesis()
        txs = make_transactions(2)
        a = compute_block_id(1, genesis.block_id, "r0", txs)
        b = compute_block_id(2, genesis.block_id, "r0", txs)
        c = compute_block_id(1, genesis.block_id, "r1", txs)
        assert len({a, b, c}) == 3

    def test_payload_bytes_sums_transaction_payloads(self):
        genesis, qc = make_genesis()
        txs = make_transactions(4, payload_size=100)
        block = make_block(1, genesis, qc, "r0", txs)
        assert block.payload_bytes == 400

    def test_non_genesis_block_is_not_genesis(self):
        genesis, qc = make_genesis()
        block = make_block(1, genesis, qc, "r0", ())
        assert not block.is_genesis


class TestCertificates:
    def test_vote_digest_depends_on_block_and_view(self):
        assert vote_digest("b1", 1) != vote_digest("b1", 2)
        assert vote_digest("b1", 1) != vote_digest("b2", 1)

    def test_timeout_digest_depends_on_view(self):
        assert timeout_digest(1) != timeout_digest(2)

    def test_non_genesis_qc_is_not_genesis(self):
        qc = QuorumCertificate(block_id="b1", view=3, signers=frozenset({"r0"}))
        assert not qc.is_genesis

    def test_tc_holds_high_qc_view(self):
        tc = TimeoutCertificate(view=4, signers=frozenset({"r0", "r1", "r2"}), high_qc_view=3)
        assert tc.high_qc_view == 3


class TestMessages:
    def test_messages_start_unassigned(self):
        # Ids are stamped by the transport that first carries the message
        # (see test_network.py), not at construction — construction must not
        # consult any process-global counter.
        a = ClientReply(sender="r0", size_bytes=10)
        b = ClientReply(sender="r0", size_bytes=10)
        assert a.message_id == b.message_id == UNASSIGNED_MESSAGE_ID

    def test_client_reply_default_status(self):
        reply = ClientReply(sender="r0", size_bytes=10)
        assert reply.status == "committed"

    def test_proposal_message_holds_block_and_view(self):
        genesis, qc = make_genesis()
        block = make_block(1, genesis, qc, "r0", ())
        msg = ProposalMessage(sender="r0", size_bytes=100, block=block, view=1)
        assert msg.block is block
        assert msg.view == 1
        assert msg.forwarded_by == ""

    def test_vote_message_default_not_forwarded(self):
        msg = VoteMessage(sender="r0", size_bytes=10, vote=None)
        assert msg.forwarded_by == ""


class TestSizeModel:
    def setup_method(self):
        self.sizes = SizeModel()

    def test_transaction_size_includes_payload(self):
        assert self.sizes.transaction_size(100) == self.sizes.tx_header_size + 100

    def test_qc_size_scales_with_signers(self):
        assert self.sizes.qc_size(3) - self.sizes.qc_size(2) == self.sizes.signature_size

    def test_block_size_scales_with_transactions(self):
        small = self.sizes.block_size(100, 0, 3)
        large = self.sizes.block_size(400, 0, 3)
        assert large - small == 300 * self.sizes.tx_header_size

    def test_block_size_scales_with_payload(self):
        no_payload = self.sizes.block_size(100, 0, 3)
        with_payload = self.sizes.block_size(100, 128, 3)
        assert with_payload - no_payload == 100 * 128

    def test_block_size_for_matches_block_size_for_uniform_payload(self):
        txs = make_transactions(10, payload_size=64)
        assert self.sizes.block_size_for(txs, 3) == self.sizes.block_size(10, 64, 3)

    def test_vote_smaller_than_block(self):
        assert self.sizes.vote_size() < self.sizes.block_size(100, 0, 3)

    def test_client_request_size_includes_payload(self):
        assert (
            self.sizes.client_request_size(256)
            == self.sizes.client_request_overhead + 256
        )
