"""Tests for the analysis subsystem: stats, tables, figures, regressions.

Pure-stats tests run on synthetic records; the end-to-end tests share one
real campaign (module-scoped fixture, fast config) stored on disk, and the
figure/report/regress paths are additionally asserted to execute **zero
simulations** by poisoning the runner entry points.
"""

import json
import math

import pytest

from repro import api
from repro.analysis import (
    Aggregate,
    FigureError,
    aggregate_records,
    aggregate_rows,
    comparison_table,
    compare,
    compare_records,
    csv_table,
    figure_for_campaign,
    format_measure,
    format_table,
    freeze,
    load_baseline,
    markdown_table,
    render_figure,
    render_store,
    save_baseline,
    t_critical,
)
from repro.analysis.regress import BaselineError
from repro.analysis.stats import GroupSummary
from repro.bench.config import Configuration
from repro.experiments import ExperimentSpec, ResultStore
from repro.experiments.cli import main as cli_main

FAST = dict(
    block_size=20,
    runtime=0.5,
    warmup=0.1,
    cooldown=0.1,
    concurrency=8,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.05,
    request_timeout=0.2,
)

BASE = Configuration(**FAST)


def record(campaign="camp", params=None, metrics=None, timeline=None, consistent=True):
    """A minimal synthetic campaign record."""
    return {
        "run_id": f"id-{json.dumps(params, sort_keys=True)}-{json.dumps(metrics)}",
        "campaign": campaign,
        "params": dict(params or {}),
        "metrics": dict(metrics or {}),
        "timeline": timeline or [],
        "consistent": consistent,
    }


def reps(campaign, base_params, samples, **extra_metrics):
    """Synthetic repetition records: one per sample value of throughput_tps."""
    out = []
    for i, value in enumerate(samples):
        params = dict(base_params)
        params["_repetition"] = i
        out.append(record(campaign, params,
                          {"throughput_tps": value, "latency_samples": 10, **extra_metrics}))
    return out


# ----------------------------------------------------------------------
# stats
# ----------------------------------------------------------------------
class TestAggregate:
    def test_single_sample_has_degenerate_interval(self):
        agg = Aggregate.from_samples([42.0])
        assert (agg.n, agg.mean, agg.stddev, agg.ci95) == (1, 42.0, 0.0, 0.0)

    def test_known_values(self):
        # mean 2, sample stddev 1, ci95 = t(2) * 1/sqrt(3)
        agg = Aggregate.from_samples([1.0, 2.0, 3.0])
        assert agg.mean == 2.0
        assert agg.stddev == pytest.approx(1.0)
        assert agg.ci95 == pytest.approx(4.303 / math.sqrt(3))
        assert (agg.minimum, agg.maximum) == (1.0, 3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Aggregate.from_samples([])

    def test_scaling_is_linear(self):
        agg = Aggregate.from_samples([0.001, 0.002, 0.003]).scaled(1e3)
        assert agg.mean == pytest.approx(2.0)
        assert agg.ci95 == pytest.approx(4.303 / math.sqrt(3))

    def test_round_trip(self):
        agg = Aggregate.from_samples([1.0, 5.0, 9.0])
        assert Aggregate.from_dict(json.loads(json.dumps(agg.to_dict()))) == agg

    def test_t_critical_table_and_limits(self):
        assert t_critical(1) == 12.706
        assert t_critical(30) == 2.042
        # Between rows: conservative (next-lower df); beyond the table: normal.
        assert t_critical(35) == 2.042
        assert t_critical(1000) == 1.96
        with pytest.raises(ValueError):
            t_critical(0)


class TestAggregateRecords:
    def test_repetitions_collapse_to_one_group(self):
        records = reps("camp", {"protocol": "hotstuff"}, [100.0, 110.0, 120.0])
        (group,) = aggregate_records(records)
        assert group.n == 3
        assert group.params == {"protocol": "hotstuff"}
        assert group.metric("throughput_tps").mean == pytest.approx(110.0)
        assert group.metric("throughput_tps").ci95 > 0

    def test_groups_keep_expansion_order_and_split_on_params(self):
        records = reps("camp", {"protocol": "hotstuff"}, [1.0, 2.0]) + reps(
            "camp", {"protocol": "2chainhs"}, [3.0, 4.0]
        )
        groups = aggregate_records(records)
        assert [g.params["protocol"] for g in groups] == ["hotstuff", "2chainhs"]

    def test_non_numeric_and_bool_metrics_are_skipped(self):
        records = [record(params={}, metrics={"throughput_tps": 1.0, "flag": True,
                                              "name": "x"})]
        (group,) = aggregate_records(records)
        assert set(group.metrics) == {"throughput_tps"}

    def test_pooled_latency_is_sample_weighted(self):
        a = record(params={"_repetition": 0},
                   metrics={"mean_latency": 1.0, "latency_samples": 1})
        b = record(params={"_repetition": 1},
                   metrics={"mean_latency": 2.0, "latency_samples": 3})
        (group,) = aggregate_records([a, b])
        # Unweighted mean is 1.5; pooled weighs the 3-sample run more.
        assert group.metric("mean_latency").mean == pytest.approx(1.5)
        assert group.pooled["mean_latency"] == pytest.approx(1.75)

    def test_timeline_pointwise_aggregation(self):
        a = record(params={"_repetition": 0}, metrics={"throughput_tps": 1.0},
                   timeline=[[0.0, 10.0], [0.5, 20.0]])
        b = record(params={"_repetition": 1}, metrics={"throughput_tps": 1.0},
                   timeline=[[0.0, 14.0], [0.5, 22.0], [1.0, 5.0]])
        (group,) = aggregate_records([a, b])
        # Cut to the shortest common length, mean per bucket, CI > 0.
        assert len(group.timeline) == 2
        t0, mean0, ci0 = group.timeline[0]
        assert (t0, mean0) == (0.0, 12.0)
        assert ci0 > 0

    def test_consistency_is_anded_across_repetitions(self):
        records = reps("camp", {}, [1.0, 2.0])
        records[1]["consistent"] = False
        (group,) = aggregate_records(records)
        assert group.consistent is False

    def test_summary_round_trip(self):
        (group,) = aggregate_records(reps("camp", {"p": 1}, [1.0, 2.0, 3.0]))
        clone = GroupSummary.from_dict(json.loads(json.dumps(group.to_dict())))
        assert clone.params == group.params
        assert clone.metrics["throughput_tps"] == group.metrics["throughput_tps"]


class TestAggregateRows:
    def test_collapses_float_columns_and_adds_ci(self):
        rows = [
            {"series": "HS", "x": 1, "tput": 10.0, "ok": True},
            {"series": "HS", "x": 1, "tput": 14.0, "ok": True},
            {"series": "HS", "x": 2, "tput": 20.0, "ok": True},
        ]
        out = aggregate_rows(rows, keys=["series", "x"])
        assert out[0]["tput"] == pytest.approx(12.0)
        assert out[0]["tput_ci95"] > 0
        assert out[0]["reps"] == 2
        assert out[0]["ok"] is True
        assert out[1]["tput"] == 20.0 and out[1]["reps"] == 1

    def test_boolean_columns_are_anded_not_first_sampled(self):
        # One inconsistent repetition must surface even when the group's
        # first row passed.
        rows = [
            {"series": "HS", "tput": 10.0, "consistent": True},
            {"series": "HS", "tput": 11.0, "consistent": False},
            {"series": "SL", "tput": 5.0, "consistent": True},
        ]
        out = aggregate_rows(rows, keys=["series"])
        assert out[0]["consistent"] is False
        assert out[1]["consistent"] is True

    def test_missing_metric_in_a_later_row_is_tolerated(self):
        # A repetition that failed to produce a metric must not crash the
        # collapse; the aggregate covers the present samples.
        out = aggregate_rows([{"k": 1, "m": 1.0}, {"k": 1}], keys=["k"])
        assert out[0]["m"] == 1.0
        assert out[0]["reps"] == 2


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
class TestReport:
    ROWS = [{"a": 1, "b": 2.5}, {"a": None, "b": 0.0}]

    def test_text_table_is_aligned(self):
        table = format_table(self.ROWS, ["a", "b"])
        assert table.splitlines()[0].startswith("a")
        assert "2.50" in table and "-" in table

    def test_markdown_table(self):
        table = markdown_table(self.ROWS, ["a", "b"])
        assert table.splitlines()[1] == "| --- | --- |"
        assert "| 2.50 |" in table

    def test_csv_keeps_raw_values(self):
        table = csv_table(self.ROWS, ["a", "b"])
        assert table.splitlines()[1] == "1,2.5"

    def test_comparison_table_formats_mean_plus_ci(self):
        groups = aggregate_records(
            reps("camp", {"protocol": "hs"}, [100.0, 110.0, 120.0],
                 mean_latency=0.005)
        )
        table = comparison_table(groups)
        assert "±" in table
        assert "protocol=hs" in table
        # Latency shown in milliseconds.
        assert "5.00" in table

    def test_format_measure_single_sample_has_no_interval(self):
        assert format_measure(Aggregate.from_samples([3.0])) == "3.00"


# ----------------------------------------------------------------------
# figures
# ----------------------------------------------------------------------
def scalability_records(repetitions=3):
    records = []
    for protocol, base in (("hotstuff", 100.0), ("2chainhs", 130.0)):
        for nodes in (4, 8):
            for rep in range(repetitions):
                records.append(record(
                    "fig12_smoke",
                    {"protocol": protocol, "num_nodes": nodes, "_repetition": rep},
                    {"throughput_tps": base / nodes * 4 + rep, "mean_latency": 0.005},
                ))
    return records


class TestFigures:
    def test_campaign_prefix_resolution(self):
        assert figure_for_campaign("fig9_block_sizes").key == "fig9"
        assert figure_for_campaign("table2_arrival_vs_throughput").key == "table2"
        assert figure_for_campaign("unrelated") is None

    def test_renders_svg_with_series_and_error_bars(self):
        svg = render_figure(scalability_records())
        assert svg.startswith("<svg ") and svg.rstrip().endswith("</svg>")
        # One polyline per protocol, markers, and CI whisker lines.
        assert svg.count("<polyline") == 2
        assert "hotstuff" in svg and "2chainhs" in svg
        assert "<circle" in svg
        # 4 groups with n=3 each: error bars present (3 lines per whisker).
        assert svg.count("<line") > 12

    def test_single_repetition_has_no_error_bars(self):
        def colored_lines(svg):
            return sum(1 for line in svg.splitlines()
                       if "<line" in line and "#0072B2" in line)

        # Degenerate CIs draw no whiskers: the only colored <line> left for
        # the first series is its legend swatch.
        assert colored_lines(render_figure(scalability_records(repetitions=1))) == 1
        assert colored_lines(render_figure(scalability_records(repetitions=3))) > 1

    def test_metric_vs_metric_curves(self):
        records = []
        for i, conc in enumerate((8, 16, 32)):
            records.append(record(
                "fig9_smoke", {"_series": "HS-b20", "concurrency": conc},
                {"throughput_tps": 100.0 * (i + 1), "mean_latency": 0.004 + 0.001 * i},
            ))
        svg = render_figure(records)
        assert "HS-b20" in svg and "<polyline" in svg

    def test_timeline_figure(self):
        records = [
            record("fig15_smoke", {"_series": "HS-t-small", "_repetition": rep},
                   {"throughput_tps": 50.0},
                   timeline=[[0.5 * i, 100.0 + rep + i] for i in range(10)])
            for rep in range(2)
        ]
        svg = render_figure(records)
        assert "time (s)" in svg and "<polyline" in svg

    def test_unplottable_records_raise(self):
        with pytest.raises(FigureError):
            render_figure([record("fig12_x", {"protocol": "hs"}, {"other": 1.0})])
        with pytest.raises(FigureError):
            render_figure([])

    def test_generic_fallback_for_unknown_campaign(self):
        svg = render_figure([record("custom", {"p": "a"}, {"throughput_tps": 10.0}),
                             record("custom", {"p": "b"}, {"throughput_tps": 12.0})])
        assert svg.startswith("<svg ")

    def test_render_store_writes_one_svg_per_campaign(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        for rec in scalability_records():
            store.add(rec)
        store.add(record("table2_smoke", {"arrival_rate": 100.0},
                         {"throughput_tps": 99.0}))
        paths = render_store(store, tmp_path / "figs")
        assert sorted(p.name for p in paths) == ["fig12_smoke.svg", "table2_smoke.svg"]
        for path in paths:
            assert path.stat().st_size > 500

    def test_render_store_rejects_unknown_campaign(self, tmp_path):
        store = ResultStore(tmp_path / "s")
        store.add(record("camp", {}, {"throughput_tps": 1.0}))
        with pytest.raises(FigureError, match="not in store"):
            render_store(store, tmp_path / "figs", campaigns=["nope"])


class TestMultiPanelFigures:
    """Figures 13/14 render one panel per attack metric, composed as a
    grid of nested ``<svg>`` cells."""

    def attack_records(self, campaign="fig13", metrics=None):
        out = []
        for byz in (0, 1, 2):
            for protocol in ("hotstuff", "streamlet"):
                shape = metrics or {
                    "throughput_tps": 1000.0 - 250.0 * byz,
                    "mean_latency": 0.008 + 0.003 * byz,
                    "chain_growth_rate": 18.0 - 4.0 * byz,
                    "block_interval": 0.05 + 0.02 * byz,
                }
                out.append(record(
                    campaign,
                    {"byzantine_nodes": byz, "protocol": protocol},
                    dict(shape),
                ))
        return out

    def test_fig13_and_fig14_render_all_four_metrics(self):
        for campaign in ("fig13_forking", "fig14_silence"):
            svg = render_figure(self.attack_records(campaign))
            # The outer document plus one nested <svg> per panel.
            assert svg.count("<svg ") == 5
            for label in ("throughput (Tx/s)", "mean latency (ms)",
                          "chain growth rate (blocks/s)", "block interval (s)"):
                assert label in svg
            assert svg.rstrip().endswith("</svg>")

    def test_missing_metric_drops_only_its_panel(self):
        records = self.attack_records(metrics={
            "throughput_tps": 500.0, "mean_latency": 0.01,
            "chain_growth_rate": 10.0,
        })
        svg = render_figure(records)
        assert svg.count("<svg ") == 4
        assert "block interval" not in svg

    def test_all_panels_missing_raises(self):
        records = self.attack_records(metrics={"unrelated": 1.0})
        with pytest.raises(FigureError):
            render_figure(records)

    def test_compose_grid_places_cells_and_sizes_the_document(self):
        from repro.analysis import compose_grid

        cell = ('<svg xmlns="http://www.w3.org/2000/svg" width="100" '
                'height="80" viewBox="0 0 100 80"></svg>')
        svg = compose_grid([cell] * 3, title="grid", columns=2)
        # 2 columns wide, 2 rows tall, plus the 36px title banner.
        assert 'width="200"' in svg and 'height="196"' in svg
        assert '<svg x="100" y="36"' in svg and '<svg x="0" y="116"' in svg
        with pytest.raises(FigureError):
            compose_grid([])


# ----------------------------------------------------------------------
# regress
# ----------------------------------------------------------------------
class TestRegress:
    def groups(self, center):
        return aggregate_records(reps(
            "camp", {"protocol": "hs"},
            [center - 5.0, center, center + 5.0],
            mean_latency=0.005, p99_latency=0.009,
            chain_growth_rate=1.0, block_interval=3.0,
        ))

    def test_freeze_and_compare_clean(self, tmp_path):
        baseline = freeze(self.groups(100.0))
        path = save_baseline(tmp_path / "base.json", baseline)
        report = compare(load_baseline(path), self.groups(100.0))
        assert report.ok
        assert report.compared_groups == 1
        assert "within its confidence interval" in report.render()

    def test_perturbation_outside_ci_is_flagged(self, tmp_path):
        baseline = freeze(self.groups(100.0))
        # ±5 spread with n=3 -> ci95 ≈ 12.4; a 50-unit move is far outside.
        report = compare(baseline, self.groups(150.0))
        assert not report.ok
        flagged = {f.metric for f in report.regressions}
        assert flagged == {"throughput_tps"}
        assert "REGRESSED" in report.render()

    def test_movement_within_ci_is_not_flagged(self):
        baseline = freeze(self.groups(100.0))
        report = compare(baseline, self.groups(102.0))
        assert report.ok

    def test_tolerance_rescues_degenerate_intervals(self):
        single = aggregate_records(reps("camp", {"p": 1}, [100.0]))
        baseline = freeze(single)
        moved = aggregate_records(reps("camp", {"p": 1}, [104.0]))
        assert not compare(baseline, moved).ok
        assert compare(baseline, moved, tolerance=0.05).ok

    def test_missing_group_fails_comparison(self):
        baseline = freeze(self.groups(100.0))
        report = compare(baseline, aggregate_records(
            reps("camp", {"protocol": "other"}, [1.0])))
        assert not report.ok
        assert report.missing and report.unmatched

    def test_compare_records_convenience(self):
        baseline = freeze(self.groups(100.0))
        records = reps("camp", {"protocol": "hs"}, [95.0, 100.0, 105.0],
                       mean_latency=0.005, p99_latency=0.009,
                       chain_growth_rate=1.0, block_interval=3.0)
        assert compare_records(baseline, records).ok

    def test_load_baseline_errors(self, tmp_path):
        with pytest.raises(BaselineError, match="no such baseline"):
            load_baseline(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(BaselineError, match="no 'groups'"):
            load_baseline(bad)

    def eps_group(self, samples):
        """Aggregated events_per_second repetitions (the ratcheted metric)."""
        recs = [record("perf", {"scenario": "base", "_repetition": i},
                       {"events_per_second": v}) for i, v in enumerate(samples)]
        return aggregate_records(recs, metrics=["events_per_second"])

    def test_ratchet_up_lets_improvements_pass(self):
        # events_per_second is ratchet-up by default: a big win is not a
        # regression, but it is reported as worth re-freezing.
        baseline = freeze(self.eps_group([90.0, 100.0, 110.0]),
                          metrics=["events_per_second"])
        report = compare(baseline, self.eps_group([190.0, 200.0, 210.0]))
        assert report.ok
        assert [f.metric for f in report.improvements] == ["events_per_second"]
        assert "improved" in report.render()

    def test_ratchet_up_flags_drops(self):
        baseline = freeze(self.eps_group([90.0, 100.0, 110.0]),
                          metrics=["events_per_second"])
        report = compare(baseline, self.eps_group([40.0, 50.0, 60.0]))
        assert not report.ok
        (finding,) = report.regressions
        assert (finding.metric, finding.policy) == ("events_per_second", "ratchet-up")
        assert "fell" in finding.describe() and "ratchet-up" in finding.describe()

    def test_per_metric_tolerance_overrides_global(self):
        # A degenerate (n=1) baseline: only tolerance provides slack, and the
        # per-metric entry must apply to its metric alone.
        baseline = freeze(aggregate_records(reps("camp", {"p": 1}, [100.0])))
        moved = aggregate_records(reps("camp", {"p": 1}, [104.0]))
        assert not compare(baseline, moved).ok
        assert compare(baseline, moved,
                       tolerances={"throughput_tps": 0.05}).ok
        assert not compare(baseline, moved,
                           tolerances={"mean_latency": 0.05}).ok

    def test_unknown_policy_rejected(self):
        baseline = freeze(self.groups(100.0))
        with pytest.raises(ValueError, match="unknown policy"):
            compare(baseline, self.groups(100.0),
                    policies={"throughput_tps": "bogus"})


# ----------------------------------------------------------------------
# end to end: one real stored campaign, shared across the CLI tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def stored_campaign(tmp_path_factory):
    """A real 2-protocol × 3-repetition campaign persisted to a store."""
    root = tmp_path_factory.mktemp("analysis-store")
    spec = ExperimentSpec(
        name="fig12_ci_smoke",
        base=BASE,
        # num_nodes rides along as a (single-value) axis so the records
        # carry the fig12 x param.
        grid={"protocol": ["hotstuff", "2chainhs"], "num_nodes": [4]},
        repetitions=3,
    )
    result = api.campaign(spec, store=ResultStore(root))
    assert result.executed == 6
    return root, spec


@pytest.fixture()
def no_simulations(monkeypatch):
    """Poison every simulation entry point: analysis must never execute one."""
    def boom(*_args, **_kwargs):
        raise AssertionError("analysis executed a simulation")

    monkeypatch.setattr("repro.bench.runner.run_experiment", boom)
    monkeypatch.setattr("repro.experiments.runner.execute_payload", boom)
    monkeypatch.setattr("repro.scenario.runner.ScenarioRunner.run", boom)


class TestSeedPolicyStatistics:
    """Satellite: seed policies, asserted end-to-end through aggregation."""

    def test_increment_repetitions_produce_distinct_samples(self):
        spec = ExperimentSpec(name="inc", base=BASE, repetitions=3,
                              seed_policy="increment")
        result = api.campaign(spec)
        seeds = [r["config"]["seed"] for r in result.records]
        assert len(set(seeds)) == 3
        (group,) = api.aggregate(result)
        agg = group.metric("throughput_tps")
        assert group.n == 3
        # Independent seeds: the samples differ, so there is real spread.
        assert agg.stddev > 0
        assert agg.ci95 > 0
        assert agg.minimum < agg.maximum

    def test_fixed_repetitions_produce_identical_samples(self):
        spec = ExperimentSpec(name="fix", base=BASE, repetitions=3,
                              seed_policy="fixed")
        result = api.campaign(spec)
        assert result.executed == 3
        seeds = [r["config"]["seed"] for r in result.records]
        assert len(set(seeds)) == 1
        (group,) = api.aggregate(result)
        agg = group.metric("throughput_tps")
        assert group.n == 3
        # Same seed, deterministic simulator: zero spread, degenerate CI.
        assert agg.stddev == 0.0
        assert agg.ci95 == 0.0
        assert agg.minimum == agg.maximum == agg.mean


class TestFacade:
    def test_aggregate_accepts_store_path_and_campaign_filter(self, stored_campaign):
        root, _spec = stored_campaign
        groups = api.aggregate(str(root), campaign="fig12_ci_smoke")
        assert len(groups) == 2
        assert all(g.n == 3 for g in groups)
        assert api.aggregate(str(root), campaign="other") == []

    def test_plot_is_pure_record_replay(self, stored_campaign, tmp_path,
                                        no_simulations):
        root, _spec = stored_campaign
        paths = api.plot(str(root), out=tmp_path / "figs")
        assert [p.name for p in paths] == ["fig12_ci_smoke.svg"]
        svg = paths[0].read_text()
        assert "hotstuff" in svg and "2chainhs" in svg

    def test_aggregate_is_pure_record_replay(self, stored_campaign, no_simulations):
        root, _spec = stored_campaign
        groups = api.aggregate(str(root))
        assert all(g.metric("throughput_tps").ci95 > 0 for g in groups)


class TestCli:
    def test_report_text_markdown_csv(self, stored_campaign, capsys):
        root, _spec = stored_campaign
        assert cli_main(["report", "-s", str(root)]) == 0
        text = capsys.readouterr().out
        assert "±" in text and "protocol=hotstuff" in text
        assert cli_main(["report", "-s", str(root), "-f", "markdown"]) == 0
        assert "| ---" in capsys.readouterr().out
        assert cli_main(["report", "-s", str(root), "-f", "csv"]) == 0
        assert "throughput_tps_ci95" in capsys.readouterr().out

    def test_plot_writes_svg_and_reports_zero_executions(
        self, stored_campaign, tmp_path, no_simulations, capsys
    ):
        root, _spec = stored_campaign
        out = tmp_path / "figures"
        assert cli_main(["plot", "-s", str(root), "-o", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "0 simulations executed" in printed
        svg = (out / "fig12_ci_smoke.svg").read_text()
        assert svg.startswith("<svg ") and len(svg) > 500

    def test_plot_custom_axes(self, stored_campaign, tmp_path, capsys):
        root, _spec = stored_campaign
        out = tmp_path / "figs"
        assert cli_main(["plot", "-s", str(root), "-o", str(out),
                         "--x", "protocol", "--y", "throughput_tps"]) == 1
        # protocol is a string param: not plottable as numeric x.
        assert "no plottable groups" in capsys.readouterr().err

    def test_regress_freeze_then_clean_compare(self, stored_campaign, tmp_path,
                                               no_simulations, capsys):
        root, _spec = stored_campaign
        baseline = tmp_path / "baseline.json"
        assert cli_main(["regress", "-s", str(root), "-b", str(baseline),
                         "--freeze"]) == 0
        assert baseline.exists()
        assert cli_main(["regress", "-s", str(root), "-b", str(baseline)]) == 0
        assert "ok:" in capsys.readouterr().out

    def test_regress_exits_nonzero_on_perturbation(self, stored_campaign, tmp_path,
                                                   capsys):
        root, _spec = stored_campaign
        baseline = tmp_path / "baseline.json"
        assert cli_main(["regress", "-s", str(root), "-b", str(baseline),
                         "--freeze"]) == 0
        data = json.loads(baseline.read_text())
        # Perturb one frozen mean far outside its CI.
        entry = data["groups"][0]["metrics"]["throughput_tps"]
        entry["mean"] *= 3.0
        baseline.write_text(json.dumps(data))
        assert cli_main(["regress", "-s", str(root), "-b", str(baseline)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_report_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no such result store"):
            cli_main(["report", "-s", str(tmp_path / "missing")])
