"""Tests for the repro.api facade and Configuration.validate()."""

import json

import pytest

from repro import api
from repro.bench.config import Configuration, ConfigurationError
from repro.bench.runner import Cluster, ExperimentResult, run_experiment
from repro.scenario import ScenarioResult

FAST = dict(
    block_size=20,
    runtime=0.5,
    warmup=0.1,
    cooldown=0.1,
    concurrency=8,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.05,
    request_timeout=0.2,
)


class TestFacade:
    def test_run_accepts_configuration(self):
        result = api.run(Configuration(**FAST))
        assert isinstance(result, ExperimentResult)
        assert result.consistent

    def test_run_accepts_dict(self):
        result = api.run(dict(FAST))
        assert isinstance(result, ExperimentResult)
        assert result.metrics.committed_blocks > 0

    def test_run_rejects_other_types(self):
        with pytest.raises(TypeError, match="expected Configuration or dict"):
            api.run(42)

    def test_run_with_scenario_returns_scenario_result(self):
        result = api.run(
            dict(FAST),
            scenario={"events": [{"kind": "crash-replica", "at": 0.4, "replica": "last"}]},
        )
        assert isinstance(result, ScenarioResult)
        assert result.consistent

    def test_build_returns_cluster(self):
        cluster = api.build(dict(FAST))
        assert isinstance(cluster, Cluster)
        assert set(cluster.replicas) == {"r0", "r1", "r2", "r3"}

    def test_sweep(self):
        points = api.sweep(dict(FAST), concurrency_levels=[4, 8])
        assert [p.load for p in points] == [4.0, 8.0]
        assert all(p.throughput_tps > 0 for p in points)

    def test_available_lists_every_extension_point(self):
        listings = api.available()
        assert set(listings) == {
            "protocols", "strategies", "elections", "delay_models",
            "clients", "scenario_events", "message_handlers", "oracles",
            "trace_sinks",
        }
        assert listings["protocols"] == api.available("protocols")
        assert all(listings.values())

    def test_available_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown extension point"):
            api.available("widgets")

    def test_load_config_from_json_file(self, tmp_path):
        path = tmp_path / "experiment.json"
        path.write_text(json.dumps({"config": {"protocol": "streamlet", "num_nodes": 8}}))
        config = api.load_config(path)
        assert config.protocol == "streamlet"
        assert config.num_nodes == 8
        # A flat dict (no "config" wrapper) also works.
        path.write_text(json.dumps({"protocol": "lbft"}))
        assert api.load_config(path).protocol == "lbft"


class TestValidate:
    def test_valid_config_returns_self(self):
        config = Configuration(**FAST)
        assert config.validate() is config

    def test_unknown_protocol(self):
        with pytest.raises(ConfigurationError, match="protocol: unknown protocol 'pbft'"):
            Configuration(protocol="pbft").validate()

    def test_unknown_strategy_only_checked_with_byzantine_nodes(self):
        Configuration(strategy="ddos").validate()  # no Byzantine nodes: allowed
        with pytest.raises(ConfigurationError, match="strategy: unknown Byzantine"):
            Configuration(num_nodes=7, byzantine_nodes=2, strategy="ddos").validate()

    def test_byzantine_bound(self):
        Configuration(num_nodes=7, byzantine_nodes=2).validate()  # 7 >= 3*2+1
        with pytest.raises(ConfigurationError, match="3f\\+1"):
            Configuration(num_nodes=6, byzantine_nodes=2).validate()

    def test_unknown_election(self):
        with pytest.raises(ConfigurationError, match="election: unknown election kind"):
            Configuration(election="lottery").validate()

    def test_master_must_be_a_node(self):
        Configuration(master="r2").validate()
        with pytest.raises(ConfigurationError, match="master: 'r9'"):
            Configuration(master="r9").validate()

    def test_unknown_client(self):
        with pytest.raises(ConfigurationError, match="client: unknown client type"):
            Configuration(client="grpc").validate()

    def test_poisson_client_needs_positive_rate(self):
        Configuration(client="poisson", arrival_rate=100.0).validate()
        with pytest.raises(ConfigurationError, match="needs arrival_rate > 0"):
            Configuration(client="poisson").validate()

    def test_static_election_needs_master(self):
        with pytest.raises(ConfigurationError, match="election: 'static' needs"):
            Configuration(election="static").validate()

    def test_unknown_cost_profile(self):
        with pytest.raises(ConfigurationError, match="cost_profile"):
            Configuration(cost_profile="turbo").validate()

    def test_negative_rates_and_sizes(self):
        with pytest.raises(ConfigurationError, match="arrival_rate"):
            Configuration(arrival_rate=-1.0).validate()
        with pytest.raises(ConfigurationError, match="payload_size"):
            Configuration(payload_size=-8).validate()
        with pytest.raises(ConfigurationError, match="view_timeout"):
            Configuration(view_timeout=0).validate()

    def test_mempool_smaller_than_block(self):
        with pytest.raises(ConfigurationError, match="mempool_capacity"):
            Configuration(block_size=400, mempool_capacity=100).validate()

    def test_problems_are_aggregated(self):
        with pytest.raises(ConfigurationError) as excinfo:
            Configuration(protocol="pbft", election="lottery", arrival_rate=-1).validate()
        message = str(excinfo.value)
        assert "protocol:" in message
        assert "election:" in message
        assert "arrival_rate:" in message

    def test_build_cluster_validates(self):
        with pytest.raises(ConfigurationError, match="unknown protocol"):
            api.build({"protocol": "pbft"})


class TestDeterminism:
    """api.run must reproduce the legacy runner exactly, seed for seed."""

    @pytest.mark.parametrize(
        "protocol", ["hotstuff", "2chainhs", "streamlet", "fasthotstuff", "lbft"]
    )
    def test_api_run_matches_legacy_runner(self, protocol):
        config = Configuration(protocol=protocol, seed=23, **FAST)
        via_api = api.run(config)
        via_runner = run_experiment(config)
        assert via_api.metrics == via_runner.metrics
        assert via_api.highest_view == via_runner.highest_view
        assert via_api.timeline == via_runner.timeline

    def test_resolved_client_keeps_auto_semantics(self):
        assert Configuration(arrival_rate=0.0).resolved_client() == "closed-loop"
        assert Configuration(arrival_rate=100.0).resolved_client() == "poisson"
        assert Configuration(client="poisson").resolved_client() == "poisson"

    def test_config_round_trip_preserves_client_field(self):
        config = Configuration(client="closed-loop", **FAST)
        assert Configuration.from_dict(config.to_dict()) == config
