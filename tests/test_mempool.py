"""Unit tests for the mempool."""

import pytest

from repro.mempool.mempool import Mempool

from helpers import make_transactions


class TestAdd:
    def test_add_and_len(self):
        pool = Mempool(capacity=10)
        txs = make_transactions(3)
        for tx in txs:
            assert pool.add(tx)
        assert len(pool) == 3

    def test_duplicate_pending_rejected(self):
        pool = Mempool(capacity=10)
        (tx,) = make_transactions(1)
        assert pool.add(tx)
        assert not pool.add(tx)
        assert pool.total_rejected == 1

    def test_capacity_enforced(self):
        pool = Mempool(capacity=2)
        txs = make_transactions(3)
        assert pool.add(txs[0])
        assert pool.add(txs[1])
        assert not pool.add(txs[2])
        assert pool.is_full

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            Mempool(capacity=0)

    def test_contains_by_txid(self):
        pool = Mempool()
        (tx,) = make_transactions(1)
        pool.add(tx)
        assert tx.txid in pool

    def test_already_proposed_transaction_rejected(self):
        pool = Mempool()
        (tx,) = make_transactions(1)
        pool.add(tx)
        pool.next_batch(1)
        assert not pool.add(tx)


class TestBatching:
    def test_next_batch_is_fifo(self):
        pool = Mempool()
        txs = make_transactions(5)
        for tx in txs:
            pool.add(tx)
        batch = pool.next_batch(3)
        assert [t.txid for t in batch] == [t.txid for t in txs[:3]]
        assert len(pool) == 2

    def test_next_batch_smaller_than_request(self):
        pool = Mempool()
        txs = make_transactions(2)
        for tx in txs:
            pool.add(tx)
        assert len(pool.next_batch(400)) == 2

    def test_next_batch_zero_or_negative(self):
        pool = Mempool()
        pool.add(make_transactions(1)[0])
        assert pool.next_batch(0) == ()
        assert pool.next_batch(-1) == ()

    def test_peek_does_not_remove(self):
        pool = Mempool()
        txs = make_transactions(2)
        for tx in txs:
            pool.add(tx)
        assert pool.peek().txid == txs[0].txid
        assert len(pool) == 2

    def test_peek_empty_pool(self):
        assert Mempool().peek() is None


class TestRequeue:
    def test_requeued_transactions_go_to_front(self):
        pool = Mempool()
        txs = make_transactions(4)
        for tx in txs:
            pool.add(tx)
        forked = pool.next_batch(2)
        pool.requeue_front(forked)
        order = pool.snapshot_ids()
        assert order[:2] == [t.txid for t in forked]
        assert order[2:] == [t.txid for t in txs[2:]]

    def test_requeue_ignores_capacity(self):
        pool = Mempool(capacity=2)
        txs = make_transactions(2)
        for tx in txs:
            pool.add(tx)
        batch = pool.next_batch(2)
        extra = make_transactions(2)
        for tx in extra:
            pool.add(tx)
        requeued = pool.requeue_front(batch)
        assert requeued == 2
        assert len(pool) == 4

    def test_requeue_skips_still_pending(self):
        pool = Mempool()
        txs = make_transactions(2)
        for tx in txs:
            pool.add(tx)
        assert pool.requeue_front(txs) == 0

    def test_requeued_transaction_can_be_batched_again(self):
        pool = Mempool()
        (tx,) = make_transactions(1)
        pool.add(tx)
        batch = pool.next_batch(1)
        pool.requeue_front(batch)
        assert pool.next_batch(1)[0].txid == tx.txid


class TestCommitted:
    def test_mark_committed_removes_pending_copy(self):
        pool = Mempool()
        txs = make_transactions(3)
        for tx in txs:
            pool.add(tx)
        pool.mark_committed([txs[1]])
        assert txs[1].txid not in pool
        assert len(pool) == 2

    def test_mark_committed_clears_proposed_marker(self):
        pool = Mempool()
        (tx,) = make_transactions(1)
        pool.add(tx)
        pool.next_batch(1)
        pool.mark_committed([tx])
        # A committed transaction re-offered by a confused client is accepted
        # again only because the pool no longer tracks it; the replica-level
        # executor is what prevents double execution.
        assert pool.add(tx)

    def test_counters(self):
        pool = Mempool()
        txs = make_transactions(2)
        for tx in txs:
            pool.add(tx)
        batch = pool.next_batch(2)
        pool.requeue_front(batch)
        assert pool.total_added == 2
        assert pool.total_requeued == 2
