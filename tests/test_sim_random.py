"""Unit tests for the named random streams."""

import pytest

from repro.sim.random import RandomStreams


class TestStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(seed=1)
        assert streams.get("network") is streams.get("network")

    def test_different_names_are_independent(self):
        streams = RandomStreams(seed=1)
        a = [streams.get("a").random() for _ in range(5)]
        b = [streams.get("b").random() for _ in range(5)]
        assert a != b

    def test_same_seed_reproduces_sequence(self):
        first = [RandomStreams(seed=3).get("x").random() for _ in range(1)]
        second = [RandomStreams(seed=3).get("x").random() for _ in range(1)]
        assert first == second

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).get("x").random()
        b = RandomStreams(seed=2).get("x").random()
        assert a != b

    def test_stream_isolation_from_consumption_order(self):
        # Drawing from one stream must not perturb another stream's sequence.
        streams1 = RandomStreams(seed=9)
        _ = [streams1.get("noise").random() for _ in range(100)]
        value_after_noise = streams1.get("signal").random()

        streams2 = RandomStreams(seed=9)
        value_without_noise = streams2.get("signal").random()
        assert value_after_noise == value_without_noise


class TestDistributions:
    def test_normal_respects_floor(self):
        streams = RandomStreams(seed=5)
        samples = [streams.normal("net", mean=0.0, stddev=1.0, floor=0.0) for _ in range(200)]
        assert all(s >= 0.0 for s in samples)

    def test_normal_mean_is_plausible(self):
        streams = RandomStreams(seed=5)
        samples = [streams.normal("net", mean=10.0, stddev=0.5) for _ in range(2000)]
        mean = sum(samples) / len(samples)
        assert 9.8 < mean < 10.2

    def test_exponential_requires_positive_rate(self):
        streams = RandomStreams(seed=5)
        with pytest.raises(ValueError):
            streams.exponential("arrivals", 0.0)

    def test_exponential_mean_is_inverse_rate(self):
        streams = RandomStreams(seed=5)
        samples = [streams.exponential("arrivals", 100.0) for _ in range(5000)]
        mean = sum(samples) / len(samples)
        assert 0.008 < mean < 0.012

    def test_uniform_bounds(self):
        streams = RandomStreams(seed=5)
        samples = [streams.uniform("u", 2.0, 3.0) for _ in range(200)]
        assert all(2.0 <= s <= 3.0 for s in samples)

    def test_choice_picks_from_options(self):
        streams = RandomStreams(seed=5)
        options = ["a", "b", "c"]
        picks = {streams.choice("c", options) for _ in range(50)}
        assert picks <= set(options)
        assert len(picks) > 1

    def test_randint_bounds(self):
        streams = RandomStreams(seed=5)
        values = [streams.randint("i", 1, 6) for _ in range(100)]
        assert all(1 <= v <= 6 for v in values)
