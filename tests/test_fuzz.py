"""Tests for the adversarial scenario fuzzer: generator determinism and
bounds, invariant oracles, the protocol×attack conformance matrix, store
resume / byte-identity, and the CLI subcommand.

The full 50-case campaign lives in ``TestFuzzCampaign`` behind the ``fuzz``
marker (tier-1 runs with ``-m "not fuzz"``; the CI fuzz-smoke job runs it).
"""

import json

import pytest

from repro.bench.config import Configuration
from repro.core.byzantine import available_strategies
from repro.experiments.cli import main
from repro.fuzz import (
    ORACLES,
    PROTOCOL_CYCLE,
    FuzzCase,
    OracleContext,
    audit,
    available_oracles,
    generate_case,
    generate_cases,
    register_oracle,
    run_fuzz,
)

ATTACKS = [s for s in available_strategies() if s != "honest"]


def small_config(**overrides):
    params = dict(
        protocol="hotstuff",
        num_nodes=4,
        block_size=20,
        mempool_capacity=200,
        concurrency=8,
        num_clients=2,
        view_timeout=0.05,
        runtime=0.6,
        warmup=0.1,
        cooldown=0.2,
        cost_profile="fast",
        seed=11,
    )
    params.update(overrides)
    return Configuration(**params)


class TestGenerator:
    def test_same_seed_same_index_is_identical(self):
        a, b = generate_case(7, 3), generate_case(7, 3)
        assert a.to_dict() == b.to_dict()
        assert a.run_id == b.run_id

    def test_distinct_indices_are_distinct_runs(self):
        cases = generate_cases(seed=0, budget=10)
        assert len({case.run_id for case in cases}) == 10

    def test_protocol_cycle_covers_all_five(self):
        cases = generate_cases(seed=0, budget=len(PROTOCOL_CYCLE))
        assert {case.config.protocol for case in cases} == set(PROTOCOL_CYCLE)

    def test_cases_are_valid_and_fault_bounded(self):
        for index in range(30):
            case = generate_case(seed=0, index=index)
            case.config.validate()
            f = (case.config.num_nodes - 1) // 3
            assert case.config.byzantine_nodes <= f
            # The unsafe flexible-quorum knob is for the negative control
            # only; generated cases must always use intersecting quorums.
            assert case.config.quorum_threshold == 0
            horizon = case.scenario.horizon(case.config)
            for event in case.scenario.events:
                assert 0 <= event.at <= horizon
            if case.liveness_eligible:
                assert case.config.byzantine_nodes == 0
                assert case.quiet_after + case.liveness_grace < (
                    case.config.warmup + case.config.runtime
                )

    def test_case_round_trips_through_json(self):
        case = generate_case(seed=2, index=4)
        clone = FuzzCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert clone.to_dict() == case.to_dict()
        assert clone.run_id == case.run_id

    def test_run_spec_uses_the_campaign_content_hash(self):
        case = generate_case(seed=5, index=0)
        spec = case.run_spec()
        assert spec.run_id == case.run_id
        assert spec.campaign == f"fuzz-{case.seed}"
        payload = spec.payload()
        assert payload["config"] == case.config.to_dict()
        assert payload["scenario"] == case.scenario.to_dict()


class TestOracles:
    def test_builtin_oracles_are_registered(self):
        names = available_oracles()
        for name in ("agreement", "certified-safety", "dedup", "liveness"):
            assert name in names

    def test_clean_run_has_no_violations(self):
        outcome = audit(small_config())
        assert outcome.ok
        assert outcome.violations == []
        assert outcome.record["consistent"] is True
        assert outcome.record["metrics"]["committed_transactions"] > 0

    def test_custom_oracle_runs_and_reports(self):
        # Registered oracles are process-global and run in *every* later
        # audit, so clean up or the rest of the suite sees violations.
        name = "test-always-fires"

        @register_oracle(name)
        def always_fires(ctx: OracleContext):
            return [f"saw {len(ctx.honest_replicas())} honest replicas"]

        try:
            outcome = audit(small_config(), oracles=[name])
            assert [v.oracle for v in outcome.violations] == [name]
            assert "honest replicas" in outcome.violations[0].detail
        finally:
            ORACLES.unregister(name)
        assert name not in ORACLES

    def test_audit_skips_the_conditional_liveness_oracle(self):
        # A hand-built audit has no generator metadata bounding the fault
        # schedule, so the liveness oracle must pass vacuously.
        outcome = audit(small_config(), oracles=["liveness"])
        assert outcome.ok


@pytest.mark.slow
class TestConformanceMatrix:
    """Every protocol must survive every registered attack at small n:
    no invariant violation, and the same seed must reproduce the same
    committed chain (fingerprint) on a second run."""

    @pytest.mark.parametrize("protocol", PROTOCOL_CYCLE)
    @pytest.mark.parametrize("strategy", ATTACKS)
    def test_protocol_survives_attack_deterministically(self, protocol, strategy):
        config = small_config(
            protocol=protocol,
            byzantine_nodes=1,
            strategy=strategy,
            election="hash",
        )
        first = audit(config)
        assert first.ok, [v.to_dict() for v in first.violations]
        assert first.record["consistent"] is True
        second = audit(config)
        assert second.fingerprint == first.fingerprint
        assert second.record == first.record


class TestHarness:
    def test_store_resume_and_byte_identity(self, tmp_path):
        store_a = tmp_path / "a"
        store_b = tmp_path / "b"
        first = run_fuzz(budget=3, seed=1, store=str(store_a))
        assert first.ok and first.executed == 3 and first.skipped == 0
        resumed = run_fuzz(budget=3, seed=1, store=str(store_a))
        assert resumed.ok and resumed.executed == 0 and resumed.skipped == 3
        run_fuzz(budget=3, seed=1, store=str(store_b))
        assert (store_a / "results.jsonl").read_bytes() == (
            store_b / "results.jsonl"
        ).read_bytes()

    def test_cli_fuzz_runs_and_reports(self, tmp_path, capsys):
        rc = main(
            ["fuzz", "--budget", "2", "--seed", "1", "--store", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "violations: 0" in out
        assert "case   0" in out and "case   1" in out

    def test_cli_fuzz_json_report(self, tmp_path, capsys):
        rc = main(
            ["fuzz", "--budget", "2", "--seed", "1", "--store", str(tmp_path),
             "--json"]
        )
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["seed"] == 1 and report["budget"] == 2
        assert report["violations"] == []


@pytest.mark.fuzz
class TestFuzzCampaign:
    """The acceptance campaign: ``python -m repro fuzz --budget 50 --seed 0``
    must explore all five protocols with zero invariant violations."""

    def test_budget_50_seed_0_is_clean(self, tmp_path):
        report = run_fuzz(budget=50, seed=0, store=str(tmp_path))
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.executed + report.skipped == 50
        assert set(report.protocols) == set(PROTOCOL_CYCLE)
        assert all(count == 10 for count in report.protocols.values())
