"""Unit tests for the simulated crypto substrate."""

import pytest

from repro.crypto.costs import CryptoCostModel
from repro.crypto.digest import digest_bytes, digest_fields, digest_many
from repro.crypto.keys import KeyPair, KeyRegistry
from repro.crypto.signatures import Signature, sign, verify


class TestDigest:
    def test_digest_is_hex_sha256(self):
        assert len(digest_bytes(b"abc")) == 64

    def test_digest_fields_is_deterministic(self):
        assert digest_fields("a", 1, None) == digest_fields("a", 1, None)

    def test_field_framing_prevents_collisions(self):
        assert digest_fields("ab", "c") != digest_fields("a", "bc")

    def test_type_tags_prevent_cross_type_collisions(self):
        assert digest_fields(1) != digest_fields("1")
        assert digest_fields(1.0) != digest_fields(1)

    def test_digest_many_matches_digest_fields(self):
        assert digest_many(["x", 2]) == digest_fields("x", 2)

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            digest_fields(object())

    def test_bool_is_distinct_from_int(self):
        assert digest_fields(True) != digest_fields(1)


class TestKeys:
    def test_generation_is_deterministic(self):
        a = KeyPair.generate("r0", deployment_seed=1)
        b = KeyPair.generate("r0", deployment_seed=1)
        assert a.secret == b.secret
        assert a.public_key == b.public_key

    def test_different_nodes_get_different_keys(self):
        a = KeyPair.generate("r0")
        b = KeyPair.generate("r1")
        assert a.secret != b.secret

    def test_different_seeds_give_different_keys(self):
        a = KeyPair.generate("r0", deployment_seed=1)
        b = KeyPair.generate("r0", deployment_seed=2)
        assert a.secret != b.secret

    def test_registry_registers_and_returns(self):
        registry = KeyRegistry()
        key = registry.register("r0")
        assert registry.get("r0") is key
        assert "r0" in registry
        assert len(registry) == 1

    def test_registry_register_is_idempotent(self):
        registry = KeyRegistry()
        assert registry.register("r0") is registry.register("r0")

    def test_registry_unknown_node_raises(self):
        registry = KeyRegistry()
        with pytest.raises(KeyError):
            registry.get("nobody")

    def test_known_nodes_sorted(self):
        registry = KeyRegistry()
        registry.register("r2")
        registry.register("r0")
        assert registry.known_nodes() == ["r0", "r2"]


class TestSignatures:
    def setup_method(self):
        self.registry = KeyRegistry()
        self.keypair = self.registry.register("r0")

    def test_sign_and_verify_roundtrip(self):
        signature = sign(self.keypair, "deadbeef")
        assert verify(self.registry, signature)

    def test_forged_tag_fails(self):
        signature = sign(self.keypair, "deadbeef")
        forged = Signature(signer="r0", digest="deadbeef", tag=b"\x00" * 32)
        assert not verify(self.registry, forged)

    def test_wrong_signer_claim_fails(self):
        signature = sign(self.keypair, "deadbeef")
        self.registry.register("r1")
        impostor = Signature(signer="r1", digest=signature.digest, tag=signature.tag)
        assert not verify(self.registry, impostor)

    def test_unknown_signer_fails_without_raising(self):
        ghost_key = KeyPair.generate("ghost")
        signature = sign(ghost_key, "deadbeef")
        assert not verify(self.registry, signature)

    def test_different_digests_give_different_tags(self):
        a = sign(self.keypair, "aa")
        b = sign(self.keypair, "bb")
        assert a.tag != b.tag


class TestCostModel:
    def test_proposal_build_scales_with_transactions(self):
        costs = CryptoCostModel()
        assert costs.proposal_build_cost(400) > costs.proposal_build_cost(0)

    def test_proposal_verify_scales_with_transactions(self):
        costs = CryptoCostModel()
        delta = costs.proposal_verify_cost(100) - costs.proposal_verify_cost(0)
        assert delta == pytest.approx(100 * costs.per_transaction_time)

    def test_vote_costs_match_sign_and_verify(self):
        costs = CryptoCostModel()
        assert costs.vote_build_cost() == costs.sign_time
        assert costs.vote_verify_cost() == costs.verify_time

    def test_timeout_costs_match_sign_and_verify(self):
        costs = CryptoCostModel()
        assert costs.timeout_build_cost() == costs.sign_time
        assert costs.timeout_verify_cost() == costs.verify_time

    def test_scaled_multiplies_every_cost(self):
        costs = CryptoCostModel()
        doubled = costs.scaled(2.0)
        assert doubled.sign_time == pytest.approx(2 * costs.sign_time)
        assert doubled.per_transaction_time == pytest.approx(2 * costs.per_transaction_time)
        assert doubled.qc_verify_time == pytest.approx(2 * costs.qc_verify_time)

    def test_scaled_returns_new_instance(self):
        costs = CryptoCostModel()
        assert costs.scaled(1.0) is not costs
