"""Unit tests for the event scheduler."""

import pytest

from repro.sim.events import EventScheduler, SimulationError


class TestScheduling:
    def test_starts_at_time_zero(self):
        sched = EventScheduler()
        assert sched.now == 0.0

    def test_custom_start_time(self):
        sched = EventScheduler(start_time=5.0)
        assert sched.now == 5.0

    def test_call_after_runs_callback_at_right_time(self):
        sched = EventScheduler()
        seen = []
        sched.call_after(1.5, lambda: seen.append(sched.now))
        sched.run_until(10.0)
        assert seen == [1.5]

    def test_call_at_absolute_time(self):
        sched = EventScheduler()
        seen = []
        sched.call_at(3.0, lambda: seen.append(sched.now))
        sched.run_until(10.0)
        assert seen == [3.0]

    def test_events_run_in_timestamp_order(self):
        sched = EventScheduler()
        order = []
        sched.call_after(2.0, lambda: order.append("b"))
        sched.call_after(1.0, lambda: order.append("a"))
        sched.call_after(3.0, lambda: order.append("c"))
        sched.run_until(10.0)
        assert order == ["a", "b", "c"]

    def test_ties_break_in_scheduling_order(self):
        sched = EventScheduler()
        order = []
        for name in ["first", "second", "third"]:
            sched.call_after(1.0, lambda n=name: order.append(n))
        sched.run_until(10.0)
        assert order == ["first", "second", "third"]

    def test_callback_arguments_are_passed(self):
        sched = EventScheduler()
        seen = []
        sched.call_after(0.1, seen.append, 42)
        sched.run_until(1.0)
        assert seen == [42]

    def test_keyword_arguments_are_passed(self):
        sched = EventScheduler()
        seen = {}
        sched.call_after(0.1, lambda **kw: seen.update(kw), value=7)
        sched.run_until(1.0)
        assert seen == {"value": 7}

    def test_scheduling_in_the_past_raises(self):
        sched = EventScheduler(start_time=5.0)
        with pytest.raises(SimulationError):
            sched.call_at(4.0, lambda: None)

    def test_negative_delay_raises(self):
        sched = EventScheduler()
        with pytest.raises(SimulationError):
            sched.call_after(-0.1, lambda: None)

    def test_events_can_schedule_more_events(self):
        sched = EventScheduler()
        seen = []

        def chain(depth):
            seen.append(sched.now)
            if depth > 0:
                sched.call_after(1.0, chain, depth - 1)

        sched.call_after(1.0, chain, 2)
        sched.run_until(10.0)
        assert seen == [1.0, 2.0, 3.0]


class TestHorizon:
    def test_run_until_does_not_execute_beyond_horizon(self):
        sched = EventScheduler()
        seen = []
        sched.call_after(1.0, lambda: seen.append("in"))
        sched.call_after(5.0, lambda: seen.append("out"))
        sched.run_until(2.0)
        assert seen == ["in"]
        assert sched.pending_events == 1

    def test_clock_advances_to_horizon_when_idle(self):
        sched = EventScheduler()
        sched.run_until(7.0)
        assert sched.now == 7.0

    def test_later_run_resumes_remaining_events(self):
        sched = EventScheduler()
        seen = []
        sched.call_after(5.0, lambda: seen.append(sched.now))
        sched.run_until(2.0)
        sched.run_until(10.0)
        assert seen == [5.0]

    def test_run_until_returns_number_executed(self):
        sched = EventScheduler()
        for _ in range(4):
            sched.call_after(0.5, lambda: None)
        assert sched.run_until(1.0) == 4

    def test_max_events_limit(self):
        sched = EventScheduler()
        for _ in range(10):
            sched.call_after(0.5, lambda: None)
        executed = sched.run_until(1.0, max_events=3)
        assert executed == 3

    def test_max_events_does_not_fast_forward_clock(self):
        """Regression: stopping on max_events with events still due before
        the horizon used to jump the clock to the horizon, so resuming moved
        time backwards (and made those events un-reschedulable)."""
        sched = EventScheduler()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sched.call_at(t, lambda t=t: seen.append((t, sched.now)))
        sched.run_until(5.0, max_events=1)
        assert sched.now == 1.0  # not 5.0
        # Scheduling relative to `now` still lands before the queued events.
        sched.call_after(0.5, lambda: seen.append((1.5, sched.now)))
        sched.run_until(5.0)
        assert seen == [(1.0, 1.0), (1.5, 1.5), (2.0, 2.0), (3.0, 3.0)]
        assert sched.now == 5.0

    def test_max_events_exhausting_queue_reaches_horizon(self):
        sched = EventScheduler()
        sched.call_at(1.0, lambda: None)
        sched.run_until(5.0, max_events=1)
        assert sched.now == 5.0  # nothing left at or before the horizon

    def test_max_events_with_later_events_still_reaches_horizon(self):
        sched = EventScheduler()
        sched.call_at(1.0, lambda: None)
        sched.call_at(9.0, lambda: None)
        sched.run_until(5.0, max_events=1)
        assert sched.now == 5.0  # the remaining event lies beyond the horizon

    def test_cancelled_leftovers_do_not_hold_clock_back(self):
        sched = EventScheduler()
        sched.call_at(1.0, lambda: None)
        cancelled = sched.call_at(2.0, lambda: None)
        cancelled.cancel()
        sched.run_until(5.0, max_events=1)
        assert sched.now == 5.0  # the only leftover <= horizon is cancelled

    def test_run_until_idle_drains_queue(self):
        sched = EventScheduler()
        seen = []
        sched.call_after(1.0, lambda: sched.call_after(1.0, lambda: seen.append("x")))
        sched.run_until_idle()
        assert seen == ["x"]
        assert sched.pending_events == 0


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sched = EventScheduler()
        seen = []
        event = sched.call_after(1.0, lambda: seen.append("x"))
        event.cancel()
        sched.run_until(2.0)
        assert seen == []

    def test_pending_reflects_state(self):
        sched = EventScheduler()
        event = sched.call_after(1.0, lambda: None)
        assert event.pending
        event.cancel()
        assert not event.pending

    def test_fired_event_is_not_pending(self):
        sched = EventScheduler()
        event = sched.call_after(1.0, lambda: None)
        sched.run_until(2.0)
        assert event.fired
        assert not event.pending

    def test_processed_counter(self):
        sched = EventScheduler()
        sched.call_after(0.1, lambda: None)
        cancelled = sched.call_after(0.2, lambda: None)
        cancelled.cancel()
        sched.run_until(1.0)
        assert sched.processed_events == 1

    def test_cancel_is_idempotent_in_bookkeeping(self):
        sched = EventScheduler()
        event = sched.call_after(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sched.cancelled_pending == 1

    def test_cancel_then_reschedule_is_deterministic(self):
        """The same cancel/reschedule script yields the same execution order
        whether or not compaction runs in between."""

        def script(sched):
            order = []
            events = {}
            for name, t in [("a", 1.0), ("b", 2.0), ("c", 3.0)]:
                events[name] = sched.call_at(t, lambda n=name: order.append(n))
            events["b"].cancel()
            sched.call_at(2.0, lambda: order.append("b2"))  # reschedule b
            events["c"].cancel()
            sched.call_at(2.5, lambda: order.append("c2"))
            sched.run_until(10.0)
            return order

        plain = EventScheduler()
        plain.compaction_min_size = 10**9  # never compact
        eager = EventScheduler()
        eager.compaction_min_size = 1  # compact on every cancel
        assert script(plain) == script(eager) == ["a", "b2", "c2"]


class TestCompaction:
    def _churn(self, iterations, compact=True):
        """The pacemaker pattern: cancel the old timer, arm a new one."""
        sched = EventScheduler()
        if not compact:
            sched.compaction_min_size = 10**9
        timer = None
        peak = 0
        for _ in range(iterations):
            if timer is not None:
                timer.cancel()
            timer = sched.call_after(10.0, lambda: None)
            peak = max(peak, sched.pending_events)
        return sched, peak

    def test_heap_bounded_under_view_churn(self):
        iterations = 5000
        sched, compacted_peak = self._churn(iterations, compact=True)
        _, uncompacted_peak = self._churn(iterations, compact=False)
        # Without compaction the heap holds every cancelled timer ever made;
        # with it, the live fraction keeps the heap within a small multiple
        # of the threshold's working set.
        assert uncompacted_peak == iterations
        assert compacted_peak < 200
        assert sched.compactions > 0
        assert sched.pending_events < 200

    def test_compaction_preserves_pending_events(self):
        sched = EventScheduler()
        sched.compaction_min_size = 1
        keep = [sched.call_after(float(i + 1), lambda: None) for i in range(5)]
        drop = [sched.call_after(0.5, lambda: None) for _ in range(6)]
        for event in drop:
            event.cancel()
        # The sixth cancel pushed the cancelled fraction over the threshold.
        assert sched.pending_events == 5
        assert sched.cancelled_pending == 0
        executed = sched.run_until(10.0)
        assert executed == 5
        assert all(event.fired for event in keep)
