"""Unit tests for the simulated network, delays, NICs, partitions, fluctuation."""

import pytest

from repro.network.delays import CompositeDelay, FixedDelay, NoDelay, NormalDelay, UniformDelay
from repro.network.fluctuation import FluctuationWindow
from repro.network.network import Network
from repro.network.nic import NetworkInterface
from repro.network.partition import Partition
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.types.messages import Message


def make_network(base_delay=None, extra_delay=None, bandwidth=1e9, seed=1):
    sched = EventScheduler()
    streams = RandomStreams(seed=seed)
    net = Network(
        sched,
        streams,
        base_delay=base_delay if base_delay is not None else FixedDelay(0.001),
        extra_delay=extra_delay,
        bandwidth_bps=bandwidth,
    )
    return sched, net


def msg(sender="a", size=1000):
    return Message(sender=sender, size_bytes=size)


class TestDelayModels:
    def test_no_delay(self):
        import random

        assert NoDelay().sample(random.Random(0)) == 0.0
        assert NoDelay().mean() == 0.0

    def test_fixed_delay(self):
        import random

        assert FixedDelay(0.5).sample(random.Random(0)) == 0.5
        assert FixedDelay(0.5).mean() == 0.5

    def test_fixed_delay_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedDelay(-1.0)

    def test_normal_delay_respects_floor(self):
        import random

        model = NormalDelay(mean_delay=0.001, stddev=0.01, floor=0.0)
        rng = random.Random(0)
        assert all(model.sample(rng) >= 0.0 for _ in range(200))

    def test_normal_delay_rejects_negative_params(self):
        with pytest.raises(ValueError):
            NormalDelay(-1.0, 0.1)

    def test_uniform_delay_bounds(self):
        import random

        model = UniformDelay(0.01, 0.02)
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(100)]
        assert all(0.01 <= s <= 0.02 for s in samples)
        assert model.mean() == pytest.approx(0.015)

    def test_uniform_delay_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformDelay(0.02, 0.01)

    def test_composite_delay_sums_components(self):
        import random

        model = CompositeDelay([FixedDelay(0.1), FixedDelay(0.2)])
        assert model.sample(random.Random(0)) == pytest.approx(0.3)
        assert model.mean() == pytest.approx(0.3)

    def test_composite_delay_requires_components(self):
        with pytest.raises(ValueError):
            CompositeDelay([])


class TestNic:
    def test_transfer_time_scales_with_size(self):
        sched = EventScheduler()
        nic = NetworkInterface(sched, "nic", bandwidth_bps=1000, fixed_overhead=0.0)
        done = []
        nic.transfer(500, lambda: done.append(sched.now))
        sched.run_until(10.0)
        assert done == [pytest.approx(0.5)]

    def test_transfers_serialize(self):
        sched = EventScheduler()
        nic = NetworkInterface(sched, "nic", bandwidth_bps=1000, fixed_overhead=0.0)
        done = []
        nic.transfer(1000, lambda: done.append(sched.now))
        nic.transfer(1000, lambda: done.append(sched.now))
        sched.run_until(10.0)
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_counters(self):
        sched = EventScheduler()
        nic = NetworkInterface(sched, "nic")
        nic.transfer(100, lambda: None)
        nic.transfer(200, lambda: None)
        assert nic.bytes_transferred == 300
        assert nic.messages_transferred == 2

    def test_rejects_invalid_parameters(self):
        sched = EventScheduler()
        with pytest.raises(ValueError):
            NetworkInterface(sched, "nic", bandwidth_bps=0)
        nic = NetworkInterface(sched, "nic")
        with pytest.raises(ValueError):
            nic.transfer(-1, lambda: None)


class TestDelivery:
    def test_message_is_delivered_to_registered_handler(self):
        sched, net = make_network()
        received = []
        net.register("a", lambda m: None)
        net.register("b", received.append)
        message = msg()
        net.send("a", "b", message)
        sched.run_until(1.0)
        assert received == [message]

    def test_delivery_takes_at_least_base_delay(self):
        sched, net = make_network(base_delay=FixedDelay(0.01))
        times = []
        net.register("a", lambda m: None)
        net.register("b", lambda m: times.append(sched.now))
        net.send("a", "b", msg())
        sched.run_until(1.0)
        assert times[0] >= 0.01

    def test_extra_delay_is_added(self):
        sched, net = make_network(base_delay=FixedDelay(0.01), extra_delay=FixedDelay(0.05))
        times = []
        net.register("a", lambda m: None)
        net.register("b", lambda m: times.append(sched.now))
        net.send("a", "b", msg())
        sched.run_until(1.0)
        assert times[0] >= 0.06

    def test_loopback_skips_nics_and_wire(self):
        sched, net = make_network(base_delay=FixedDelay(0.5))
        times = []
        net.register("a", lambda m: times.append(sched.now))
        net.send("a", "a", msg())
        sched.run_until(1.0)
        assert times[0] < 0.01

    def test_unknown_endpoints_raise(self):
        _sched, net = make_network()
        net.register("a", lambda m: None)
        with pytest.raises(KeyError):
            net.send("a", "ghost", msg())
        with pytest.raises(KeyError):
            net.send("ghost", "a", msg())

    def test_duplicate_registration_rejected(self):
        _sched, net = make_network()
        net.register("a", lambda m: None)
        with pytest.raises(ValueError):
            net.register("a", lambda m: None)

    def test_broadcast_reaches_all_but_self_by_default(self):
        sched, net = make_network()
        received = {n: [] for n in "abc"}
        for name in "abc":
            net.register(name, received[name].append)
        net.broadcast("a", ["a", "b", "c"], msg())
        sched.run_until(1.0)
        assert len(received["a"]) == 0
        assert len(received["b"]) == 1
        assert len(received["c"]) == 1

    def test_broadcast_include_self(self):
        sched, net = make_network()
        received = {n: [] for n in "ab"}
        for name in "ab":
            net.register(name, received[name].append)
        net.broadcast("a", ["a", "b"], msg(), include_self=True)
        sched.run_until(1.0)
        assert len(received["a"]) == 1
        assert len(received["b"]) == 1

    def test_stats_track_sent_and_delivered(self):
        sched, net = make_network()
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.send("a", "b", msg(size=123))
        sched.run_until(1.0)
        assert net.stats.messages_sent == 1
        assert net.stats.messages_delivered == 1
        assert net.stats.bytes_sent == 123
        assert net.stats.per_type_counts["Message"] == 1


class TestFaultInjection:
    def test_crashed_destination_drops_messages(self):
        sched, net = make_network()
        received = []
        net.register("a", lambda m: None)
        net.register("b", received.append)
        net.crash("b")
        net.send("a", "b", msg())
        sched.run_until(1.0)
        assert received == []
        assert net.stats.messages_dropped == 1

    def test_crashed_sender_drops_messages(self):
        sched, net = make_network()
        received = []
        net.register("a", lambda m: None)
        net.register("b", received.append)
        net.crash("a")
        net.send("a", "b", msg())
        sched.run_until(1.0)
        assert received == []

    def test_recover_restores_delivery(self):
        sched, net = make_network()
        received = []
        net.register("a", lambda m: None)
        net.register("b", received.append)
        net.crash("b")
        net.recover("b")
        net.send("a", "b", msg())
        sched.run_until(1.0)
        assert len(received) == 1

    def test_slow_node_multiplies_delay(self):
        sched, net = make_network(base_delay=FixedDelay(0.01))
        times = []
        net.register("a", lambda m: None)
        net.register("b", lambda m: times.append(sched.now))
        net.set_slow("b", 10.0)
        net.send("a", "b", msg())
        sched.run_until(2.0)
        assert times[0] >= 0.1

    def test_clear_slow(self):
        sched, net = make_network(base_delay=FixedDelay(0.01))
        net.register("a", lambda m: None)
        net.register("b", lambda m: None)
        net.set_slow("b", 10.0)
        net.clear_slow("b")
        times = []
        net._handlers["b"] = lambda m: times.append(sched.now)
        net.send("a", "b", msg())
        sched.run_until(2.0)
        assert times[0] < 0.05

    def test_slow_factor_below_one_rejected(self):
        _sched, net = make_network()
        net.register("a", lambda m: None)
        with pytest.raises(ValueError):
            net.set_slow("a", 0.5)

    def test_partition_blocks_cross_group_messages(self):
        sched, net = make_network()
        received = []
        for name in "abcd":
            net.register(name, received.append if name == "d" else (lambda m: None))
        net.add_partition(Partition(groups=(frozenset({"a", "b"}), frozenset({"c", "d"}))))
        net.send("a", "d", msg())
        sched.run_until(1.0)
        assert received == []

    def test_partition_allows_intra_group_messages(self):
        sched, net = make_network()
        received = []
        net.register("a", lambda m: None)
        net.register("b", received.append)
        net.register("c", lambda m: None)
        net.add_partition(Partition(groups=(frozenset({"a", "b"}), frozenset({"c"}))))
        net.send("a", "b", msg())
        sched.run_until(1.0)
        assert len(received) == 1

    def test_partition_expires(self):
        sched, net = make_network()
        received = []
        net.register("a", lambda m: None)
        net.register("b", received.append)
        net.add_partition(
            Partition(groups=(frozenset({"a"}), frozenset({"b"})), start=0.0, end=0.5)
        )
        sched.run_until(1.0)  # move past the partition window
        net.send("a", "b", msg())
        sched.run_until(2.0)
        assert len(received) == 1

    def test_fluctuation_adds_delay_inside_window(self):
        sched, net = make_network(base_delay=FixedDelay(0.001))
        times = []
        net.register("a", lambda m: None)
        net.register("b", lambda m: times.append(sched.now))
        net.add_fluctuation(FluctuationWindow(start=0.0, end=10.0, min_delay=0.1, max_delay=0.2))
        net.send("a", "b", msg())
        sched.run_until(5.0)
        assert times[0] >= 0.1

    def test_fluctuation_inactive_outside_window(self):
        sched, net = make_network(base_delay=FixedDelay(0.001))
        times = []
        net.register("a", lambda m: None)
        net.register("b", lambda m: times.append(sched.now))
        net.add_fluctuation(FluctuationWindow(start=5.0, end=10.0, min_delay=0.1, max_delay=0.2))
        net.send("a", "b", msg())
        sched.run_until(4.0)
        assert times and times[0] < 0.05


class TestPartitionHelpers:
    def test_isolate_constructor(self):
        partition = Partition.isolate({"a", "b", "c"}, {"c"})
        assert partition.blocks("a", "c", now=0.0)
        assert not partition.blocks("a", "b", now=0.0)

    def test_nodes_outside_groups_unaffected(self):
        partition = Partition(groups=(frozenset({"a"}), frozenset({"b"})))
        assert not partition.blocks("a", "client-1", now=0.0)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            FluctuationWindow(start=5.0, end=1.0, min_delay=0.0, max_delay=0.1)
        with pytest.raises(ValueError):
            FluctuationWindow(start=0.0, end=1.0, min_delay=0.2, max_delay=0.1)
