"""Tests for the ``python -m repro`` command line (in-process via cli.main)."""

import json

import pytest

from repro.experiments.cli import main
from repro.experiments.store import ResultStore, TruncatedRecordWarning

FAST = {
    "protocol": "hotstuff",
    "block_size": 20,
    "runtime": 0.5,
    "warmup": 0.1,
    "cooldown": 0.1,
    "concurrency": 8,
    "num_clients": 1,
    "cost_profile": "fast",
    "view_timeout": 0.05,
    "request_timeout": 0.2,
}


@pytest.fixture
def config_file(tmp_path):
    path = tmp_path / "config.json"
    path.write_text(json.dumps({"config": FAST}))
    return str(path)


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli-smoke",
                "base": FAST,
                "grid": {"protocol": ["hotstuff", "2chainhs"], "block_size": [20, 40]},
            }
        )
    )
    return str(path)


class TestRun:
    def test_run_prints_metrics_table(self, config_file, capsys):
        assert main(["run", config_file]) == 0
        out = capsys.readouterr().out
        assert "throughput_tps" in out
        assert "consistent" in out

    def test_run_json_output(self, config_file, capsys):
        assert main(["run", config_file, "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["throughput_tps"] > 0
        assert data["consistent"] is True

    def test_run_with_scenario_file(self, config_file, tmp_path, capsys):
        scenario = tmp_path / "scenario.json"
        scenario.write_text(
            json.dumps({"events": [{"kind": "crash-replica", "at": 0.3, "replica": "last"}]})
        )
        assert main(["run", config_file, "--scenario", str(scenario), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["consistent"] is True

    def test_run_invalid_config_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"protocol": "pbft"}))
        assert main(["run", str(path)]) == 1
        assert "unknown protocol" in capsys.readouterr().err

    def test_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no such file"):
            main(["run", str(tmp_path / "nope.json")])


class TestCampaign:
    def test_campaign_writes_store_and_resumes(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["campaign", spec_file, "--workers", "2", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 runs (4 executed, 0 already stored)" in out
        assert len(ResultStore(store)) == 4
        # Resume: zero executed, four served from the store.
        assert main(["campaign", spec_file, "--store", store]) == 0
        out = capsys.readouterr().out
        assert "(0 executed, 4 already stored)" in out
        assert len(ResultStore(store)) == 4

    def test_campaign_json_output(self, spec_file, capsys):
        assert main(["campaign", spec_file, "--json"]) == 0
        records = json.loads(capsys.readouterr().out)
        assert len(records) == 4
        assert all(r["metrics"]["throughput_tps"] > 0 for r in records)

    def test_corrupt_store_fails_cleanly(self, tmp_path, capsys):
        # Corruption before the final line is not a crash signature and
        # still refuses the store.
        root = tmp_path / "store"
        root.mkdir()
        (root / "results.jsonl").write_text('corrupt junk\n{"run_id": "ok"}\n')
        assert main(["list", "--store", str(root)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_truncated_store_tail_lists_surviving_records(self, tmp_path, capsys):
        # A killed worker's partial final line: the CLI warns and serves
        # every complete record instead of refusing the store.
        root = tmp_path / "store"
        root.mkdir()
        (root / "results.jsonl").write_text(
            '{"run_id": "ok", "campaign": "c", "params": {},'
            ' "metrics": {"throughput_tps": 1.0}, "consistent": true}\n'
            '{"run_id": "partial", "metr'
        )
        with pytest.warns(TruncatedRecordWarning):
            assert main(["list", "--store", str(root)]) == 0
        out = capsys.readouterr().out
        assert "1 records" in out and "ok" in out

    def test_campaign_bad_spec_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"base": FAST, "grid": {"bogus_field": [1]}}))
        assert main(["campaign", str(path)]) == 1
        assert "not a Configuration field" in capsys.readouterr().err

    def test_campaign_unknown_scenario_event_fails_cleanly(self, tmp_path, capsys):
        path = tmp_path / "bad_scenario.json"
        path.write_text(
            json.dumps(
                {
                    "base": FAST,
                    "grid": {"block_size": [20]},
                    "scenario": {"events": [{"kind": "no-such-event", "at": 1.0}]},
                }
            )
        )
        assert main(["campaign", str(path)]) == 1
        assert "unknown scenario event" in capsys.readouterr().err


class TestSweep:
    def test_sweep_concurrency(self, config_file, capsys):
        assert main(["sweep", config_file, "--concurrency", "4,8", "--json"]) == 0
        points = json.loads(capsys.readouterr().out)
        assert [p["load"] for p in points] == [4.0, 8.0]

    def test_sweep_requires_exactly_one_axis(self, config_file):
        with pytest.raises(SystemExit, match="exactly one"):
            main(["sweep", config_file])
        with pytest.raises(SystemExit, match="exactly one"):
            main(["sweep", config_file, "--concurrency", "4", "--arrival-rates", "100"])


class TestList:
    def test_list_extension_points(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for kind in ("protocols", "strategies", "clients", "scenario_events"):
            assert kind in out
        assert "hotstuff" in out

    def test_list_one_kind_json(self, capsys):
        assert main(["list", "protocols", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert "hotstuff" in data["protocols"]

    def test_list_unknown_kind(self):
        with pytest.raises(SystemExit, match="unknown extension point"):
            main(["list", "widgets"])

    def test_list_missing_store_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="no such result store"):
            main(["list", "--store", str(tmp_path / "typo")])

    def test_list_store_records(self, spec_file, tmp_path, capsys):
        store = str(tmp_path / "store")
        main(["campaign", spec_file, "--store", store])
        capsys.readouterr()
        assert main(["list", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "4 records" in out
        assert "cli-smoke" in out
