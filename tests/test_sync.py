"""Tests for the block-fetch / state-sync subsystem (repro.sync).

Covers the acceptance scenario of the sync work — a replica crashed for
several committed blocks recovers, fetches the missed chain, and votes again
— plus idempotency of duplicate/stale responses, validation of forged
certificates, orphan-buffer bounds, the message-handler registry, and sync
under an active Byzantine leader.
"""

import pytest

from repro import api
from repro.bench.config import Configuration
from repro.bench.runner import build_cluster
from repro.core.dispatch import MESSAGE_HANDLERS, register_message_handler
from repro.forest.forest import BlockForest
from repro.sync.manager import SyncSettings
from repro.sync.messages import BlockRequest, BlockResponse
from repro.types.certificates import QuorumCertificate
from helpers import extend_chain, make_transactions

FAST = dict(
    num_nodes=4,
    block_size=20,
    concurrency=10,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.03,
    election="hash",
    request_timeout=0.3,
    seed=9,
)


def make_cluster(runtime=4.0, **overrides):
    params = dict(FAST)
    params.update(overrides)
    config = Configuration(warmup=0.0, runtime=runtime, cooldown=0.0, **params)
    return build_cluster(config)


class TestRecoveryCatchUp:
    """The acceptance scenario: crash >= 3 committed blocks, recover, vote."""

    def test_recovered_replica_reaches_live_head_and_votes(self):
        cluster = make_cluster()
        cluster.start()
        cluster.run(until=0.5)
        victim = cluster.replicas["r3"]
        observer = cluster.replicas["r0"]
        victim.crash()
        height_at_crash = victim.forest.committed_height
        cluster.run(until=2.0)
        # The cluster committed well past the victim while it was down.
        missed = observer.forest.committed_height - height_at_crash
        assert missed >= 3
        votes_before_recovery = victim.stats.votes_sent
        victim.recover()
        cluster.run(until=4.0)
        # Full chain: the victim holds (almost all of) the observer's chain
        # and is committing at the live head, not parked at the crash point.
        assert victim.forest.committed_height >= observer.forest.committed_height - 2
        assert victim.forest.committed_height > height_at_crash + missed
        # It voted on proposals extending blocks it fetched.
        assert victim.stats.votes_sent > votes_before_recovery
        # Fetch-round metrics are reported.  A couple of gap blocks may
        # arrive as drained orphan proposals rather than fetches, so the
        # fetched count can trail the missed count slightly.
        assert victim.sync.stats.fetch_rounds > 0
        assert victim.sync.stats.blocks_fetched >= missed - 2
        assert victim.sync.stats.bytes_fetched > 0
        summary = cluster.metrics.summarize()
        assert summary.sync_rounds > 0
        assert summary.sync_blocks_fetched >= missed - 2
        assert summary.sync_bytes_fetched > 0
        # The cluster-wide aggregate shows both sides of the exchange: the
        # victim fetched, its peers served.
        report = cluster.sync_report()
        assert report.blocks_fetched >= victim.sync.stats.blocks_fetched
        assert report.responses_sent >= victim.sync.stats.responses_received
        assert report.blocks_served >= victim.sync.stats.blocks_fetched
        assert cluster.consistency_check()

    def test_recovery_without_sync_stays_parked(self):
        """The pre-sync behaviour is preserved behind the config switch."""
        cluster = make_cluster(sync_enabled=False)
        cluster.start()
        cluster.run(until=0.5)
        victim = cluster.replicas["r3"]
        victim.crash()
        height_at_crash = victim.forest.committed_height
        cluster.run(until=2.0)
        victim.recover()
        cluster.run(until=4.0)
        # Later proposals park forever on missing parents: no catch-up.
        assert victim.forest.committed_height <= height_at_crash + 1
        assert victim.sync.stats.fetch_rounds == 0
        assert cluster.consistency_check()

    def test_scenario_event_recovery_restores_participation(self):
        """The declarative recover-replica event now means full recovery."""
        result = api.run(
            dict(FAST, warmup=0.0, runtime=4.0, cooldown=0.0),
            scenario={
                "events": [
                    {"kind": "crash-replica", "at": 0.5, "replica": "last"},
                    {"kind": "recover-replica", "at": 2.0, "replica": "last"},
                ]
            },
        )
        assert result.consistent
        assert result.metrics.sync_rounds > 0
        assert result.metrics.sync_blocks_fetched > 0

    def test_unanswerable_target_retries_then_abandons(self):
        """Rounds retry on a view-timeout cadence, bounded by the cap."""
        cluster = make_cluster()
        cluster.start()
        cluster.run(until=0.1)
        replica = cluster.replicas["r3"]
        cap = replica.sync.settings.max_rounds_per_target
        replica.sync._maybe_request("no-such-block")
        cluster.run(until=1.5)  # plenty of view timeouts for all retries
        # No peer holds the target, so every round goes unanswered; the
        # manager re-requests up to the cap and then gives up.
        assert replica.sync.stats.fetch_rounds == cap
        assert replica.sync.stats.targets_abandoned == 1

    def test_partition_healed_replica_catches_up(self):
        from repro.network.partition import Partition

        cluster = make_cluster()
        node_ids = set(cluster.config.node_ids())
        cluster.network.add_partition(
            Partition.isolate(node_ids, {"r3"}, start=0.5, end=2.0)
        )
        cluster.start()
        cluster.run(until=4.0)
        victim = cluster.replicas["r3"]
        observer = cluster.replicas["r0"]
        assert victim.forest.committed_height >= observer.forest.committed_height - 2
        assert cluster.consistency_check()


class TestByzantineSync:
    def test_sync_under_active_byzantine_leader(self):
        """Catch-up succeeds while a forking leader is attacking the chain."""
        cluster = make_cluster(num_nodes=5, byzantine_nodes=1, strategy="forking")
        cluster.start()
        cluster.run(until=0.5)
        victim = cluster.replicas["r3"]  # honest (r4 is the Byzantine one)
        observer = cluster.replicas["r0"]
        victim.crash()
        height_at_crash = victim.forest.committed_height
        cluster.run(until=2.0)
        victim.recover()
        cluster.run(until=4.0)
        assert observer.forest.committed_height > height_at_crash + 3
        assert victim.forest.committed_height >= observer.forest.committed_height - 3
        assert victim.stats.safety_violations == 0
        assert cluster.consistency_check()

    def test_forged_tip_qc_is_rejected(self):
        cluster = make_cluster()
        cluster.start()
        cluster.run(until=0.5)
        replica = cluster.replicas["r0"]
        tip = replica.forest.highest_certified()
        forged = QuorumCertificate(
            block_id="no-such-block",
            view=tip.view + 100,
            signers=frozenset({"r0", "r1", "r2"}),
            signatures=(),  # no valid signatures at all
        )
        assert not replica.sync._qc_valid(forged)


class TestResponseIngestion:
    def _synced_pair(self):
        """Two clusters from the same seed: a source chain and a receiver."""
        cluster = make_cluster()
        cluster.start()
        cluster.run(until=1.0)
        return cluster

    def test_duplicate_response_is_idempotent(self):
        cluster = self._synced_pair()
        source = cluster.replicas["r0"]
        receiver = cluster.replicas["r1"]
        # Build a response from r0's committed chain, replaying blocks r1
        # already holds.
        chain_ids = source.forest.committed_chain[1:6]
        blocks = tuple(source.forest.get_block(b) for b in chain_ids)
        tip_qc = source.forest.get(chain_ids[-1]).qc
        response = BlockResponse(
            sender="r0", size_bytes=1000, blocks=blocks,
            target_id=chain_ids[-1], tip_qc=tip_qc,
        )
        before_len = len(receiver.forest)
        before_committed = receiver.forest.committed_chain
        receiver.sync.handle_response(response)
        receiver.sync.handle_response(response)  # stale duplicate
        assert len(receiver.forest) == before_len
        assert receiver.forest.committed_chain == before_committed
        assert receiver.sync.stats.duplicate_blocks == 2 * len(blocks)
        assert receiver.sync.stats.blocks_fetched == 0

    def test_unjustified_block_stops_the_batch(self):
        from repro.types.block import make_block

        cluster = self._synced_pair()
        receiver = cluster.replicas["r1"]
        # Forge a block extending a real block of r1's chain, "justified" by
        # a QC that names a quorum of signers but carries no signatures.
        parent = receiver.forest.get_block(receiver.forest.committed_chain[2])
        forged_qc = QuorumCertificate(
            block_id=parent.block_id,
            view=parent.view,
            signers=frozenset({"r0", "r1", "r2"}),
            signatures=(),
        )
        fake = make_block(
            view=parent.view + 1, parent=parent, qc=forged_qc,
            proposer="r0", transactions=make_transactions(1),
        )
        response = BlockResponse(
            sender="r0", size_bytes=100, blocks=(fake,), target_id=fake.block_id
        )
        receiver.sync.handle_response(response)
        assert fake.block_id not in receiver.forest
        assert receiver.sync.stats.invalid_responses == 1

    def test_block_request_served_oldest_first_and_bounded(self):
        cluster = make_cluster(sync_max_batch=4)
        cluster.start()
        cluster.run(until=1.0)
        responder = cluster.replicas["r0"]
        tip = responder.forest.highest_certified()
        request = BlockRequest(
            sender="r2", size_bytes=72,
            target_block_id=tip.block_id,
            known_block_id="genesis", known_height=0,
        )
        sent = []
        responder.network.send = lambda src, dst, msg: sent.append((dst, msg))
        responder.sync.handle_request(request)
        cluster.scheduler.run_until(cluster.scheduler.now + 0.1)
        responses = [(d, m) for d, m in sent if isinstance(m, BlockResponse)]
        assert len(responses) == 1
        dst, response = responses[0]
        assert dst == "r2"
        assert len(response.blocks) == 4  # bounded by sync_max_batch
        heights = [b.height for b in response.blocks]
        assert heights == sorted(heights)  # oldest first
        assert heights[0] == 1  # connects directly above the anchor


class TestOrphanTracking:
    def test_orphan_buffer_bounded_fifo(self):
        forest = BlockForest(orphan_capacity=2)
        chain_forest = BlockForest()
        blocks = extend_chain(chain_forest, chain_forest.genesis, views=[1, 2, 3, 4])
        orphans = blocks[1:]  # parents unknown to `forest`
        added0, evicted0 = forest.add_orphan(orphans[0])
        added1, evicted1 = forest.add_orphan(orphans[1])
        assert (added0, evicted0) == (True, None)
        assert (added1, evicted1) == (True, None)
        added2, evicted2 = forest.add_orphan(orphans[2])
        assert added2 and evicted2.block_id == orphans[0].block_id
        assert forest.orphan_count == 2
        # Duplicates are no-ops.
        assert forest.add_orphan(orphans[2]) == (False, None)
        # Popping drains the buffer for that parent.
        popped = forest.pop_orphans(orphans[1].parent_id)
        assert [b.block_id for b in popped] == [orphans[1].block_id]
        assert forest.orphan_count == 1
        assert forest.orphan_parents() == [orphans[2].parent_id]

    def test_highest_certified_is_tracked_incrementally(self):
        forest = BlockForest()
        blocks = extend_chain(forest, forest.genesis, views=[1, 2, 3])
        assert forest.highest_certified().block_id == blocks[-1].block_id
        more = extend_chain(forest, blocks[-1], views=[7], certify_blocks=False)
        assert forest.highest_certified().block_id == blocks[-1].block_id
        del more


class TestMessageHandlerRegistry:
    def test_builtin_handlers_registered(self):
        for kind in (
            "ClientRequest", "ProposalMessage", "VoteMessage",
            "TimeoutMessage", "BlockRequest", "BlockResponse",
        ):
            assert kind in MESSAGE_HANDLERS

    def test_available_lists_sync_handlers(self):
        handlers = api.available("message_handlers")
        assert "BlockRequest" in handlers
        assert "BlockResponse" in handlers

    def test_custom_handler_dispatches(self):
        from repro.types.messages import Message

        received = []

        @register_message_handler("PingMessage", cost=lambda replica, msg: 1e-6)
        def _handle_ping(replica, message):
            received.append((replica.node_id, message.sender))

        try:
            cluster = make_cluster()
            cluster.start()
            cluster.replicas["r0"].deliver(Message(sender="tester", size_bytes=1).__class__(
                sender="tester", size_bytes=1))
            # A plain Message has no handler: silently ignored.
            ping = type("PingMessage", (Message,), {})(sender="tester", size_bytes=1)
            cluster.replicas["r0"].deliver(ping)
            cluster.scheduler.run_until(0.01)
            assert received == [("r0", "tester")]
        finally:
            MESSAGE_HANDLERS.unregister("PingMessage")


class TestSyncSettings:
    def test_settings_threaded_from_configuration(self):
        cluster = make_cluster(sync_enabled=False, sync_max_batch=7, sync_fanout=1)
        settings = cluster.replicas["r0"].sync.settings
        assert settings.enabled is False
        assert settings.max_batch == 7
        assert settings.fanout == 1

    def test_invalid_sync_config_rejected(self):
        from repro.bench.config import ConfigurationError

        with pytest.raises(ConfigurationError, match="sync_max_batch"):
            Configuration(sync_max_batch=0, **FAST).validate()

    def test_default_settings(self):
        settings = SyncSettings()
        assert settings.enabled
        assert settings.max_batch > 0
        assert settings.fanout > 0
