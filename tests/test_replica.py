"""Unit and small-cluster tests for the replica event loop."""

import pytest

from repro.core.byzantine import ForkingReplica, SilentReplica, make_replica
from repro.core.replica import Replica, ReplicaSettings
from repro.crypto.keys import KeyRegistry
from repro.election.election import HashBasedElection, RoundRobinElection
from repro.network.delays import FixedDelay
from repro.network.network import Network
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.types.messages import ClientRequest
from repro.types.sizes import SizeModel
from repro.types.transaction import Transaction


def build_mini_cluster(
    num_nodes=4,
    protocol="hotstuff",
    byzantine=(),
    strategy="silence",
    view_timeout=0.05,
    block_size=10,
    election_kind="round-robin",
):
    """A tiny in-process cluster for focused replica tests.

    Fault-injection tests use hash-based (per-view random) election: with
    strict round-robin and four nodes, a permanently silent replica always
    occupies the same rotation slot, which starves HotStuff's
    consecutive-view three-chain — randomized election (the paper's "leader
    chosen at random") avoids that pathological alignment.
    """
    scheduler = EventScheduler()
    streams = RandomStreams(seed=42)
    network = Network(scheduler, streams, base_delay=FixedDelay(0.0005))
    registry = KeyRegistry()
    node_ids = [f"r{i}" for i in range(num_nodes)]
    if election_kind == "hash":
        election = HashBasedElection(node_ids, seed=7)
    else:
        election = RoundRobinElection(node_ids)
    settings = ReplicaSettings(block_size=block_size, view_timeout=view_timeout)
    replicas = {}
    for node_id in node_ids:
        kind = strategy if node_id in byzantine else ""
        replicas[node_id] = make_replica(
            kind,
            node_id,
            scheduler,
            network,
            election,
            registry,
            node_ids,
            protocol=protocol,
            settings=settings,
        )
    return scheduler, network, replicas


def submit_transactions(scheduler, network, replica_id, count, sender="c0"):
    """Register a throwaway client endpoint and push transactions directly."""
    if sender not in network.endpoints():
        network.register(sender, lambda m: None)
    sizes = SizeModel()
    txs = []
    for _ in range(count):
        tx = Transaction.create(sender, created_at=scheduler.now)
        txs.append(tx)
        network.send(
            sender,
            replica_id,
            ClientRequest(sender=sender, size_bytes=sizes.client_request_size(0), transaction=tx),
        )
    return txs


class TestHappyPath:
    def test_cluster_commits_submitted_transactions(self):
        scheduler, network, replicas = build_mini_cluster()
        for replica in replicas.values():
            replica.start()
        txs = submit_transactions(scheduler, network, "r0", 5)
        scheduler.run_until(1.0)
        observer = replicas["r0"]
        committed = set(observer.forest.committed_transactions())
        assert {tx.txid for tx in txs} <= committed

    def test_views_advance_without_timeouts_in_happy_path(self):
        scheduler, network, replicas = build_mini_cluster(view_timeout=1.0)
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(0.5)
        for replica in replicas.values():
            assert replica.pacemaker.stats.local_timeouts == 0
            assert replica.current_view > 50

    def test_all_replicas_commit_the_same_chain(self):
        scheduler, network, replicas = build_mini_cluster()
        for replica in replicas.values():
            replica.start()
        submit_transactions(scheduler, network, "r1", 8)
        scheduler.run_until(1.0)
        heights = [r.forest.committed_height for r in replicas.values()]
        reference = replicas["r0"].forest.consistency_hash(min(heights))
        for replica in replicas.values():
            assert replica.forest.consistency_hash(min(heights)) == reference

    def test_committed_transactions_are_executed(self):
        scheduler, network, replicas = build_mini_cluster()
        for replica in replicas.values():
            replica.start()
        submit_transactions(scheduler, network, "r0", 3)
        scheduler.run_until(1.0)
        assert replicas["r2"].kvstore.operations_applied >= 3

    def test_leader_proposes_only_in_its_views(self):
        scheduler, network, replicas = build_mini_cluster(view_timeout=1.0)
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(0.2)
        # With round-robin rotation and no faults, every replica proposes
        # roughly the same number of times.
        counts = [r.stats.proposals_sent for r in replicas.values()]
        assert min(counts) > 0
        assert max(counts) - min(counts) <= 2

    def test_client_request_rejected_when_mempool_full(self):
        scheduler, network, replicas = build_mini_cluster()
        replicas["r0"].settings.mempool_capacity = 5
        replicas["r0"].mempool.capacity = 5
        # Do not start the replicas: nothing drains the mempool.
        replies = []
        network.register("c9", replies.append)
        sizes = SizeModel()
        for _ in range(8):
            tx = Transaction.create("c9", created_at=0.0)
            network.send(
                "c9",
                "r0",
                ClientRequest(sender="c9", size_bytes=sizes.client_request_size(0), transaction=tx),
            )
        scheduler.run_until(0.5)
        rejected = [r for r in replies if r.status == "rejected"]
        assert len(rejected) == 3
        assert replicas["r0"].stats.client_rejections == 3


class TestCrashAndTimeouts:
    def test_crashed_replica_stops_participating(self):
        scheduler, network, replicas = build_mini_cluster()
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(0.1)
        replicas["r3"].crash()
        before = replicas["r3"].stats.proposals_sent
        scheduler.run_until(0.5)
        assert replicas["r3"].stats.proposals_sent == before
        assert network.is_crashed("r3")

    def test_cluster_survives_one_crash(self):
        scheduler, network, replicas = build_mini_cluster(view_timeout=0.02, election_kind="hash")
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(0.1)
        replicas["r3"].crash()
        height_at_crash = replicas["r0"].forest.committed_height
        scheduler.run_until(1.0)
        assert replicas["r0"].forest.committed_height > height_at_crash
        assert replicas["r0"].pacemaker.stats.view_changes_on_tc > 0

    def test_two_crashes_out_of_four_block_progress(self):
        scheduler, network, replicas = build_mini_cluster(view_timeout=0.02, election_kind="hash")
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(0.1)
        replicas["r2"].crash()
        replicas["r3"].crash()
        height_at_crash = replicas["r0"].forest.committed_height
        scheduler.run_until(0.6)
        # With only 2 of 4 replicas alive no quorum (3) can form.
        assert replicas["r0"].forest.committed_height <= height_at_crash + 1


class TestByzantineReplicas:
    def test_silent_replica_never_proposes(self):
        scheduler, network, replicas = build_mini_cluster(byzantine={"r3"}, strategy="silence")
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(0.5)
        assert isinstance(replicas["r3"], SilentReplica)
        assert replicas["r3"].stats.proposals_sent == 0
        assert replicas["r3"].views_silenced > 0

    def test_silence_attack_forces_timeouts_but_not_stall(self):
        scheduler, network, replicas = build_mini_cluster(
            byzantine={"r3"}, strategy="silence", election_kind="hash"
        )
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(1.0)
        observer = replicas["r0"]
        assert observer.pacemaker.stats.view_changes_on_tc > 0
        assert observer.forest.committed_height > 5

    def test_forking_replica_creates_forks_in_hotstuff(self):
        scheduler, network, replicas = build_mini_cluster(byzantine={"r3"}, strategy="forking")
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(1.0)
        assert isinstance(replicas["r3"], ForkingReplica)
        assert replicas["r3"].forks_attempted > 0
        assert replicas["r0"].forest.stats.blocks_forked > 0

    def test_forking_is_harmless_in_streamlet(self):
        scheduler, network, replicas = build_mini_cluster(
            protocol="streamlet", byzantine={"r3"}, strategy="forking"
        )
        for replica in replicas.values():
            replica.start()
        scheduler.run_until(0.5)
        assert replicas["r3"].forks_attempted == 0
        assert replicas["r0"].forest.stats.blocks_forked == 0

    def test_no_safety_violations_under_either_attack(self):
        for strategy in ("forking", "silence"):
            scheduler, network, replicas = build_mini_cluster(byzantine={"r3"}, strategy=strategy)
            for replica in replicas.values():
                replica.start()
            scheduler.run_until(1.0)
            for replica in replicas.values():
                assert replica.stats.safety_violations == 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            build_mini_cluster(byzantine={"r3"}, strategy="equivocation")


class TestSettings:
    def test_default_settings_match_table1(self):
        settings = ReplicaSettings()
        assert settings.block_size == 400
        assert settings.mempool_capacity == 1000
        assert settings.view_timeout == pytest.approx(0.1)

    def test_is_leader_uses_election(self):
        scheduler, network, replicas = build_mini_cluster()
        assert replicas["r1"].is_leader(1)
        assert not replicas["r0"].is_leader(1)

    def test_block_size_limits_batch(self):
        scheduler, network, replicas = build_mini_cluster(block_size=2, view_timeout=1.0)
        for replica in replicas.values():
            replica.start()
        submit_transactions(scheduler, network, "r1", 10)
        scheduler.run_until(0.5)
        observer = replicas["r0"]
        sizes = [
            v.block.num_transactions
            for v in observer.forest._vertices.values()
            if not v.block.is_genesis
        ]
        assert max(sizes) <= 2
