"""Unit tests for the benchmark facilities: config, profiles, metrics, runner, sweeps."""

import pytest

from repro.bench.config import Configuration
from repro.bench.metrics import MetricsCollector
from repro.bench.profiles import available_profiles, cost_profile
from repro.bench.runner import build_cluster, run_experiment
from repro.bench.sweeps import SweepPoint, saturation_sweep, saturation_throughput
from repro.core.byzantine import ForkingReplica, SilentReplica
from repro.types.block import make_genesis, make_block
from repro.types.certificates import QuorumCertificate

from helpers import make_transactions


FAST = dict(
    block_size=20,
    runtime=0.6,
    warmup=0.1,
    cooldown=0.1,
    concurrency=10,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.05,
)


class TestConfiguration:
    def test_defaults_match_table1(self):
        config = Configuration()
        assert config.block_size == 400
        assert config.mempool_capacity == 1000
        assert config.payload_size == 0
        assert config.view_timeout == pytest.approx(0.1)
        assert config.concurrency == 10
        assert config.master == ""
        assert config.strategy == "silence"
        assert config.byzantine_nodes == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Configuration(num_nodes=0)
        with pytest.raises(ValueError):
            Configuration(byzantine_nodes=4, num_nodes=4)
        with pytest.raises(ValueError):
            Configuration(block_size=0)
        with pytest.raises(ValueError):
            Configuration(runtime=0)

    def test_node_and_client_ids(self):
        config = Configuration(num_nodes=3, num_clients=2)
        assert config.node_ids() == ["r0", "r1", "r2"]
        assert config.client_ids() == ["c0", "c1"]

    def test_byzantine_ids_keep_observer_honest(self):
        config = Configuration(num_nodes=4, byzantine_nodes=2)
        assert config.byzantine_ids() == ["r2", "r3"]
        assert "r0" not in config.byzantine_ids()

    def test_replace_creates_modified_copy(self):
        config = Configuration()
        other = config.replace(block_size=100)
        assert other.block_size == 100
        assert config.block_size == 400

    def test_round_trip_through_dict(self):
        config = Configuration(protocol="streamlet", num_nodes=8, payload_size=128)
        clone = Configuration.from_dict(config.to_dict())
        assert clone == config

    def test_from_dict_ignores_unknown_keys(self):
        config = Configuration.from_dict({"protocol": "hotstuff", "bogus": 1})
        assert config.protocol == "hotstuff"

    def test_measurement_window(self):
        config = Configuration(warmup=1.0, runtime=5.0, cooldown=0.5)
        assert config.measurement_window == (1.0, 6.0)
        assert config.total_duration == pytest.approx(6.5)


class TestProfiles:
    def test_available_profiles(self):
        assert {"fast", "standard", "ohs"} <= set(available_profiles())

    def test_standard_is_slower_than_fast(self):
        assert cost_profile("standard").sign_time > cost_profile("fast").sign_time

    def test_ohs_is_cheaper_than_standard(self):
        assert cost_profile("ohs").verify_time < cost_profile("standard").verify_time

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            cost_profile("turbo")

    def test_profiles_are_copies(self):
        a = cost_profile("standard")
        a.sign_time = 123.0
        assert cost_profile("standard").sign_time != 123.0


class TestMetricsCollector:
    def _committed_block(self, view, txs, now):
        genesis, qc = make_genesis()
        return make_block(view, genesis, qc, "r0", make_transactions(txs)), now

    def test_throughput_counts_window_only(self):
        collector = MetricsCollector(window_start=1.0, window_end=2.0)
        early, _ = self._committed_block(1, 5, 0.5)
        inside, _ = self._committed_block(2, 5, 1.5)
        collector.record_block_committed("r0", early, commit_view=2, now=0.5)
        collector.record_block_committed("r0", inside, commit_view=3, now=1.5)
        assert collector.throughput() == pytest.approx(5.0)

    def test_latency_stats(self):
        collector = MetricsCollector(window_start=0.0, window_end=10.0)
        for i, latency in enumerate([0.01, 0.02, 0.03, 0.04]):
            collector.record_latency(f"t{i}", latency, now=1.0)
        mean, median, p99 = collector.latency_stats()
        assert mean == pytest.approx(0.025)
        assert median == pytest.approx(0.03)
        assert p99 == pytest.approx(0.04)

    def test_latency_stats_empty(self):
        assert MetricsCollector().latency_stats() == (0.0, 0.0, 0.0)

    def test_chain_growth_rate(self):
        collector = MetricsCollector(window_start=0.0, window_end=10.0)
        for view in range(1, 5):
            block, _ = self._committed_block(view, 0, 1.0)
            collector.record_block_added("r0", block, now=1.0)
            if view <= 2:
                collector.record_block_committed("r0", block, commit_view=view + 2, now=1.5)
        assert collector.chain_growth_rate() == pytest.approx(0.5)

    def test_block_interval(self):
        collector = MetricsCollector(window_start=0.0, window_end=10.0)
        block, _ = self._committed_block(5, 0, 1.0)
        collector.record_block_committed("r0", block, commit_view=8, now=1.0)
        assert collector.block_interval() == pytest.approx(3.0)

    def test_throughput_timeline_buckets(self):
        collector = MetricsCollector()
        a, _ = self._committed_block(1, 10, 0.2)
        b, _ = self._committed_block(2, 20, 1.2)
        collector.record_block_committed("r0", a, commit_view=2, now=0.2)
        collector.record_block_committed("r0", b, commit_view=3, now=1.2)
        timeline = collector.throughput_timeline(bucket=1.0, end=2.0)
        assert timeline[0] == (0.0, 10.0)
        assert timeline[1] == (1.0, 20.0)

    def test_timeline_rejects_bad_bucket(self):
        with pytest.raises(ValueError):
            MetricsCollector().throughput_timeline(bucket=0.0)

    def test_summarize_shape(self):
        collector = MetricsCollector(window_start=0.0, window_end=10.0)
        summary = collector.summarize().as_dict()
        assert set(summary) >= {
            "throughput_tps",
            "mean_latency_ms",
            "chain_growth_rate",
            "block_interval",
            "safety_violations",
        }


class TestRunnerAndSweeps:
    def test_build_cluster_wires_byzantine_replicas(self):
        config = Configuration(num_nodes=4, byzantine_nodes=1, strategy="forking", **FAST)
        cluster = build_cluster(config)
        assert isinstance(cluster.replicas["r3"], ForkingReplica)
        assert not isinstance(cluster.replicas["r0"], ForkingReplica)
        assert cluster.observer_id == "r0"

    def test_build_cluster_silence_strategy(self):
        config = Configuration(num_nodes=4, byzantine_nodes=1, strategy="silence", **FAST)
        cluster = build_cluster(config)
        assert isinstance(cluster.replicas["r3"], SilentReplica)

    def test_run_experiment_produces_metrics(self):
        config = Configuration(protocol="hotstuff", num_nodes=4, **FAST)
        result = run_experiment(config)
        assert result.metrics.throughput_tps > 0
        assert result.metrics.mean_latency > 0
        assert result.consistent
        assert result.metrics.safety_violations == 0

    def test_run_experiment_with_poisson_arrivals(self):
        config = Configuration(protocol="hotstuff", num_nodes=4, **FAST).replace(
            arrival_rate=2000.0
        )
        result = run_experiment(config)
        assert result.metrics.committed_transactions > 0

    def test_static_leader_configuration(self):
        config = Configuration(num_nodes=4, master="r1", **FAST)
        result = run_experiment(config)
        assert result.metrics.committed_blocks > 0

    def test_saturation_sweep_produces_monotone_load_points(self):
        config = Configuration(protocol="hotstuff", num_nodes=4, **FAST)
        points = saturation_sweep(config, concurrency_levels=[2, 8])
        assert len(points) == 2
        assert points[0].load == 2
        assert points[1].throughput_tps >= points[0].throughput_tps * 0.5
        assert isinstance(points[0], SweepPoint)

    def test_saturation_sweep_with_arrival_rates(self):
        config = Configuration(protocol="hotstuff", num_nodes=4, **FAST)
        points = saturation_sweep(config, arrival_rates=[500.0, 1500.0])
        assert len(points) == 2
        assert points[1].throughput_tps > points[0].throughput_tps

    def test_sweep_rejects_both_kinds_of_load(self):
        config = Configuration(**FAST)
        with pytest.raises(ValueError):
            saturation_sweep(config, concurrency_levels=[1], arrival_rates=[1.0])

    def test_saturation_throughput_helper(self):
        points = [
            SweepPoint(1, 100.0, 0.01, 0.02, 1.0, 3.0),
            SweepPoint(2, 300.0, 0.02, 0.03, 1.0, 3.0),
        ]
        assert saturation_throughput(points) == 300.0
        assert saturation_throughput([]) == 0.0

    def test_sweep_point_unit_helpers(self):
        point = SweepPoint(1, 2500.0, 0.015, 0.02, 1.0, 3.0)
        assert point.throughput_ktps == pytest.approx(2.5)
        assert point.latency_ms == pytest.approx(15.0)


class TestHostPerfMetrics:
    """wall_clock_seconds / events_per_second: measured, but never stored."""

    def test_run_experiment_measures_host_perf(self):
        metrics = run_experiment(Configuration(**FAST)).metrics
        assert metrics.wall_clock_seconds > 0
        assert metrics.events_per_second > 0

    def test_perf_fields_are_excluded_from_the_canonical_record(self):
        metrics = run_experiment(Configuration(**FAST)).metrics
        data = metrics.to_dict()
        assert "wall_clock_seconds" not in data
        assert "events_per_second" not in data
        # ... but the human-facing view shows them.
        assert metrics.as_dict()["wall_clock_seconds"] > 0

    def test_equality_ignores_host_speed(self):
        config = Configuration(**FAST)
        first = run_experiment(config).metrics
        second = run_experiment(config).metrics
        # Wall clocks almost surely differ between the two executions, yet
        # the simulated outcomes compare equal (perf fields are compare=False).
        assert first == second

    def test_scenario_runner_measures_host_perf(self):
        from repro.scenario import Scenario, ScenarioRunner

        scenario = Scenario(events=[])
        metrics = ScenarioRunner(Configuration(**FAST), scenario).run().metrics
        assert metrics.wall_clock_seconds > 0
        assert metrics.events_per_second > 0
