"""Integration tests for the two Byzantine strategies (paper §IV-A, §VI-C).

The assertions mirror the qualitative findings of Figures 13 and 14:

* forking hurts HotStuff (two blocks overwritten per attack) more than
  two-chain HotStuff (one block), and does not affect Streamlet at all;
* the silence attack degrades HotStuff and 2CHS alike (the pre-silence block
  loses its certificate), while Streamlet's chain growth rate stays 1;
* block intervals start at the commit-rule depth and grow with the number of
  Byzantine replicas, faster under silence than under forking;
* no attack ever causes a safety violation or divergent committed chains.
"""

import pytest

from repro.bench.config import Configuration
from repro.bench.runner import run_experiment

BYZ = dict(
    num_nodes=8,
    block_size=30,
    runtime=1.2,
    warmup=0.2,
    cooldown=0.3,
    concurrency=15,
    num_clients=2,
    cost_profile="fast",
    view_timeout=0.04,
    election="hash",
    request_timeout=0.3,
    seed=5,
)


def attack(protocol, strategy, byzantine, **overrides):
    params = dict(BYZ)
    params.update(overrides)
    config = Configuration(
        protocol=protocol, strategy=strategy, byzantine_nodes=byzantine, **params
    )
    return run_experiment(config)


class TestForkingAttack:
    def test_hotstuff_chain_growth_drops(self):
        honest = attack("hotstuff", "forking", 0)
        attacked = attack("hotstuff", "forking", 2)
        assert honest.metrics.chain_growth_rate == pytest.approx(1.0, abs=0.02)
        assert attacked.metrics.chain_growth_rate < 0.85

    def test_two_chain_is_more_resilient_than_hotstuff(self):
        hs = attack("hotstuff", "forking", 2)
        two_chain = attack("2chainhs", "forking", 2)
        assert two_chain.metrics.chain_growth_rate > hs.metrics.chain_growth_rate
        assert two_chain.metrics.blocks_forked < hs.metrics.blocks_forked

    def test_streamlet_is_immune(self):
        streamlet = attack("streamlet", "forking", 2, runtime=0.8)
        assert streamlet.metrics.chain_growth_rate == pytest.approx(1.0, abs=0.02)
        assert streamlet.metrics.blocks_forked == 0

    def test_more_byzantine_nodes_fork_more(self):
        light = attack("hotstuff", "forking", 1)
        heavy = attack("hotstuff", "forking", 2)
        assert heavy.metrics.chain_growth_rate <= light.metrics.chain_growth_rate

    def test_block_interval_rises_with_attack(self):
        honest = attack("hotstuff", "forking", 0)
        attacked = attack("hotstuff", "forking", 2)
        assert attacked.metrics.block_interval > honest.metrics.block_interval

    def test_no_safety_violation_and_consistent(self):
        for protocol in ("hotstuff", "2chainhs"):
            result = attack(protocol, "forking", 2)
            assert result.metrics.safety_violations == 0
            assert result.consistent


class TestSilenceAttack:
    def test_throughput_drops_for_all_protocols(self):
        for protocol in ("hotstuff", "2chainhs", "streamlet"):
            honest = attack(protocol, "silence", 0, runtime=0.8)
            attacked = attack(protocol, "silence", 2, runtime=0.8)
            assert attacked.metrics.throughput_tps < honest.metrics.throughput_tps

    def test_hotstuff_and_two_chain_lose_blocks_alike(self):
        hs = attack("hotstuff", "silence", 2)
        two_chain = attack("2chainhs", "silence", 2)
        assert hs.metrics.chain_growth_rate < 0.95
        assert two_chain.metrics.chain_growth_rate < 0.95
        assert hs.metrics.chain_growth_rate == pytest.approx(
            two_chain.metrics.chain_growth_rate, abs=0.1
        )

    def test_streamlet_chain_growth_stays_one(self):
        streamlet = attack("streamlet", "silence", 2, runtime=0.8)
        assert streamlet.metrics.chain_growth_rate > 0.97
        assert streamlet.metrics.blocks_forked == 0

    def test_silence_raises_block_interval_more_than_forking(self):
        silence = attack("hotstuff", "silence", 2)
        forking = attack("hotstuff", "forking", 2)
        assert silence.metrics.block_interval > forking.metrics.block_interval

    def test_no_safety_violation_and_consistent(self):
        for protocol in ("hotstuff", "2chainhs", "streamlet"):
            result = attack(protocol, "silence", 2, runtime=0.8)
            assert result.metrics.safety_violations == 0
            assert result.consistent
