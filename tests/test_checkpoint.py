"""Tests for the checkpoint / log-truncation subsystem (repro.checkpoint).

Covers the two acceptance scenarios of the checkpoint work:

* a long run with checkpointing on holds the forest block count bounded by
  O(checkpoint interval) while every committed-throughput/latency metric is
  bit-identical to a checkpointing-off run of the same seed;
* a recovered replica far behind the head catches up via a snapshot install
  with strictly fewer fetched blocks than a full chain walk;

plus unit coverage of forest truncation, checkpoint install, KV snapshots,
snapshot validation, and the configuration knobs.
"""

import dataclasses

import pytest

from repro import api
from repro.bench.config import Configuration, ConfigurationError
from repro.bench.metrics import RunMetrics
from repro.bench.runner import build_cluster
from repro.checkpoint.manager import CheckpointSettings
from repro.checkpoint.messages import SnapshotResponse
from repro.checkpoint.snapshot import Checkpoint
from repro.executor.kvstore import KeyValueStore, KVSnapshot
from repro.forest.forest import BlockForest, ForestError
from repro.types.certificates import QuorumCertificate
from repro.types.transaction import Transaction
from helpers import build_certified_chain, certify, extend_chain, make_transactions

FAST = dict(
    num_nodes=4,
    block_size=20,
    concurrency=10,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.03,
    election="hash",
    request_timeout=0.3,
    seed=9,
)

#: RunMetrics fields describing committed work — the ones that must be
#: bit-identical between checkpointing-on and checkpointing-off runs.
COMMITTED_METRIC_FIELDS = [
    "throughput_tps",
    "mean_latency",
    "median_latency",
    "p99_latency",
    "chain_growth_rate",
    "block_interval",
    "committed_transactions",
    "committed_blocks",
    "blocks_added",
    "blocks_forked",
    "safety_violations",
    "latency_samples",
]


def make_cluster(runtime=4.0, **overrides):
    params = dict(FAST)
    params.update(overrides)
    config = Configuration(warmup=0.0, runtime=runtime, cooldown=0.0, **params)
    return build_cluster(config)


def run_cluster(runtime=3.0, **overrides):
    cluster = make_cluster(runtime=runtime, **overrides)
    cluster.start()
    cluster.run()
    return cluster


class TestBoundedMemory:
    """Acceptance: bounded forest, bit-identical committed metrics."""

    def test_forest_bounded_and_committed_metrics_bit_identical(self):
        interval = 10
        baseline = run_cluster(runtime=3.0)
        checkpointed = run_cluster(runtime=3.0, checkpoint_interval=interval)

        base_metrics = baseline.metrics.summarize()
        ck_metrics = checkpointed.metrics.summarize()
        for field in COMMITTED_METRIC_FIELDS:
            assert getattr(ck_metrics, field) == getattr(base_metrics, field), field
        # The throughput timelines match bucket for bucket too.
        horizon = baseline.config.total_duration
        assert checkpointed.metrics.throughput_timeline(
            end=horizon
        ) == baseline.metrics.throughput_timeline(end=horizon)

        # Plenty of commits happened; the baseline keeps them all in memory,
        # the checkpointed run holds O(interval) blocks per forest.
        committed = baseline.replicas["r0"].forest.committed_height
        assert committed > 10 * interval
        report = checkpointed.checkpoint_report()
        assert report.checkpoints_taken >= committed // interval - 1
        assert report.blocks_truncated > 0
        bound = 2 * interval + 16  # interval + commit depth + in-flight slack
        assert report.peak_forest_blocks <= bound
        for replica in checkpointed.replicas.values():
            assert len(replica.forest) <= bound
            assert replica.forest.base_height > 0
        assert len(baseline.replicas["r0"].forest) > committed
        # Consistency hashes stay comparable across truncation points (r0
        # and r3 generally truncate at different heights), and the committed
        # chain is exactly as long as the baseline's.
        assert checkpointed.consistency_check()
        assert checkpointed.replicas["r0"].forest.committed_height == committed

    def test_checkpoint_metrics_reported(self):
        cluster = run_cluster(runtime=2.0, checkpoint_interval=10)
        summary = cluster.metrics.summarize()
        assert summary.checkpoints_taken > 0
        assert summary.blocks_truncated > 0
        assert summary.peak_forest_blocks > 0
        data = summary.to_dict()
        assert RunMetrics.from_dict(data) == summary


class TestSnapshotCatchUp:
    """Acceptance: a far-behind recovery installs a snapshot, fetches less."""

    def _crash_recover(self, **overrides):
        cluster = make_cluster(**overrides)
        cluster.start()
        cluster.run(until=0.5)
        victim = cluster.replicas["r3"]
        victim.crash()
        height_at_crash = victim.forest.committed_height
        cluster.run(until=2.5)
        missed = cluster.replicas["r0"].forest.committed_height - height_at_crash
        victim.recover()
        cluster.run(until=4.0)
        return cluster, victim, missed

    def test_recovery_installs_snapshot_with_fewer_fetches(self):
        interval = 5
        cluster, victim, missed = self._crash_recover(checkpoint_interval=interval)
        observer = cluster.replicas["r0"]
        assert missed > 10 * interval
        # The victim crossed the gap through a snapshot, not a chain walk.
        assert victim.checkpoint.stats.snapshot_requests_sent > 0
        assert victim.checkpoint.stats.snapshots_installed >= 1
        assert victim.checkpoint.stats.snapshot_bytes_fetched > 0
        assert victim.sync.stats.blocks_fetched < missed
        # ... and still reached the live head and participates.
        assert victim.forest.committed_height >= observer.forest.committed_height - 2
        assert cluster.consistency_check()

        # Strictly fewer fetched blocks than the same scenario walking the
        # full chain (checkpointing off).
        full_walk, full_victim, full_missed = self._crash_recover()
        assert full_victim.checkpoint.stats.snapshots_installed == 0
        assert full_victim.forest.committed_height > 0
        assert victim.sync.stats.blocks_fetched < full_victim.sync.stats.blocks_fetched
        assert full_walk.consistency_check()

    def test_scenario_event_recovery_uses_snapshots(self):
        result = api.run(
            dict(FAST, warmup=0.0, runtime=4.0, cooldown=0.0, checkpoint_interval=5),
            scenario={
                "events": [
                    {"kind": "crash-replica", "at": 0.5, "replica": "last"},
                    {"kind": "recover-replica", "at": 2.5, "replica": "last"},
                ]
            },
        )
        assert result.consistent
        assert result.metrics.snapshots_installed >= 1
        assert result.metrics.snapshot_bytes_fetched > 0

    def test_snapshot_sync_disabled_falls_back_to_blocks(self):
        """snapshot_sync off: checkpoints still bound memory, no transfers."""
        cluster = run_cluster(
            runtime=2.0, checkpoint_interval=10, snapshot_sync_enabled=False
        )
        report = cluster.checkpoint_report()
        assert report.checkpoints_taken > 0
        assert report.snapshots_installed == 0
        assert report.snapshot_requests_sent == 0

    def test_negative_response_falls_back_to_block_fetch(self):
        """A 'nothing ahead of you' answer hands over to the sync manager."""
        cluster = make_cluster(checkpoint_interval=10)
        cluster.start()
        cluster.run(until=0.3)
        replica = cluster.replicas["r3"]
        replica.checkpoint._catchup_pending = True
        rounds_before = replica.sync.stats.fetch_rounds
        replica.checkpoint.handle_response(
            SnapshotResponse(sender="r0", size_bytes=96, checkpoint=None)
        )
        assert not replica.checkpoint._catchup_pending
        assert replica.sync.stats.fetch_rounds > rounds_before


class TestSnapshotValidation:
    def _live_replica(self):
        cluster = make_cluster(checkpoint_interval=5)
        cluster.start()
        cluster.run(until=1.0)
        return cluster, cluster.replicas["r1"]

    def test_forged_checkpoint_rejected(self):
        # Crash r3 early so it sits genuinely behind the forged checkpoint.
        cluster = make_cluster(checkpoint_interval=5)
        cluster.start()
        cluster.run(until=0.3)
        victim = cluster.replicas["r3"]
        victim.crash()
        cluster.run(until=1.5)
        real = cluster.replicas["r0"].checkpoint.current_checkpoint()
        assert real is not None
        assert real.height > victim.forest.committed_height
        forged_qc = QuorumCertificate(
            block_id=real.block.block_id,
            view=real.block.view,
            signers=frozenset({"r0", "r1", "r2"}),
            signatures=(),  # no valid signatures at all
        )
        forged = dataclasses.replace(real, qc=forged_qc)
        before = victim.forest.committed_height
        victim.checkpoint.handle_response(
            SnapshotResponse(sender="r0", size_bytes=1000, checkpoint=forged)
        )
        assert victim.checkpoint.stats.invalid_snapshots == 1
        assert victim.checkpoint.stats.snapshots_installed == 0
        assert victim.forest.committed_height == before

    def test_stale_checkpoint_ignored(self):
        cluster, replica = self._live_replica()
        own = replica.checkpoint.current_checkpoint()
        assert own is not None  # every replica checkpoints
        replica.checkpoint.handle_response(
            SnapshotResponse(sender="r0", size_bytes=1000, checkpoint=own)
        )
        assert replica.checkpoint.stats.stale_snapshots == 1
        assert replica.checkpoint.stats.snapshots_installed == 0

    def test_inconsistent_checkpoint_detected(self):
        cluster, replica = self._live_replica()
        real = cluster.replicas["r0"].checkpoint.current_checkpoint()
        broken = dataclasses.replace(real, committed_ids=real.committed_ids[:-1])
        assert not broken.is_consistent()
        assert real.is_consistent()

    def test_truncated_responder_offers_snapshot_for_deep_block_request(self):
        from repro.sync.messages import BlockRequest

        cluster, _ = self._live_replica()
        responder = cluster.replicas["r0"]
        assert responder.forest.base_height > 1
        tip = responder.forest.highest_certified()
        sent = []
        responder.network.send = lambda src, dst, msg: sent.append((dst, msg))
        request = BlockRequest(
            sender="r2", size_bytes=72,
            target_block_id=tip.block_id,
            known_block_id="genesis", known_height=0,
        )
        responder.sync.handle_request(request)
        cluster.scheduler.run_until(cluster.scheduler.now + 0.1)
        responses = [m for _, m in sent if isinstance(m, SnapshotResponse)]
        assert len(responses) == 1
        assert responses[0].checkpoint is not None
        assert responses[0].checkpoint.height > 0
        assert responder.checkpoint.stats.snapshots_served == 1


class TestForestTruncation:
    def test_truncate_below_drops_vertices_keeps_commit_log(self):
        forest, blocks = build_certified_chain([1, 2, 3, 4, 5], txs_per_block=2)
        forest.commit(blocks[3].block_id, at_view=5)
        full_hash = forest.consistency_hash()
        prefix_hash = forest.consistency_hash(height=2)
        removed = forest.truncate_below(3)
        assert removed == 3  # genesis + heights 1, 2
        assert forest.base_height == 3
        assert len(forest) == 3  # the root at height 3 plus heights 4 and 5
        assert forest.committed_height == 4
        assert forest.committed_chain[-1] == blocks[3].block_id
        assert forest.consistency_hash() == full_hash
        assert forest.consistency_hash(height=2) == prefix_hash
        assert blocks[0].block_id not in forest
        assert blocks[2].block_id in forest

    def test_truncate_below_removes_dead_forks(self):
        forest, blocks = build_certified_chain([1, 2, 3, 4])
        # A fork branching from genesis that conflicts with the main chain.
        from repro.types.block import make_block

        fork = make_block(
            view=9, parent=forest.genesis, qc=forest.get("genesis").qc,
            proposer="r9", transactions=make_transactions(1),
        )
        forest.add_block(fork)
        forest.commit(blocks[2].block_id, at_view=4)
        forest.truncate_below(2)
        assert fork.block_id not in forest
        assert forest.base_height == 2

    def test_truncate_requires_committed_height(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        with pytest.raises(ForestError):
            forest.truncate_below(2)  # nothing committed yet

    def test_truncate_below_watermark_is_noop(self):
        forest, blocks = build_certified_chain([1, 2, 3])
        forest.commit(blocks[2].block_id, at_view=4)
        forest.truncate_below(2)
        assert forest.truncate_below(1) == 0
        assert forest.base_height == 2

    def test_committed_blocks_between_under_watermark_returns_empty(self):
        forest, blocks = build_certified_chain([1, 2, 3, 4, 5])
        forest.commit(blocks[4].block_id, at_view=6)
        forest.truncate_below(3)
        assert forest.committed_blocks_between(0, 5, 10) == []
        served = forest.committed_blocks_between(2, 5, 10)
        assert [b.height for b in served] == [3, 4, 5]

    def test_install_checkpoint_resets_to_committed_root(self):
        source, blocks = build_certified_chain([1, 2, 3, 4], txs_per_block=1)
        source.commit(blocks[3].block_id, at_view=5)
        target_block = blocks[2]
        qc = source.get(target_block.block_id).qc
        ids = source.committed_chain[: target_block.height + 1]

        receiver = BlockForest()
        receiver.install_checkpoint(target_block, qc, ids)
        assert receiver.committed_height == 3
        assert receiver.base_height == 3
        assert len(receiver) == 1
        assert receiver.last_committed().block_id == target_block.block_id
        assert receiver.highest_certified().block_id == target_block.block_id
        assert receiver.consistency_hash(3) == source.consistency_hash(3)
        # The chain keeps extending above the installed root.
        extend_chain(receiver, target_block, views=[7, 8])
        assert len(receiver) == 3

    def test_install_checkpoint_validations(self):
        source, blocks = build_certified_chain([1, 2, 3])
        source.commit(blocks[2].block_id, at_view=4)
        block = blocks[2]
        qc = source.get(block.block_id).qc
        ids = source.committed_chain
        receiver = BlockForest()
        with pytest.raises(ForestError):
            receiver.install_checkpoint(block, qc, ids[:-1])  # log ends early
        with pytest.raises(ForestError):
            receiver.install_checkpoint(block, qc, ids[1:])  # wrong length
        receiver.install_checkpoint(block, qc, ids)
        with pytest.raises(ForestError):
            receiver.install_checkpoint(block, qc, ids)  # not ahead anymore


class TestKVSnapshot:
    def _tx(self, op, key, value=""):
        return Transaction.create(
            client_id="c0", created_at=0.0, operation=op, key=key, value=value
        )

    def test_snapshot_restore_round_trip(self):
        store = KeyValueStore()
        store.apply(self._tx("put", "a", "1"))
        store.apply(self._tx("put", "b", "2"))
        snapshot = store.snapshot()
        assert isinstance(snapshot, KVSnapshot)
        other = KeyValueStore()
        other.restore(snapshot)
        assert other.get("a") == "1"
        assert other.get("b") == "2"
        assert other.state_digest() == store.state_digest()
        assert other.operations_applied == store.operations_applied

    def test_restored_store_keeps_idempotency(self):
        store = KeyValueStore()
        tx = self._tx("put", "a", "1")
        store.apply(tx)
        other = KeyValueStore()
        other.restore(store.snapshot())
        assert other.was_applied(tx.txid)
        other.apply(tx)  # replay is a no-op
        assert other.operations_applied == store.operations_applied

    def test_snapshot_is_immutable_copy(self):
        store = KeyValueStore()
        store.apply(self._tx("put", "a", "1"))
        snapshot = store.snapshot()
        store.apply(self._tx("put", "a", "changed"))
        assert dict(snapshot.items)["a"] == "1"
        assert snapshot.payload_bytes == len("a") + len("1")


class TestConfiguration:
    def test_knobs_threaded_to_replicas(self):
        cluster = make_cluster(checkpoint_interval=7, snapshot_sync_enabled=False)
        manager = cluster.replicas["r0"].checkpoint
        assert manager.settings.interval == 7
        assert manager.settings.snapshot_sync is False
        assert manager.enabled
        assert not manager.snapshot_sync_enabled

    def test_disabled_by_default(self):
        settings = CheckpointSettings()
        assert settings.interval == 0
        cluster = make_cluster()
        assert not cluster.replicas["r0"].checkpoint.enabled

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="checkpoint_interval"):
            Configuration(checkpoint_interval=-1, **FAST).validate()

    def test_snapshot_handlers_registered(self):
        handlers = api.available("message_handlers")
        assert "SnapshotRequest" in handlers
        assert "SnapshotResponse" in handlers
