"""Integration tests for fault injection: crashes, partitions, fluctuation, responsiveness."""

import pytest

from repro.bench.config import Configuration
from repro.bench.runner import build_cluster
from repro.bench.timeline import ResponsivenessScenario, run_responsiveness
from repro.network.fluctuation import FluctuationWindow
from repro.network.partition import Partition

FAST = dict(
    num_nodes=4,
    block_size=20,
    concurrency=10,
    num_clients=1,
    cost_profile="fast",
    view_timeout=0.03,
    election="hash",
    request_timeout=0.3,
    seed=9,
)


def make_cluster(runtime=2.0, **overrides):
    params = dict(FAST)
    params.update(overrides)
    config = Configuration(warmup=0.0, runtime=runtime, cooldown=0.0, **params)
    return build_cluster(config)


class TestCrashRecovery:
    def test_progress_continues_after_single_crash(self):
        cluster = make_cluster()
        cluster.start()
        cluster.run(until=0.5)
        height_before = cluster.replicas["r0"].forest.committed_height
        cluster.replicas["r3"].crash()
        cluster.run(until=2.0)
        assert cluster.replicas["r0"].forest.committed_height > height_before
        assert cluster.consistency_check()

    def test_no_progress_beyond_quorum_loss(self):
        cluster = make_cluster()
        cluster.start()
        cluster.run(until=0.5)
        cluster.replicas["r2"].crash()
        cluster.replicas["r3"].crash()
        height_after_crash = cluster.replicas["r0"].forest.committed_height
        cluster.run(until=1.5)
        assert cluster.replicas["r0"].forest.committed_height <= height_after_crash + 1


class TestPartition:
    def test_minority_partition_blocks_then_recovers(self):
        cluster = make_cluster()
        node_ids = set(cluster.config.node_ids())
        cluster.network.add_partition(
            Partition.isolate(node_ids, {"r3"}, start=0.5, end=1.2)
        )
        cluster.start()
        cluster.run(until=2.0)
        # The majority keeps committing and the isolated node catches up after
        # the partition heals (it at least stays consistent).
        assert cluster.replicas["r0"].forest.committed_height > 10
        assert cluster.consistency_check()

    def test_majority_loss_stalls_commits_until_heal(self):
        cluster = make_cluster()
        cluster.network.add_partition(
            Partition(
                groups=(frozenset({"r0", "r1"}), frozenset({"r2", "r3"})),
                start=0.5,
                end=1.0,
            )
        )
        cluster.start()
        cluster.run(until=0.5)
        height_before = cluster.replicas["r0"].forest.committed_height
        cluster.run(until=1.0)
        height_during = cluster.replicas["r0"].forest.committed_height
        cluster.run(until=2.0)
        height_after = cluster.replicas["r0"].forest.committed_height
        assert height_during <= height_before + 2
        assert height_after > height_during
        assert cluster.consistency_check()


class TestFluctuationAndResponsiveness:
    def test_fluctuation_stalls_small_timeout_cluster(self):
        cluster = make_cluster(view_timeout=0.01)
        cluster.network.add_fluctuation(
            FluctuationWindow(start=0.5, end=1.0, min_delay=0.02, max_delay=0.06)
        )
        cluster.start()
        cluster.run(until=0.5)
        before = cluster.replicas["r0"].forest.committed_height
        cluster.run(until=1.0)
        during = cluster.replicas["r0"].forest.committed_height
        cluster.run(until=1.6)
        after = cluster.replicas["r0"].forest.committed_height
        # Commits nearly stop while every message outlives the 10 ms timeout,
        # and resume once the fluctuation ends.
        assert during - before < (after - during)

    def test_responsiveness_scenario_produces_timeline(self):
        scenario = ResponsivenessScenario(
            fluctuation_start=0.4,
            fluctuation_duration=0.5,
            fluctuation_min=0.02,
            fluctuation_max=0.05,
            crash_at=1.0,
            total_duration=1.8,
            bucket=0.2,
        )
        config = Configuration(protocol="hotstuff", runtime=1.8, **FAST)
        result = run_responsiveness(config, scenario)
        assert result.timeline
        assert result.crashed_replica == "r3"
        assert result.throughput_before > 0
        assert result.consistent

    def test_hotstuff_recovers_after_fluctuation_and_crash(self):
        scenario = ResponsivenessScenario(
            fluctuation_start=0.4,
            fluctuation_duration=0.5,
            fluctuation_min=0.02,
            fluctuation_max=0.05,
            crash_at=1.0,
            total_duration=2.0,
            bucket=0.2,
        )
        config = Configuration(protocol="hotstuff", runtime=2.0, **FAST).replace(
            view_timeout=0.01
        )
        result = run_responsiveness(config, scenario)
        assert result.throughput_during < result.throughput_before * 0.5
        assert result.throughput_after > 0

    def test_scenario_validation_helpers(self):
        scenario = ResponsivenessScenario(fluctuation_start=5.0, fluctuation_duration=10.0)
        assert scenario.fluctuation_end == pytest.approx(15.0)
