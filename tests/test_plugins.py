"""Unit tests for the generic plugin registry machinery."""

import pytest

from repro.plugins import Registry, RegistryError, normalize_name


class TestNormalization:
    @pytest.mark.parametrize(
        "raw,expected",
        [
            ("HotStuff", "hotstuff"),
            ("Fast-HotStuff", "fasthotstuff"),
            ("round_robin", "roundrobin"),
            ("2CHS", "2chs"),
        ],
    )
    def test_normalize_name(self, raw, expected):
        assert normalize_name(raw) == expected


class TestRegistry:
    def test_add_and_get(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        assert reg.get("alpha") == 1
        assert reg.get("ALPHA") == 1
        assert "alpha" in reg
        assert len(reg) == 1

    def test_decorator_form_returns_object(self):
        reg = Registry("widget")

        @reg.register("thing", "th")
        class Thing:
            pass

        assert reg.get("thing") is Thing
        assert reg.get("th") is Thing
        assert Thing.__name__ == "Thing"

    def test_aliases_resolve_and_are_listed(self):
        reg = Registry("widget")
        reg.add("alpha", 1, "a", "al")
        assert reg.get("a") == 1
        assert reg.canonical("AL") == "alpha"
        assert reg.aliases("alpha") == ["a", "al"]

    def test_available_preserves_registration_order(self):
        reg = Registry("widget")
        reg.add("zeta", 1)
        reg.add("alpha", 2)
        reg.add("mid", 3)
        assert reg.available() == ["zeta", "alpha", "mid"]

    def test_unknown_name_error_lists_available(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        reg.add("beta", 2)
        with pytest.raises(RegistryError, match="unknown widget 'gamma'.*alpha, beta"):
            reg.get("gamma")

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        with pytest.raises(RegistryError, match="already registered"):
            reg.add("alpha", 2)

    def test_duplicate_alias_rejected(self):
        reg = Registry("widget")
        reg.add("alpha", 1, "a")
        with pytest.raises(RegistryError, match="already registered"):
            reg.add("beta", 2, "a")

    def test_override_replaces(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        reg.add("alpha", 2, override=True)
        assert reg.get("alpha") == 2
        assert reg.available() == ["alpha"]

    def test_override_under_equivalent_name_evicts_shadowed_entry(self):
        reg = Registry("widget")
        reg.add("closed-loop", 1)
        reg.add("closedloop", 2, override=True)  # same normalized name
        assert reg.get("closed-loop") == 2
        assert reg.available() == ["closedloop"]
        assert reg.items() == [("closedloop", 2)]

    def test_override_via_plain_alias_keeps_original_entry(self):
        reg = Registry("widget")
        reg.add("alpha", 1, "a")
        reg.add("beta", 2, "a", override=True)  # steal the alias only
        assert reg.get("a") == 2
        assert reg.get("alpha") == 1
        assert reg.available() == ["alpha", "beta"]

    def test_empty_name_rejected(self):
        reg = Registry("widget")
        with pytest.raises(RegistryError):
            reg.add("", 1)

    def test_unregister_removes_entry_and_aliases(self):
        reg = Registry("widget")
        reg.add("alpha", 1, "a")
        reg.unregister("alpha")
        assert "alpha" not in reg
        assert "a" not in reg
        assert reg.available() == []

    def test_items_pairs_names_with_values(self):
        reg = Registry("widget")
        reg.add("alpha", 1)
        reg.add("beta", 2)
        assert reg.items() == [("alpha", 1), ("beta", 2)]


class TestBuiltinRegistries:
    """The concrete extension points are populated and self-describing."""

    def test_protocols(self):
        from repro.protocols.registry import PROTOCOLS, available_protocols

        assert available_protocols() == [
            "hotstuff", "2chainhs", "streamlet", "fasthotstuff", "lbft",
        ]
        assert available_protocols() == PROTOCOLS.available()

    def test_strategies(self):
        from repro.core.byzantine import STRATEGIES, available_strategies

        assert {"honest", "silence", "forking"} <= set(available_strategies())
        assert STRATEGIES.get("silent") is STRATEGIES.get("silence")

    def test_elections(self):
        from repro.election.election import ELECTIONS, available_elections

        assert {"round-robin", "static", "hash"} <= set(available_elections())
        assert ELECTIONS.canonical("rr") == "round-robin"

    def test_delay_models(self):
        from repro.network.delays import DELAY_MODELS, available_delay_models

        assert {"none", "fixed", "normal", "uniform", "composite"} <= set(
            available_delay_models()
        )
        assert DELAY_MODELS.canonical("gauss") == "normal"

    def test_clients(self):
        from repro.client.client import CLIENTS, available_clients

        assert {"closed-loop", "poisson"} <= set(available_clients())
        assert CLIENTS.canonical("open") == "poisson"

    def test_scenario_events(self):
        from repro.scenario.events import available_scenario_events

        assert {
            "crash-replica", "recover-replica", "network-fluctuation",
            "partition", "heal", "set-delay-model", "set-byzantine",
            "set-arrival-rate",
        } <= set(available_scenario_events())


class TestRegisteringNewImplementations:
    """A plugin plus a config entry is all it takes (the paper's claim)."""

    def test_new_protocol_runs_through_the_config(self):
        from repro import api
        from repro.protocols.hotstuff import HotStuffSafety
        from repro.protocols.registry import PROTOCOLS

        @api.register_protocol("test-hotstuff-clone")
        class CloneSafety(HotStuffSafety):
            pass

        try:
            result = api.run(
                {"protocol": "test-hotstuff-clone", "block_size": 20,
                 "runtime": 0.3, "warmup": 0.1, "cooldown": 0.1,
                 "concurrency": 5, "num_clients": 1, "cost_profile": "fast",
                 "view_timeout": 0.05}
            )
            assert result.consistent
            assert result.metrics.committed_blocks > 0
        finally:
            PROTOCOLS.unregister("test-hotstuff-clone")

    def test_new_strategy_runs_through_the_config(self):
        from repro import api
        from repro.core.byzantine import STRATEGIES, SilentReplica

        @api.register_strategy("test-mute")
        class MuteReplica(SilentReplica):
            pass

        try:
            result = api.run(
                {"byzantine_nodes": 1, "strategy": "test-mute", "block_size": 20,
                 "runtime": 0.3, "warmup": 0.1, "cooldown": 0.1,
                 "concurrency": 5, "num_clients": 1, "cost_profile": "fast",
                 "view_timeout": 0.05, "request_timeout": 0.2}
            )
            assert result.consistent
        finally:
            STRATEGIES.unregister("test-mute")

    def test_new_election_runs_through_the_config(self):
        from repro import api
        from repro.election.election import ELECTIONS, LeaderElection

        @api.register_election("test-always-r1")
        class AlwaysR1(LeaderElection):
            def leader(self, view):
                return "r1"

        try:
            result = api.run(
                {"election": "test-always-r1", "block_size": 20,
                 "runtime": 0.3, "warmup": 0.1, "cooldown": 0.1,
                 "concurrency": 5, "num_clients": 1, "cost_profile": "fast",
                 "view_timeout": 0.05}
            )
            assert result.consistent
            assert result.metrics.committed_blocks > 0
        finally:
            ELECTIONS.unregister("test-always-r1")
