"""Unit tests for the key-value execution layer."""

import pytest

from repro.executor.kvstore import KeyValueStore
from repro.types.transaction import Transaction


def tx(operation="put", key="k", value="v", txid=None):
    base = Transaction.create("c0", created_at=0.0, operation=operation, key=key, value=value)
    if txid is None:
        return base
    return Transaction(
        txid=txid,
        client_id="c0",
        operation=operation,
        key=key,
        value=value,
    )


class TestKeyValueStore:
    def test_put_then_get(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1"))
        assert store.get("a") == "1"
        assert len(store) == 1

    def test_get_operation_returns_value(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1"))
        assert store.apply(tx(operation="get", key="a")) == "1"

    def test_get_missing_key(self):
        store = KeyValueStore()
        assert store.apply(tx(operation="get", key="missing")) is None

    def test_delete_removes_key(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1"))
        store.apply(tx(operation="delete", key="a"))
        assert store.get("a") is None

    def test_unknown_operation_raises(self):
        store = KeyValueStore()
        with pytest.raises(ValueError):
            store.apply(tx(operation="increment", key="a"))

    def test_reapply_is_idempotent(self):
        store = KeyValueStore()
        transaction = tx(operation="put", key="a", value="1")
        store.apply(transaction)
        store.apply(transaction)
        assert store.operations_applied == 1
        assert store.was_applied(transaction.txid)

    def test_was_applied_false_for_unknown(self):
        assert not KeyValueStore().was_applied("nope")

    def test_state_digest_reflects_content(self):
        a = KeyValueStore()
        b = KeyValueStore()
        a.apply(tx(operation="put", key="x", value="1", txid="t1"))
        b.apply(tx(operation="put", key="x", value="1", txid="t2"))
        assert a.state_digest() == b.state_digest()
        b.apply(tx(operation="put", key="y", value="2", txid="t3"))
        assert a.state_digest() != b.state_digest()

    def test_last_write_wins(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1", txid="t1"))
        store.apply(tx(operation="put", key="a", value="2", txid="t2"))
        assert store.get("a") == "2"
