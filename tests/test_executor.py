"""Unit tests for the key-value execution layer."""

import pytest

from repro.executor.kvstore import KeyValueStore
from repro.types.transaction import Transaction


def tx(operation="put", key="k", value="v", txid=None):
    base = Transaction.create("c0", created_at=0.0, operation=operation, key=key, value=value)
    if txid is None:
        return base
    return Transaction(
        txid=txid,
        client_id="c0",
        operation=operation,
        key=key,
        value=value,
    )


class TestKeyValueStore:
    def test_put_then_get(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1"))
        assert store.get("a") == "1"
        assert len(store) == 1

    def test_get_operation_returns_value(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1"))
        assert store.apply(tx(operation="get", key="a")) == "1"

    def test_get_missing_key(self):
        store = KeyValueStore()
        assert store.apply(tx(operation="get", key="missing")) is None

    def test_delete_removes_key(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1"))
        store.apply(tx(operation="delete", key="a"))
        assert store.get("a") is None

    def test_unknown_operation_raises(self):
        store = KeyValueStore()
        with pytest.raises(ValueError):
            store.apply(tx(operation="increment", key="a"))

    def test_reapply_is_idempotent(self):
        store = KeyValueStore()
        transaction = tx(operation="put", key="a", value="1")
        store.apply(transaction)
        store.apply(transaction)
        assert store.operations_applied == 1
        assert store.was_applied(transaction.txid)

    def test_was_applied_false_for_unknown(self):
        assert not KeyValueStore().was_applied("nope")

    def test_state_digest_reflects_content(self):
        a = KeyValueStore()
        b = KeyValueStore()
        a.apply(tx(operation="put", key="x", value="1", txid="t1"))
        b.apply(tx(operation="put", key="x", value="1", txid="t2"))
        assert a.state_digest() == b.state_digest()
        b.apply(tx(operation="put", key="y", value="2", txid="t3"))
        assert a.state_digest() != b.state_digest()

    def test_last_write_wins(self):
        store = KeyValueStore()
        store.apply(tx(operation="put", key="a", value="1", txid="t1"))
        store.apply(tx(operation="put", key="a", value="2", txid="t2"))
        assert store.get("a") == "2"


class TestBoundedDedup:
    """The applied-txid index holds bounded memory on runs of any length."""

    def _tx(self, client, seq, key="k", value="v"):
        return Transaction(txid=f"tx-{client}-{seq}", client_id=client,
                           operation="put", key=key, value=value)

    def test_dedup_correctness_within_the_window(self):
        store = KeyValueStore(dedup_window=8)
        for seq in range(8):
            store.apply(self._tx("c0", seq, key=f"k{seq}"))
        # Every id inside the window dedups exactly.
        before = store.operations_applied
        for seq in range(8):
            store.apply(self._tx("c0", seq, key=f"k{seq}", value="dup"))
        assert store.operations_applied == before
        assert all(store.get(f"k{s}") == "v" for s in range(8))

    def test_memory_stays_bounded_over_long_histories(self):
        window = 64
        store = KeyValueStore(dedup_window=window)
        for seq in range(20_000):
            store.apply(self._tx("c0", seq, key=f"k{seq % 16}"))
        # O(window), not O(committed transactions).
        assert store.dedup_entries() <= window + 1
        assert store.operations_applied == 20_000
        # Recent ids still dedup; the compacted floor is conservative:
        # everything below it counts as applied (never double-applies).
        assert store.was_applied("tx-c0-19999")
        assert store.was_applied("tx-c0-1")
        assert store.apply(self._tx("c0", 1)) is None
        assert store.operations_applied == 20_000

    def test_sessions_are_per_client(self):
        store = KeyValueStore(dedup_window=8)
        store.apply(self._tx("c0", 5))
        assert store.was_applied("tx-c0-5")
        assert not store.was_applied("tx-c1-5")

    def test_interleaved_global_sequences(self):
        # The global tx counter interleaves clients, so per-client sequences
        # have gaps; gaps must not count as applied.
        store = KeyValueStore(dedup_window=8)
        store.apply(self._tx("c0", 0))
        store.apply(self._tx("c1", 1))
        store.apply(self._tx("c0", 2))
        assert store.was_applied("tx-c0-0") and store.was_applied("tx-c0-2")
        assert not store.was_applied("tx-c0-1")
        assert not store.was_applied("tx-c1-0")

    def test_non_canonical_txids_use_the_bounded_fifo(self):
        store = KeyValueStore(dedup_window=4)
        for i in range(4):
            store.apply(tx(operation="put", key=f"k{i}", txid=f"custom-{i}!"))
        assert store.was_applied("custom-0!")
        store.apply(tx(operation="put", key="k5", txid="custom-5!"))
        # FIFO bound: the oldest synthetic id is forgotten.
        assert not store.was_applied("custom-0!")
        assert store.was_applied("custom-5!")

    def test_snapshot_round_trips_the_bounded_state(self):
        store = KeyValueStore(dedup_window=16)
        for seq in range(100):
            store.apply(self._tx("c0", seq))
        store.apply(tx(operation="put", key="x", txid="weird-id"))
        clone = KeyValueStore(dedup_window=16)
        clone.restore(store.snapshot())
        assert clone.dedup_entries() == store.dedup_entries()
        assert clone.was_applied("tx-c0-99")
        assert clone.was_applied("tx-c0-0")  # below the floor: conservative
        assert clone.was_applied("weird-id")
        assert clone.snapshot() == store.snapshot()

    def test_snapshots_of_equal_state_are_identical(self):
        a, b = KeyValueStore(dedup_window=8), KeyValueStore(dedup_window=8)
        for store in (a, b):
            for seq in (3, 1, 2):
                store.apply(self._tx("c0", seq))
        assert a.snapshot() == b.snapshot()

    def test_window_must_be_sane(self):
        with pytest.raises(ValueError):
            KeyValueStore(dedup_window=1)
