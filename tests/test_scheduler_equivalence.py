"""Equivalence tests for the two-tier scheduler API and batched broadcast.

The fast tier (``post_at``/``post_after``) must be observationally identical
to the cancellable tier (``call_at``/``call_after``) in everything except the
handle: execution order, clock semantics, horizon behaviour, and
``max_events`` early-stop.  Likewise the batched broadcast fast path must
produce byte-identical delivery timestamps to looping ``send`` over the same
destinations.  These tests pin those contracts so future scheduler or
network work cannot silently fork the two paths.
"""

import pytest

from repro.network.delays import FixedDelay, NormalDelay
from repro.network.network import Network
from repro.network.partition import Partition
from repro.network.fluctuation import FluctuationWindow
from repro.sim.events import EventScheduler, SimulationError
from repro.sim.random import RandomStreams
from repro.types.messages import Message, UNASSIGNED_MESSAGE_ID


class TestTwoTierEquivalence:
    def _interleaved(self, use_posts):
        """Schedule the same workload via call_* or post_* and trace it."""
        sched = EventScheduler()
        trace = []

        def record(tag):
            trace.append((tag, sched.now))

        schedule_after = sched.post_after if use_posts else sched.call_after
        schedule_at = sched.post_at if use_posts else sched.call_at
        # Interleave absolute and relative scheduling, ties included.
        schedule_after(0.3, record, "after-0.3")
        schedule_at(0.1, record, "at-0.1")
        schedule_after(0.1, record, "after-0.1")  # tie with at-0.1
        schedule_at(0.2, record, "at-0.2")

        def nested(tag):
            record(tag)
            # Scheduling from inside a callback sees the updated clock.
            schedule_after(0.05, record, f"{tag}+0.05")

        schedule_at(0.15, nested, "nested-0.15")
        sched.run_until(1.0)
        return trace, sched.now, sched.processed_events

    def test_posts_match_calls_under_interleaving(self):
        posts = self._interleaved(use_posts=True)
        calls = self._interleaved(use_posts=False)
        assert posts == calls
        # Sanity: ties broke in scheduling order and now was the fire time.
        trace = posts[0]
        # nested+0.05 lands exactly on 0.2: at-0.2 was scheduled earlier, so
        # the (time, sequence) tie breaks in its favour.
        assert [tag for tag, _ in trace] == [
            "at-0.1", "after-0.1", "nested-0.15", "at-0.2",
            "nested-0.15+0.05", "after-0.3",
        ]
        assert trace[0][1] == pytest.approx(0.1)
        assert trace[-1][1] == pytest.approx(0.3)

    def test_posts_survive_cancellation_pressure(self):
        """Compaction triggered by cancelled timers must not disturb posts."""
        sched = EventScheduler()
        sched.compaction_min_size = 8
        fired = []
        for i in range(50):
            sched.post_at(1.0 + i * 0.01, fired.append, i)
        # Cancel enough timers to force several compactions in between.
        for _ in range(200):
            timer = sched.call_after(5.0, lambda: None)
            timer.cancel()
        assert sched.compactions > 0
        sched.run_until(10.0)
        assert fired == list(range(50))

    def test_max_events_early_stop_parity(self):
        def run(use_posts):
            sched = EventScheduler()
            seen = []
            schedule = sched.post_after if use_posts else sched.call_after
            for i in range(10):
                schedule(0.1 * (i + 1), seen.append, i)
            executed = sched.run_until(5.0, max_events=4)
            return executed, seen, sched.now

        assert run(True) == run(False)
        executed, seen, now = run(True)
        assert executed == 4
        assert seen == [0, 1, 2, 3]
        # The clock must not fast-forward past the last executed event.
        assert now == pytest.approx(0.4)

    def test_post_in_the_past_raises(self):
        sched = EventScheduler()
        sched.post_after(1.0, lambda: None)
        sched.run_until(1.0)
        with pytest.raises(SimulationError):
            sched.post_at(0.5, lambda: None)
        with pytest.raises(SimulationError):
            sched.post_after(-0.1, lambda: None)

    def test_posted_args_are_passed(self):
        sched = EventScheduler()
        got = []
        sched.post_after(0.1, lambda a, b: got.append((a, b)), 1, "x")
        sched.post_after(0.2, got.append, "bare")
        sched.run_until(1.0)
        assert got == [(1, "x"), "bare"]


def _cluster(seed=7, base_delay=None):
    sched = EventScheduler()
    streams = RandomStreams(seed=seed)
    net = Network(
        sched,
        streams,
        base_delay=base_delay if base_delay is not None else NormalDelay(1e-3, 2e-4),
        bandwidth_bps=1e9,
    )
    deliveries = {}
    for node in ("a", "b", "c", "d"):
        deliveries[node] = []
        net.register(node, lambda m, n=node: deliveries[n].append((sched.now, m)))
    return sched, net, deliveries


class TestBatchedBroadcast:
    def test_broadcast_matches_unbatched_sends(self):
        """Fault-free broadcast = looping send: identical delivery timestamps."""
        sched_a, net_a, recv_a = _cluster(seed=42)
        sched_b, net_b, recv_b = _cluster(seed=42)
        targets = ["a", "b", "c", "d"]

        for round_no in range(5):
            net_a.broadcast("a", targets, Message(sender="a", size_bytes=2000),
                            include_self=True)
            for dst in targets:
                net_b.send("a", dst, Message(sender="a", size_bytes=2000))
        sched_a.run_until_idle()
        sched_b.run_until_idle()

        for node in targets:
            times_batched = [t for t, _ in recv_a[node]]
            times_unbatched = [t for t, _ in recv_b[node]]
            assert times_batched == times_unbatched, node
        assert net_a.stats.messages_sent == net_b.stats.messages_sent
        assert net_a.stats.bytes_sent == net_b.stats.bytes_sent
        assert net_a.stats.per_type_counts == net_b.stats.per_type_counts

    def test_broadcast_fast_path_disengages_under_faults(self):
        """Any installed fault routes a broadcast through the full pipeline."""
        sched, net, recv = _cluster(seed=3, base_delay=FixedDelay(1e-3))
        net.add_partition(Partition(groups=(frozenset({"a"}), frozenset({"b", "c", "d"}))))
        net.broadcast("a", ["a", "b", "c", "d"], Message(sender="a", size_bytes=100))
        sched.run_until_idle()
        # Everything crossing the partition was dropped.
        assert all(not recv[n] for n in ("b", "c", "d"))
        assert net.stats.messages_dropped == 3


class TestFaultPruning:
    def test_healed_partition_is_pruned(self):
        """heal_partitions() drops the healed entries from the scan list."""
        sched, net, recv = _cluster(seed=5, base_delay=FixedDelay(1e-3))
        net.add_partition(Partition(groups=(frozenset({"a"}), frozenset({"b", "c", "d"}))))
        net.send("a", "b", Message(sender="a", size_bytes=100))
        sched.run_until(0.1)
        assert not recv["b"]
        healed = net.heal_partitions()
        assert healed == 1
        # Regression: the healed partition must no longer be consulted at all.
        assert net._partitions == []
        net.send("a", "b", Message(sender="a", size_bytes=100))
        sched.run_until(0.2)
        assert len(recv["b"]) == 1

    def test_expired_fluctuation_window_is_pruned(self):
        sched, net, recv = _cluster(seed=6, base_delay=FixedDelay(1e-3))
        net.add_fluctuation(FluctuationWindow(start=0.0, end=0.05,
                                              min_delay=0.01, max_delay=0.02))
        net.send("a", "b", Message(sender="a", size_bytes=100))
        sched.run_until(0.1)
        assert len(net._fluctuations) == 1  # still live while ticking
        sched.run_until(0.2)
        net.send("a", "b", Message(sender="a", size_bytes=100))
        sched.run_until(0.3)
        # The expired window was dropped on the first post-expiry fault send.
        assert net._fluctuations == []
        assert len(recv["b"]) == 2


class TestPerNetworkMessageIds:
    def test_ids_are_stamped_per_network(self):
        """Two networks assign independent, deterministic id sequences."""
        sched_a, net_a, recv_a = _cluster(seed=9, base_delay=FixedDelay(1e-3))
        sched_b, net_b, recv_b = _cluster(seed=9, base_delay=FixedDelay(1e-3))
        for net, sched in ((net_a, sched_a), (net_b, sched_b)):
            for i in range(3):
                net.send("a", "b", Message(sender="a", size_bytes=10))
            sched.run_until_idle()
        ids_a = [m.message_id for _, m in recv_a["b"]]
        ids_b = [m.message_id for _, m in recv_b["b"]]
        assert ids_a == [1, 2, 3]
        assert ids_a == ids_b

    def test_stamping_happens_once(self):
        sched, net, recv = _cluster(seed=10)
        message = Message(sender="a", size_bytes=10)
        assert message.message_id == UNASSIGNED_MESSAGE_ID
        net.send("a", "b", message)
        first_id = message.message_id
        assert first_id > 0
        net.send("a", "c", message)
        assert message.message_id == first_id
        sched.run_until_idle()
