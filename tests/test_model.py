"""Unit tests for the analytical performance model (paper §V)."""

import math

import pytest

from repro.bench.config import Configuration
from repro.bench.profiles import cost_profile
from repro.model.orderstats import (
    expected_order_statistic,
    expected_order_statistic_mc,
    quorum_delay,
)
from repro.model.predictions import AnalyticalModel, ModelParameters
from repro.model.queuing import md1_sojourn_time, md1_waiting_time, utilization


class TestOrderStatistics:
    def test_median_of_standard_normal_is_zero(self):
        # For an odd sample, the middle order statistic of a symmetric
        # distribution has expectation equal to the mean.
        assert expected_order_statistic(3, 5, mean=0.0, stddev=1.0) == pytest.approx(0.0, abs=1e-6)

    def test_minimum_is_below_mean_and_maximum_above(self):
        low = expected_order_statistic(1, 5, mean=10.0, stddev=2.0)
        high = expected_order_statistic(5, 5, mean=10.0, stddev=2.0)
        assert low < 10.0 < high

    def test_monotone_in_k(self):
        values = [expected_order_statistic(k, 7, 0.0, 1.0) for k in range(1, 8)]
        assert values == sorted(values)

    def test_zero_stddev_returns_mean(self):
        assert expected_order_statistic(2, 4, mean=3.0, stddev=0.0) == 3.0

    def test_matches_known_value_for_max_of_two(self):
        # E[max of two standard normals] = 1/sqrt(pi).
        expected = 1.0 / math.sqrt(math.pi)
        assert expected_order_statistic(2, 2, 0.0, 1.0) == pytest.approx(expected, rel=1e-4)

    def test_matches_monte_carlo(self):
        exact = expected_order_statistic(4, 6, mean=5.0, stddev=1.5)
        estimate = expected_order_statistic_mc(4, 6, mean=5.0, stddev=1.5, samples=40000)
        assert exact == pytest.approx(estimate, abs=0.05)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            expected_order_statistic(0, 5)
        with pytest.raises(ValueError):
            expected_order_statistic(6, 5)

    def test_quorum_delay_grows_with_cluster_size(self):
        small = quorum_delay(4, rtt_mean=1e-3, rtt_stddev=2e-4)
        large = quorum_delay(32, rtt_mean=1e-3, rtt_stddev=2e-4)
        assert large > small > 0

    def test_quorum_delay_single_node(self):
        assert quorum_delay(1, 1e-3, 1e-4) == 0.0


class TestQueueing:
    def test_utilization(self):
        assert utilization(5.0, 10.0) == pytest.approx(0.5)
        with pytest.raises(ValueError):
            utilization(1.0, 0.0)
        with pytest.raises(ValueError):
            utilization(-1.0, 1.0)

    def test_waiting_time_increases_with_load(self):
        light = md1_waiting_time(1.0, 10.0)
        heavy = md1_waiting_time(9.0, 10.0)
        assert heavy > light > 0

    def test_waiting_time_zero_load(self):
        assert md1_waiting_time(0.0, 10.0) == 0.0

    def test_saturation_returns_infinity(self):
        assert md1_waiting_time(10.0, 10.0) == float("inf")
        assert md1_waiting_time(12.0, 10.0) == float("inf")

    def test_md1_matches_formula(self):
        # rho = 0.5, u = 10: w = 0.5 / (2*10*0.5) = 0.05.
        assert md1_waiting_time(5.0, 10.0) == pytest.approx(0.05)

    def test_sojourn_adds_service_time(self):
        assert md1_sojourn_time(5.0, 10.0) == pytest.approx(0.05 + 0.1)
        assert md1_sojourn_time(10.0, 10.0) == float("inf")


def model(protocol="hotstuff", **overrides):
    params = ModelParameters(costs=cost_profile("standard"), **overrides)
    return AnalyticalModel(protocol, params)


class TestAnalyticalModel:
    def test_commit_time_multipliers(self):
        hs = model("hotstuff")
        two_chain = model("2chainhs")
        streamlet = model("streamlet")
        assert hs.commit_time() == pytest.approx(2 * hs.service_time())
        assert two_chain.commit_time() == pytest.approx(two_chain.service_time())
        assert streamlet.commit_time() == pytest.approx(streamlet.service_time())

    def test_protocol_aliases(self):
        assert AnalyticalModel("HS", ModelParameters()).protocol == "hotstuff"
        assert AnalyticalModel("2CHS", ModelParameters()).protocol == "2chainhs"
        assert AnalyticalModel("SL", ModelParameters()).protocol == "streamlet"

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            AnalyticalModel("pbft", ModelParameters())

    def test_hotstuff_latency_exceeds_two_chain(self):
        assert model("hotstuff").latency(100.0) > model("2chainhs").latency(100.0)

    def test_streamlet_service_time_exceeds_hotstuff(self):
        # Vote broadcasting and echoing add CPU work per view.
        assert model("streamlet").service_time() > model("hotstuff").service_time()

    def test_latency_increases_with_load(self):
        hs = model("hotstuff")
        low = hs.latency(0.1 * hs.saturation_rate())
        high = hs.latency(0.9 * hs.saturation_rate())
        assert high > low

    def test_latency_is_infinite_beyond_saturation(self):
        hs = model("hotstuff")
        assert hs.latency(1.1 * hs.saturation_rate()) == float("inf")

    def test_saturation_grows_with_block_size(self):
        small = model("hotstuff", block_size=100).saturation_rate()
        large = model("hotstuff", block_size=400).saturation_rate()
        assert large > small

    def test_block_size_gain_has_diminishing_returns(self):
        s100 = model("hotstuff", block_size=100).saturation_rate()
        s400 = model("hotstuff", block_size=400).saturation_rate()
        s800 = model("hotstuff", block_size=800).saturation_rate()
        assert (s400 / s100) > (s800 / s400)

    def test_payload_increases_nic_time(self):
        light = model("hotstuff", payload_size=0)
        heavy = model("hotstuff", payload_size=1024)
        assert heavy.nic_time() > light.nic_time()
        assert heavy.latency(0.0) > light.latency(0.0)

    def test_extra_network_delay_raises_latency(self):
        near = model("hotstuff")
        far = model("hotstuff", extra_one_way_delay=5e-3)
        assert far.latency(0.0) > near.latency(0.0) + 5e-3

    def test_scaling_with_cluster_size(self):
        small = model("hotstuff", num_nodes=4)
        large = model("hotstuff", num_nodes=32)
        assert large.service_time() > small.service_time()

    def test_predict_curve_shape(self):
        hs = model("hotstuff")
        rates = [0.2 * hs.saturation_rate(), 0.6 * hs.saturation_rate()]
        curve = hs.predict_curve(rates)
        assert len(curve) == 2
        assert curve[0][1] < curve[1][1]

    def test_from_configuration_uses_config_values(self):
        config = Configuration(num_nodes=8, block_size=100, payload_size=128, cost_profile="standard")
        params = ModelParameters.from_configuration(config)
        assert params.num_nodes == 8
        assert params.block_size == 100
        assert params.payload_size == 128

    def test_summary_contains_all_terms(self):
        summary = model("hotstuff").summary()
        assert set(summary) >= {"t_nic", "t_q", "t_s", "t_commit", "t_l", "saturation_tps"}

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ModelParameters(num_nodes=0)
        with pytest.raises(ValueError):
            ModelParameters(block_size=0)
