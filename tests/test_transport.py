"""Transport seam tests: codec, real signing, loopback deployment clusters.

Covers the deployment runtime end to end:

* both backends structurally conform to the :mod:`repro.transport.base`
  seam protocols (and the simulation conforms *without importing* the
  transport package — pinned by an AST import-isolation test);
* the wire codec round-trips every message kind;
* the pure-Python Ed25519 matches RFC 8032 and rejects tampering, both at
  the primitive level and through :class:`~repro.quorum.quorum.QuorumTracker`;
* a real asyncio loopback cluster reaches consensus, survives a
  crash-and-recover (state sync over actual TCP), and emits the same record
  schema as the discrete-event model from one shared ``Configuration``.
"""

from __future__ import annotations

import ast
import asyncio
from pathlib import Path

import pytest

from helpers import make_vote
from repro.bench.config import Configuration
from repro.bench.runner import build_cluster, run_experiment
from repro.crypto import ed25519
from repro.crypto.keys import Ed25519KeyPair, KeyPair, KeyRegistry, available_schemes
from repro.crypto.signatures import Signature, sign, verify
from repro.executor.kvstore import DedupState, KVSnapshot
from repro.checkpoint.messages import SnapshotRequest, SnapshotResponse
from repro.checkpoint.snapshot import Checkpoint
from repro.forest.forest import BlockForest
from repro.network.network import Network
from repro.quorum.quorum import QuorumTracker
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.sync.messages import BlockRequest, BlockResponse
from repro.transport.base import Clock, TimerHandle, Transport
from repro.transport.clock import AsyncioClock
from repro.transport.codec import (
    CodecError,
    MAX_FRAME_BYTES,
    decode_message,
    encode_message,
    frame,
    read_frame,
)
from repro.transport.asyncio_net import AsyncioTransport
from repro.transport.runtime import DeploymentRunner
from repro.types.block import make_block
from repro.types.certificates import (
    QuorumCertificate,
    Timeout,
    TimeoutCertificate,
    Vote,
    vote_digest,
)
from repro.types.messages import (
    UNASSIGNED_MESSAGE_ID,
    ClientReply,
    ClientRequest,
    ProposalMessage,
    TimeoutCertificateMessage,
    TimeoutMessage,
    VoteMessage,
)
from repro.types.transaction import Transaction

SRC_ROOT = Path(__file__).resolve().parent.parent / "src" / "repro"


# --------------------------------------------------------------------------
# seam conformance


class TestSeamConformance:
    def test_event_scheduler_is_a_clock(self):
        scheduler = EventScheduler()
        assert isinstance(scheduler, Clock)
        assert isinstance(scheduler.call_after(1.0, lambda: None), TimerHandle)

    def test_simulated_network_is_a_transport(self):
        network = Network(EventScheduler(), RandomStreams(seed=1))
        assert isinstance(network, Transport)

    def test_asyncio_backends_conform(self):
        async def scenario():
            clock = AsyncioClock()
            assert isinstance(clock, Clock)
            assert isinstance(clock.call_after(10.0, lambda: None), TimerHandle)
            assert isinstance(AsyncioTransport(), Transport)

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# wire codec


def _sample_objects():
    """One of everything: a signed chain fragment plus client traffic."""
    registry = KeyRegistry()
    forest = BlockForest()
    tx = Transaction.create(client_id="c0", created_at=1.25, payload_size=16)
    qc0 = QuorumCertificate(
        block_id=forest.genesis.block_id, view=0,
        signers=frozenset({"r0", "r1", "r2"}),
        signatures=(sign(registry.register("r0"), "aa"), sign(registry.register("r1"), "aa")),
    )
    block = make_block(view=1, parent=forest.genesis, qc=qc0, proposer="r0",
                       transactions=(tx,))
    vote = make_vote(registry, "r1", block)
    timeout = Timeout(voter="r2", view=3, high_qc_view=1,
                      signature=sign(registry.register("r2"), "bb"))
    tc = TimeoutCertificate(view=3, signers=frozenset({"r0", "r2"}),
                            signatures=(timeout.signature,), high_qc_view=1)
    snapshot = KVSnapshot(
        items=(("k1", "v1"), ("k2", "v2")),
        dedup=DedupState(sessions=(("c0", 4, (7, 9)),), extras=("c1:2",)),
        operations_applied=11,
    )
    checkpoint = Checkpoint(height=1, block=block, qc=qc0,
                            committed_ids=(block.block_id,), state=snapshot,
                            taken_at=2.5)
    return tx, block, vote, qc0, timeout, tc, checkpoint


def _round_trip(message):
    decoded = decode_message(encode_message(message))
    assert decoded == message
    assert decoded.sender == message.sender
    assert decoded.size_bytes == message.size_bytes
    return decoded


class TestCodec:
    def setup_method(self):
        (self.tx, self.block, self.vote, self.qc,
         self.timeout, self.tc, self.checkpoint) = _sample_objects()

    def test_proposal_round_trip(self):
        decoded = _round_trip(ProposalMessage(sender="r0", size_bytes=900,
                                              block=self.block, view=1,
                                              forwarded_by="r1"))
        assert decoded.block.qc.signers == self.qc.signers
        assert decoded.block.transactions[0].txid == self.tx.txid

    def test_vote_round_trip(self):
        decoded = _round_trip(VoteMessage(sender="r1", size_bytes=120, vote=self.vote))
        assert decoded.vote.signature.tag == self.vote.signature.tag

    def test_timeout_round_trip(self):
        _round_trip(TimeoutMessage(sender="r2", size_bytes=130, timeout=self.timeout))

    def test_tc_round_trip(self):
        _round_trip(TimeoutCertificateMessage(sender="r0", size_bytes=260, tc=self.tc))

    def test_client_request_round_trip(self):
        _round_trip(ClientRequest(sender="c0", size_bytes=140, transaction=self.tx))

    def test_client_reply_round_trip(self):
        _round_trip(ClientReply(sender="r0", size_bytes=48, txid=self.tx.txid,
                                committed_at=2.0, replica="r0", status="committed"))

    def test_block_request_round_trip(self):
        _round_trip(BlockRequest(sender="r3", size_bytes=96,
                                 target_block_id=self.block.block_id,
                                 known_block_id=self.block.parent_id, known_height=0))

    def test_block_response_round_trip(self):
        decoded = _round_trip(BlockResponse(sender="r0", size_bytes=1000,
                                            blocks=(self.block,),
                                            target_id=self.block.block_id,
                                            tip_qc=self.qc))
        assert decoded.blocks[0] == self.block

    def test_snapshot_request_round_trip(self):
        _round_trip(SnapshotRequest(sender="r3", size_bytes=32, known_height=0))

    def test_snapshot_response_round_trip(self):
        decoded = _round_trip(SnapshotResponse(sender="r0", size_bytes=4000,
                                               checkpoint=self.checkpoint,
                                               responder_height=1))
        assert decoded.checkpoint.state == self.checkpoint.state

    def test_snapshot_response_without_checkpoint(self):
        _round_trip(SnapshotResponse(sender="r0", size_bytes=40,
                                     checkpoint=None, responder_height=0))

    def test_decode_returns_an_unstamped_message(self):
        # Ids never travel the wire: the receiving runtime stamps decoded
        # messages from its own counter.
        message = SnapshotRequest(sender="r3", size_bytes=32, known_height=0)
        message.message_id = 7
        decoded = decode_message(encode_message(message))
        assert decoded.message_id == UNASSIGNED_MESSAGE_ID

    def test_unknown_kind_raises(self):
        with pytest.raises(CodecError):
            decode_message(b'{"kind": "Telegram", "sender": "x", "size_bytes": 1, "body": {}}')

    def test_malformed_json_raises(self):
        with pytest.raises(CodecError):
            decode_message(b"\xff not json")

    def test_truncated_body_raises(self):
        with pytest.raises(CodecError):
            decode_message(b'{"kind": "VoteMessage", "sender": "x", "size_bytes": 1, "body": {}}')

    def test_oversized_frame_rejected(self):
        with pytest.raises(CodecError):
            frame(b"x" * (MAX_FRAME_BYTES + 1))

    def test_frame_round_trip_over_stream(self):
        first = encode_message(SnapshotRequest(sender="a", size_bytes=32, known_height=3))
        second = encode_message(ClientReply(sender="b", size_bytes=48, txid="t",
                                            committed_at=1.0, replica="r0",
                                            status="committed"))

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(frame(first) + frame(second))
            reader.feed_eof()
            assert await read_frame(reader) == first
            assert await read_frame(reader) == second
            assert await read_frame(reader) is None  # clean EOF at boundary

        asyncio.run(scenario())

    def test_read_frame_rejects_truncation(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(frame(b"hello world")[:-3])
            reader.feed_eof()
            with pytest.raises(CodecError):
                await read_frame(reader)

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# real signatures


class TestEd25519:
    # RFC 8032 §7.1, test vector 1 (empty message).
    SEED = bytes.fromhex(
        "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60")
    PUB = bytes.fromhex(
        "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a")
    SIG = bytes.fromhex(
        "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
        "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b")

    # RFC 8032 §7.1, test vector 2 (one-byte message 0x72).
    SEED2 = bytes.fromhex(
        "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb")
    PUB2 = bytes.fromhex(
        "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c")
    SIG2 = bytes.fromhex(
        "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
        "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00")

    def test_rfc8032_public_key(self):
        assert ed25519.public_key(self.SEED) == self.PUB

    def test_rfc8032_signature(self):
        assert ed25519.sign(self.SEED, b"") == self.SIG

    def test_rfc8032_verifies(self):
        assert ed25519.verify(self.PUB, b"", self.SIG)

    def test_rfc8032_vector_2(self):
        assert ed25519.public_key(self.SEED2) == self.PUB2
        assert ed25519.sign(self.SEED2, b"\x72") == self.SIG2
        assert ed25519.verify(self.PUB2, b"\x72", self.SIG2)

    def test_tampered_message_rejected(self):
        assert not ed25519.verify(self.PUB, b"x", self.SIG)

    def test_tampered_signature_rejected(self):
        forged = bytes([self.SIG[0] ^ 1]) + self.SIG[1:]
        assert not ed25519.verify(self.PUB, b"", forged)

    def test_malformed_inputs_return_false(self):
        assert not ed25519.verify(self.PUB, b"", b"short")
        assert not ed25519.verify(b"short", b"", self.SIG)

    def test_distinct_messages_distinct_signatures(self):
        assert ed25519.sign(self.SEED, b"a") != ed25519.sign(self.SEED, b"b")


class TestSigningSchemes:
    def test_both_schemes_registered(self):
        assert available_schemes() == ["ed25519", "hmac"]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            KeyRegistry(scheme="rot13")

    def test_registry_scheme_selects_keypair_class(self):
        assert isinstance(KeyRegistry(scheme="hmac").register("r0"), KeyPair)
        assert isinstance(KeyRegistry(scheme="ed25519").register("r0"), Ed25519KeyPair)

    def test_ed25519_generation_is_deterministic(self):
        a = Ed25519KeyPair.generate("r0", deployment_seed=7)
        b = Ed25519KeyPair.generate("r0", deployment_seed=7)
        assert a.secret == b.secret
        assert a.public_key == b.public_key
        assert Ed25519KeyPair.generate("r1", deployment_seed=7).secret != a.secret

    def test_sign_verify_through_registry(self):
        registry = KeyRegistry(scheme="ed25519")
        keypair = registry.register("r0")
        signature = sign(keypair, "deadbeef")
        assert len(signature.tag) == ed25519.SIGNATURE_SIZE
        assert verify(registry, signature)

    def test_forged_tag_fails(self):
        registry = KeyRegistry(scheme="ed25519")
        signature = sign(registry.register("r0"), "deadbeef")
        forged = Signature(signer="r0", digest="deadbeef",
                           tag=b"\x00" * ed25519.SIGNATURE_SIZE)
        assert not verify(registry, forged)

    def test_quorum_tracker_rejects_tampered_vote(self):
        registry = KeyRegistry(scheme="ed25519")
        forest = BlockForest()
        block = make_block(view=1, parent=forest.genesis, qc=None, proposer="r0", transactions=())
        tracker = QuorumTracker(num_nodes=4, registry=registry)
        good = make_vote(registry, "r1", block)
        assert tracker.voted(good)
        # A Byzantine peer flips one bit of a signature in flight.
        bad_sig = Signature(signer="r2", digest=vote_digest(block.block_id, block.view),
                            tag=bytes([good.signature.tag[0] ^ 1]) + good.signature.tag[1:])
        tampered = Vote(voter="r2", block_id=block.block_id, view=block.view,
                        signature=bad_sig)
        registry.register("r2")
        assert not tracker.voted(tampered)
        assert tracker.invalid_votes == 1
        assert tracker.vote_count(block.view, block.block_id) == 1

    def test_quorum_tracker_rejects_replayed_signature(self):
        # r2 replays r1's (valid) signature under its own name.
        registry = KeyRegistry(scheme="ed25519")
        forest = BlockForest()
        block = make_block(view=1, parent=forest.genesis, qc=None, proposer="r0", transactions=())
        tracker = QuorumTracker(num_nodes=4, registry=registry)
        good = make_vote(registry, "r1", block)
        registry.register("r2")
        stolen = Vote(voter="r2", block_id=block.block_id, view=block.view,
                      signature=good.signature)
        assert not tracker.voted(stolen)
        assert tracker.invalid_votes == 1


# --------------------------------------------------------------------------
# asyncio clock


class TestAsyncioClock:
    def test_now_and_timers(self):
        async def scenario():
            clock = AsyncioClock()
            assert clock.now >= 0.0
            fired = []
            handle = clock.call_after(0.01, fired.append, "a")
            cancelled = clock.call_after(5.0, fired.append, "never")
            assert handle.pending and cancelled.pending
            cancelled.cancel()
            assert not cancelled.pending
            await asyncio.sleep(0.05)
            assert fired == ["a"]
            assert not handle.pending
            assert clock.processed_events == 1

        asyncio.run(scenario())

    def test_negative_delay_clamps_to_now(self):
        async def scenario():
            clock = AsyncioClock()
            fired = []
            clock.call_after(-1.0, fired.append, "x")
            clock.call_at(clock.now - 5.0, fired.append, "y")
            await asyncio.sleep(0.02)
            assert sorted(fired) == ["x", "y"]

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# asyncio transport (unit level)


class TestAsyncioTransport:
    @staticmethod
    def _reply(txid: str) -> ClientReply:
        return ClientReply(sender="a", size_bytes=48, txid=txid, committed_at=1.0,
                           replica="a", status="committed")

    @staticmethod
    async def _settle(predicate, timeout=5.0):
        deadline = asyncio.get_running_loop().time() + timeout
        while not predicate():
            if asyncio.get_running_loop().time() > deadline:
                raise AssertionError("condition not reached before timeout")
            await asyncio.sleep(0.02)

    def test_register_validation(self):
        transport = AsyncioTransport()
        transport.register("a", lambda m: None)
        with pytest.raises(ValueError):
            transport.register("a", lambda m: None)

    def test_send_to_unknown_endpoint_raises(self):
        transport = AsyncioTransport()
        transport.register("a", lambda m: None)
        with pytest.raises(KeyError):
            transport.send("a", "ghost", self._reply("t"))

    def test_delivery_and_crash_recover(self):
        async def scenario():
            transport = AsyncioTransport()
            received = {"a": [], "b": []}
            transport.register("a", received["a"].append)
            transport.register("b", received["b"].append)
            await transport.start()

            transport.send("a", "b", self._reply("t1"))
            await self._settle(lambda: len(received["b"]) == 1)
            assert received["b"][0].txid == "t1"
            assert transport.stats.messages_delivered == 1
            assert transport.stats.per_type_counts["ClientReply"] == 1

            # Loopback still lands on the inbox queue.
            transport.send("a", "a", self._reply("self"))
            await self._settle(lambda: len(received["a"]) == 1)

            # Crashed destinations silently drop traffic.
            transport.crash("b")
            assert transport.is_crashed("b")
            assert transport.address_of("b") is None
            transport.send("a", "b", self._reply("lost"))
            assert transport.stats.messages_dropped >= 1

            # Recovery rebinds on a fresh port and delivery resumes.
            transport.recover("b")
            await self._settle(lambda: transport.address_of("b") is not None)
            transport.send("a", "b", self._reply("t2"))
            await self._settle(lambda: len(received["b"]) == 2)
            assert received["b"][1].txid == "t2"
            assert "lost" not in [m.txid for m in received["b"]]

            await transport.stop()

        asyncio.run(scenario())

    def test_broadcast_matches_network_semantics(self):
        async def scenario():
            transport = AsyncioTransport()
            received = {name: [] for name in ("a", "b", "c")}
            for name in received:
                transport.register(name, received[name].append)
            await transport.start()
            transport.broadcast("a", ["b", "c"], self._reply("x"))
            await self._settle(lambda: len(received["b"]) == 1 and len(received["c"]) == 1)
            assert received["a"] == []  # include_self defaults off
            transport.broadcast("a", ["b"], self._reply("y"), include_self=True)
            await self._settle(lambda: len(received["a"]) == 1)
            await transport.stop()

        asyncio.run(scenario())

    def test_handler_errors_are_surfaced_not_lost(self):
        async def scenario():
            transport = AsyncioTransport()
            transport.register("a", lambda m: None)

            def explode(message):
                raise RuntimeError("boom")

            transport.register("b", explode)
            await transport.start()
            transport.send("a", "b", self._reply("t"))
            await self._settle(lambda: len(transport.errors) == 1)
            assert "boom" in repr(transport.errors[0])
            await transport.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# import isolation: the protocol stack must not know the transport exists


#: Packages that make up the protocol stack run unmodified in both modes.
PROTOCOL_STACK_DIRS = (
    "protocols", "core", "pacemaker", "quorum", "forest",
    "sync", "checkpoint", "client", "executor", "election", "mempool",
)


def _imports_of(path: Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            yield node.module


class TestImportIsolation:
    def test_protocol_stack_never_imports_the_transport(self):
        offenders = []
        for directory in PROTOCOL_STACK_DIRS:
            for path in sorted((SRC_ROOT / directory).rglob("*.py")):
                for module in _imports_of(path):
                    if module == "repro.transport" or module.startswith("repro.transport."):
                        offenders.append(f"{path.relative_to(SRC_ROOT)} imports {module}")
        assert not offenders, (
            "the deployment backend must plug in through the seam alone:\n  "
            + "\n  ".join(offenders)
        )

    def test_transport_package_exists_where_expected(self):
        # Guards the walk above against silently checking nothing.
        assert (SRC_ROOT / "transport" / "base.py").exists()
        assert all((SRC_ROOT / d).is_dir() for d in PROTOCOL_STACK_DIRS)


# --------------------------------------------------------------------------
# loopback deployment clusters (slow: real sockets, real signatures)


def _deploy_config(**overrides) -> Configuration:
    base = dict(
        num_nodes=4,
        block_size=50,
        mempool_capacity=2000,
        num_clients=2,
        concurrency=8,
        view_timeout=1.0,
        request_timeout=2.0,
        warmup=0.3,
        runtime=2.0,
        cooldown=0.2,
        mode="deploy",
        seed=3,
    )
    base.update(overrides)
    return Configuration(**base)


class TestDeployment:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            Configuration(mode="hologram").validate()
        with pytest.raises(ValueError):
            Configuration(signing="rot13").validate()

    def test_signing_auto_resolution(self):
        assert Configuration(mode="model").resolved_signing() == "hmac"
        assert Configuration(mode="model", signing="ed25519").resolved_signing() == "ed25519"
        assert _deploy_config().resolved_signing() == "ed25519"
        assert _deploy_config(signing="hmac").resolved_signing() == "hmac"

    def test_build_cluster_refuses_deploy_mode(self):
        with pytest.raises(ValueError):
            build_cluster(_deploy_config())

    def test_loopback_cluster_reaches_consensus(self):
        """One Configuration, both modes: same schema, zero protocol edits."""
        config = _deploy_config()
        deployed = run_experiment(config)
        assert deployed.consistent
        assert deployed.metrics.committed_transactions > 0
        assert deployed.highest_view > 1
        assert deployed.metrics.wall_clock_seconds > 0
        assert deployed.metrics.events_per_second > 0

        modeled = run_experiment(config.replace(mode="model"))
        assert modeled.consistent
        assert modeled.metrics.committed_transactions > 0
        # Identical record schema lets fig8 plot the two side by side.
        assert set(deployed.metrics.to_dict()) == set(modeled.metrics.to_dict())
        assert deployed.timeline and modeled.timeline

    def test_crashed_replica_recovers_over_the_wire(self):
        """A replica that crashes mid-run catches back up via real sync."""

        async def scenario():
            runner = DeploymentRunner(_deploy_config(runtime=4.0, seed=11))
            await runner.start()
            victim = runner.replicas["r3"]
            observer = runner.replicas[runner.observer_id]
            await asyncio.sleep(1.2)
            victim.crash()
            assert runner.transport.is_crashed("r3")
            height_down = victim.forest.committed_height
            await asyncio.sleep(1.2)
            assert observer.forest.committed_height > height_down
            victim.recover()
            await asyncio.sleep(2.0)
            await runner.stop()
            runner.raise_handler_errors()
            return runner, height_down

        runner, height_down = asyncio.run(scenario())
        victim = runner.replicas["r3"]
        assert victim.forest.committed_height > height_down
        assert runner.consistency_check()
        assert runner.transport.stats.reconnects > 0
