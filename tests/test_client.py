"""Unit tests for the client library (closed-loop and Poisson clients)."""

import pytest

from repro.client.client import ClosedLoopClient, PoissonClient
from repro.client.workload import WorkloadSpec
from repro.network.delays import FixedDelay
from repro.network.network import Network
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.types.messages import ClientReply, ClientRequest
from repro.types.sizes import SizeModel


class EchoReplica:
    """A fake replica that commits (or rejects) every request after a delay."""

    def __init__(self, node_id, scheduler, network, delay=0.01, status="committed"):
        self.node_id = node_id
        self.scheduler = scheduler
        self.network = network
        self.delay = delay
        self.status = status
        self.received = []
        network.register(node_id, self.deliver)

    def deliver(self, message):
        if not isinstance(message, ClientRequest):
            return
        self.received.append(message.transaction)
        reply = ClientReply(
            sender=self.node_id,
            size_bytes=96,
            txid=message.transaction.txid,
            committed_at=self.scheduler.now + self.delay,
            replica=self.node_id,
            status=self.status,
        )
        self.scheduler.call_after(self.delay, self.network.send, self.node_id, message.sender, reply)


class RecordingMetrics:
    def __init__(self):
        self.latencies = []
        self.rejections = []
        self.timeouts = []

    def record_latency(self, txid, latency, now):
        self.latencies.append(latency)

    def record_rejection(self, txid, now):
        self.rejections.append(txid)

    def record_timeout(self, txid, now):
        self.timeouts.append(txid)


def make_env(delay=0.01, status="committed", num_replicas=2):
    scheduler = EventScheduler()
    streams = RandomStreams(seed=11)
    network = Network(scheduler, streams, base_delay=FixedDelay(0.001))
    replicas = [EchoReplica(f"r{i}", scheduler, network, delay, status) for i in range(num_replicas)]
    metrics = RecordingMetrics()
    return scheduler, network, streams, replicas, metrics


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec()
        assert spec.payload_size == 0
        assert spec.write_fraction == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkloadSpec(payload_size=-1)
        with pytest.raises(ValueError):
            WorkloadSpec(write_fraction=1.5)
        with pytest.raises(ValueError):
            WorkloadSpec(key_space=0)

    def test_operation_mix(self):
        spec = WorkloadSpec(write_fraction=0.5)
        assert spec.operation_for(0.25) == "put"
        assert spec.operation_for(0.75) == "get"


class TestClosedLoopClient:
    def test_keeps_concurrency_outstanding(self):
        scheduler, network, streams, replicas, metrics = make_env()
        client = ClosedLoopClient(
            "c0", scheduler, network, streams, ["r0", "r1"], metrics=metrics, concurrency=4
        )
        client.start()
        assert client.requests_sent == 4
        scheduler.run_until(0.2)
        # Each commit triggers a replacement request.
        assert client.requests_sent > 4
        assert len(client._outstanding) == 4

    def test_latency_is_recorded(self):
        scheduler, network, streams, replicas, metrics = make_env(delay=0.02)
        client = ClosedLoopClient(
            "c0", scheduler, network, streams, ["r0"], metrics=metrics, concurrency=1
        )
        client.start()
        scheduler.run_until(0.1)
        assert metrics.latencies
        assert all(lat >= 0.02 for lat in metrics.latencies)

    def test_stops_issuing_after_stop_time(self):
        scheduler, network, streams, replicas, metrics = make_env(delay=0.01)
        client = ClosedLoopClient(
            "c0", scheduler, network, streams, ["r0"], metrics=metrics, concurrency=2
        )
        client.start(stop_time=0.05)
        scheduler.run_until(0.5)
        sent_at_cutoff = client.requests_sent
        scheduler.run_until(1.0)
        assert client.requests_sent == sent_at_cutoff

    def test_rejection_triggers_retry(self):
        scheduler, network, streams, replicas, metrics = make_env(status="rejected")
        client = ClosedLoopClient(
            "c0", scheduler, network, streams, ["r0"], metrics=metrics, concurrency=1
        )
        client.start()
        scheduler.run_until(0.2)
        assert client.replies_rejected > 1
        assert metrics.rejections
        assert not metrics.latencies

    def test_timeout_triggers_replacement(self):
        scheduler, network, streams, replicas, metrics = make_env()
        # A replica that never answers: register a sink endpoint.
        network.register("dead", lambda m: None)
        client = ClosedLoopClient(
            "c0",
            scheduler,
            network,
            streams,
            ["dead"],
            metrics=metrics,
            concurrency=2,
            request_timeout=0.05,
        )
        client.start()
        scheduler.run_until(0.3)
        assert client.requests_timed_out >= 2
        assert metrics.timeouts
        # The loop keeps itself alive by re-issuing.
        assert client.requests_sent > 2

    def test_invalid_parameters(self):
        scheduler, network, streams, replicas, metrics = make_env()
        with pytest.raises(ValueError):
            ClosedLoopClient("c0", scheduler, network, streams, ["r0"], concurrency=0)
        with pytest.raises(ValueError):
            ClosedLoopClient("c1", scheduler, network, streams, ["r0"], request_timeout=0.0)
        with pytest.raises(ValueError):
            ClosedLoopClient("c2", scheduler, network, streams, [])

    def test_payload_size_is_applied(self):
        scheduler, network, streams, replicas, metrics = make_env()
        client = ClosedLoopClient(
            "c0",
            scheduler,
            network,
            streams,
            ["r0"],
            workload=WorkloadSpec(payload_size=256),
            metrics=metrics,
            concurrency=1,
        )
        client.start()
        scheduler.run_until(0.05)
        assert replicas[0].received[0].payload_size == 256


class TestPoissonClient:
    def test_rate_controls_request_count(self):
        scheduler, network, streams, replicas, metrics = make_env(delay=0.001)
        client = PoissonClient(
            "c0", scheduler, network, streams, ["r0", "r1"], metrics=metrics, rate=500.0
        )
        client.start(stop_time=1.0)
        scheduler.run_until(1.2)
        # Expect roughly 500 arrivals in one second (Poisson, generous band).
        assert 350 < client.requests_sent < 650

    def test_open_loop_does_not_wait_for_replies(self):
        scheduler, network, streams, replicas, metrics = make_env(delay=10.0)
        client = PoissonClient(
            "c0", scheduler, network, streams, ["r0"], metrics=metrics, rate=200.0
        )
        client.start(stop_time=0.5)
        scheduler.run_until(0.5)
        assert client.requests_sent > 50
        assert client.replies_committed == 0

    def test_invalid_rate(self):
        scheduler, network, streams, replicas, metrics = make_env()
        with pytest.raises(ValueError):
            PoissonClient("c0", scheduler, network, streams, ["r0"], rate=0.0)

    def test_latencies_recorded_for_commits(self):
        scheduler, network, streams, replicas, metrics = make_env(delay=0.005)
        client = PoissonClient(
            "c0", scheduler, network, streams, ["r0"], metrics=metrics, rate=100.0
        )
        client.start(stop_time=0.5)
        scheduler.run_until(1.0)
        assert len(metrics.latencies) > 10
