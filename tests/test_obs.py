"""Tests for the observability subsystem: tracing, metrics, export, CLI.

Pins the properties the subsystem is built around: the disabled path is a
true no-op (same RunMetrics with tracing on or off), the JSONL dump is
byte-deterministic for a given seed, ring-buffer wraparound degrades
gracefully, malformed traces and unknown category bits are rejected loudly,
and every consumer (Perfetto export, SVG timeline, fuzz violation bundling,
campaign progress, the ``trace`` CLI) round-trips through the same records.
"""

import json

import pytest

from repro import api
from repro.analysis.figures import FigureError, render_view_timeline
from repro.bench.config import Configuration
from repro.bench.runner import build_cluster, run_experiment
from repro.experiments.cli import main
from repro.obs import (
    CATEGORY_BITS,
    CampaignProgress,
    LogHistogram,
    ObsMetrics,
    TraceRecord,
    Tracer,
    available_trace_sinks,
    category_mask,
    register_trace_sink,
    tracing,
    write_trace,
)
from repro.obs import trace as obs_trace
from repro.obs.export import (
    TraceFormatError,
    jsonl_lines,
    parse_jsonl,
    summarize,
    to_chrome_trace,
    to_text,
    validate_jsonl,
    view_spans,
    write_jsonl,
)
from repro.scenario import Scenario, ScenarioRunner
from repro.scenario.events import CrashReplica, RecoverReplica


def small_config(**overrides):
    params = dict(
        protocol="hotstuff",
        num_nodes=4,
        block_size=20,
        mempool_capacity=200,
        concurrency=8,
        num_clients=2,
        view_timeout=0.05,
        runtime=0.6,
        warmup=0.1,
        cooldown=0.2,
        cost_profile="fast",
        seed=11,
    )
    params.update(overrides)
    return Configuration(**params)


def crash_scenario():
    return Scenario(
        name="crash-recover",
        events=[CrashReplica(at=0.3, replica="last"),
                RecoverReplica(at=0.6, replica="last")],
    )


# ----------------------------------------------------------------------
# tracer core
# ----------------------------------------------------------------------
class TestTracer:
    def test_disabled_by_default(self):
        assert obs_trace.ACTIVE is None
        cluster = build_cluster(small_config())
        assert cluster.tracer is None
        assert cluster.network.tracer is None
        for replica in cluster.replicas.values():
            assert replica.tracer is None

    def test_emit_and_merge_order(self):
        tracer = Tracer()
        tracer.emit(0.2, "r1", obs_trace.VOTE, "vote", 2)
        tracer.emit(0.1, "r0", obs_trace.VIEW, "enter", 1)
        records = tracer.records()
        # Emission (seq) order, not timestamp order: deterministic merges.
        assert [r.replica for r in records] == ["r1", "r0"]
        assert records[0] == TraceRecord(0.2, "r1", "vote", "vote", 2, None)
        assert len(tracer) == 2

    def test_category_filter_drops_before_buffering(self):
        tracer = Tracer(categories=("view",))
        tracer.emit(0.0, "r0", obs_trace.VIEW, "enter", 1)
        tracer.emit(0.0, "r0", obs_trace.VOTE, "vote", 1)
        assert [r.category for r in tracer.records()] == ["view"]
        assert tracer.records_emitted == 1

    def test_ring_wraparound_keeps_newest(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            tracer.emit(float(i), "r0", obs_trace.COMMIT, "commit", i)
        records = tracer.records()
        assert len(records) == 4
        assert [r.view for r in records] == [6, 7, 8, 9]
        assert tracer.records_evicted == 6

    def test_unknown_category_bits_rejected(self):
        with pytest.raises(ValueError):
            Tracer(categories=1 << 30)
        with pytest.raises(ValueError):
            Tracer(categories="nonesuch")
        with pytest.raises(ValueError):
            category_mask(0)
        tracer = Tracer()
        with pytest.raises(ValueError):
            tracer.emit(0.0, "r0", 1 << 30, "bad", 0)
        with pytest.raises(ValueError):
            # Multi-bit "category": a record belongs to exactly one.
            tracer.emit(0.0, "r0", obs_trace.VIEW | obs_trace.VOTE, "bad", 0)

    def test_tracing_context_restores_previous(self):
        assert obs_trace.ACTIVE is None
        with tracing() as outer:
            assert obs_trace.ACTIVE is outer
            with tracing() as inner:
                assert obs_trace.ACTIVE is inner
            assert obs_trace.ACTIVE is outer
        assert obs_trace.ACTIVE is None


# ----------------------------------------------------------------------
# semantics: tracing must not change the run
# ----------------------------------------------------------------------
class TestNoPerturbation:
    def test_traced_and_untraced_metrics_identical(self):
        config = small_config()
        untraced = run_experiment(config)
        with tracing() as tracer:
            traced = run_experiment(config)
        assert traced.metrics.to_dict() == untraced.metrics.to_dict()
        assert traced.highest_view == untraced.highest_view
        assert len(tracer.records()) > 0

    def test_traced_scenario_metrics_identical(self):
        config = small_config()
        untraced = ScenarioRunner(config, crash_scenario()).run()
        with tracing():
            traced = ScenarioRunner(config, crash_scenario()).run()
        assert traced.metrics.to_dict() == untraced.metrics.to_dict()

    def test_same_seed_jsonl_is_byte_identical(self):
        config = small_config()
        with tracing() as first:
            run_experiment(config)
        with tracing() as second:
            run_experiment(config)
        assert jsonl_lines(first.records()) == jsonl_lines(second.records())


# ----------------------------------------------------------------------
# instrumentation coverage
# ----------------------------------------------------------------------
class TestInstrumentation:
    def test_plain_run_covers_protocol_categories(self):
        with tracing() as tracer:
            run_experiment(small_config())
        categories = summarize(tracer.records())["categories"]
        for expected in ("view", "proposal", "vote", "qc", "commit", "client"):
            assert categories.get(expected, 0) > 0, expected

    def test_histograms_populated(self):
        with tracing() as tracer:
            run_experiment(small_config())
        metrics = tracer.metrics
        assert metrics.merged_histogram("request_to_commit").count > 0
        assert metrics.merged_histogram("hop_delay").count > 0
        assert metrics.merged_histogram("queue_depth").count > 0

    def test_crash_scenario_emits_fault_and_net_records(self):
        with tracing() as tracer:
            ScenarioRunner(small_config(), crash_scenario()).run()
        records = tracer.records()
        faults = [r for r in records if r.category == "fault"]
        assert [f.kind for f in faults] == ["crash-replica", "recover-replica"]
        assert faults[0].replica == "last"
        assert any(r.category == "timeout" for r in records)
        assert any(r.category == "net" for r in records)

    def test_checkpoint_records_emitted(self):
        config = small_config(checkpoint_interval=5, runtime=0.8)
        with tracing() as tracer:
            run_experiment(config)
        kinds = {r.kind for r in tracer.records() if r.category == "checkpoint"}
        assert "checkpoint" in kinds


# ----------------------------------------------------------------------
# export formats
# ----------------------------------------------------------------------
class TestExport:
    def _records(self):
        with tracing() as tracer:
            run_experiment(small_config(runtime=0.4))
        return tracer.records()

    def test_jsonl_round_trip(self, tmp_path):
        records = self._records()
        path = write_jsonl(records, tmp_path / "t.jsonl")
        header, parsed = validate_jsonl(path)
        assert header["records"] == len(records) == len(parsed)
        assert parsed == records

    def test_empty_trace_exports(self, tmp_path):
        path = write_jsonl([], tmp_path / "empty.jsonl")
        header, parsed = validate_jsonl(path)
        assert header["records"] == 0 and parsed == []
        doc = to_chrome_trace([])
        assert doc["traceEvents"] == []
        assert to_text([]) == ""
        assert view_spans([]) == {}
        with pytest.raises(FigureError):
            render_view_timeline([])

    def test_parse_rejects_malformed(self, tmp_path):
        with pytest.raises(TraceFormatError):
            parse_jsonl("")
        with pytest.raises(TraceFormatError):
            parse_jsonl('{"not_a_header": 1}')
        with pytest.raises(TraceFormatError):
            parse_jsonl('{"repro_trace": 999, "records": 0}')
        header = '{"repro_trace": 1, "records": 1}'
        with pytest.raises(TraceFormatError):
            parse_jsonl(header + "\n[0.0]")
        with pytest.raises(TraceFormatError):
            # Unknown category name.
            parse_jsonl(header + '\n[0.0,"r0","warp","x",0,null]')
        with pytest.raises(TraceFormatError):
            # Declared count mismatch.
            parse_jsonl('{"repro_trace": 1, "records": 5}'
                        '\n[0.0,"r0","view","enter",0,null]')

    def test_chrome_trace_is_perfetto_loadable_shape(self):
        records = self._records()
        doc = to_chrome_trace(records)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        events = doc["traceEvents"]
        assert events, "no events exported"
        phases = {e["ph"] for e in events}
        assert phases <= {"M", "X", "i"}
        for event in events:
            assert isinstance(event["pid"], int)
            assert isinstance(event["ts"], (int, float))
            if event["ph"] == "X":
                assert event["dur"] > 0
            if event["ph"] == "i":
                assert event["s"] in ("t", "g", "p")
        # Every replica has a process-name metadata record.
        named = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert {r.replica for r in records} == named
        # The whole document is valid JSON.
        json.loads(json.dumps(doc))

    def test_view_spans_well_formed_after_wraparound(self):
        with tracing(capacity=64) as tracer:
            run_experiment(small_config(runtime=0.5))
        spans = view_spans(tracer.records())
        assert spans
        for replica_spans in spans.values():
            for span in replica_spans:
                assert span["end"] >= span["start"]
                assert span["outcome"] in ("committed", "timeout", "idle")

    def test_text_timeline_one_line_per_record(self):
        records = self._records()
        assert len(to_text(records).splitlines()) == len(records)

    def test_svg_timeline_renders(self):
        with tracing() as tracer:
            ScenarioRunner(small_config(), crash_scenario()).run()
        svg = render_view_timeline(tracer.records())
        assert svg.startswith("<svg") and svg.rstrip().endswith("</svg>")
        assert "#009E73" in svg  # at least one committed view lane
        assert "crash-replica" in svg  # fault rule is labelled


# ----------------------------------------------------------------------
# sink registry
# ----------------------------------------------------------------------
class TestSinks:
    def test_builtin_sinks_registered(self):
        names = available_trace_sinks()
        for expected in ("jsonl", "perfetto", "text", "svg"):
            assert expected in names
        assert "trace_sinks" in api.available()
        assert "jsonl" in api.available("trace_sinks")

    def test_custom_sink_round_trip(self, tmp_path):
        @register_trace_sink("count-only-test")
        def count_sink(records, path):
            from pathlib import Path

            path = Path(path)
            path.write_text(str(len(records)))
            return path

        tracer = Tracer()
        tracer.emit(0.0, "r0", obs_trace.VIEW, "enter", 1)
        out = write_trace(tracer.records(), tmp_path / "n.txt",
                          sink="count-only-test")
        assert out.read_text() == "1"


# ----------------------------------------------------------------------
# api.trace
# ----------------------------------------------------------------------
class TestApiTrace:
    def test_returns_traced_run_and_writes_out(self, tmp_path):
        out = tmp_path / "run.jsonl"
        traced = api.trace(small_config(runtime=0.4), out=out)
        assert obs_trace.ACTIVE is None
        assert traced.result.consistent
        assert len(traced.records()) > 0
        header, parsed = validate_jsonl(out)
        assert header["records"] == len(traced.records())
        assert traced.metrics.merged_histogram("request_to_commit").count > 0

    def test_scenario_and_category_filter(self):
        traced = api.trace(
            small_config(runtime=0.7),
            scenario={"events": [
                {"kind": "crash-replica", "at": 0.3, "replica": "last"}]},
            categories=("fault", "view"),
        )
        categories = {r.category for r in traced.records()}
        assert categories <= {"fault", "view"}
        assert "fault" in categories


# ----------------------------------------------------------------------
# metrics layer
# ----------------------------------------------------------------------
class TestMetrics:
    def test_log_histogram_buckets_and_quantile(self):
        hist = LogHistogram()
        for value in (0.001, 0.001, 0.002, 0.5):
            hist.observe(value)
        assert hist.count == 4
        assert hist.min == 0.001 and hist.max == 0.5
        # Median bucket upper bound is within a factor of two of the value.
        assert 0.001 <= hist.quantile(0.5) <= 0.004
        with pytest.raises(ValueError):
            hist.observe(-1.0)

    def test_obs_metrics_to_dict_sorted(self):
        metrics = ObsMetrics()
        metrics.inc("r1", "b")
        metrics.inc("r0", "a")
        metrics.observe("r0", "lat", 0.5)
        data = metrics.to_dict()
        assert list(data["counters"]) == ["r0/a", "r1/b"]
        assert data["histograms"]["r0/lat"]["count"] == 1

    def test_campaign_progress_with_fake_clock(self):
        now = [0.0]
        lines = []
        progress = CampaignProgress(
            total=4, emit=lines.append, clock=lambda: now[0]
        )
        progress.start("a")
        progress.start("b")
        now[0] = 1.0
        progress.finish("a")
        now[0] = 2.0
        progress.finish("b")
        assert progress.done == 2
        assert progress.rate() == pytest.approx(1.0)
        assert progress.eta_seconds() == pytest.approx(2.0)
        assert lines[-1].startswith("campaign: 2/4 done")
        # A run far older than the median duration is flagged.
        progress.start("slowpoke")
        now[0] = 50.0
        assert progress.stragglers() == ["slowpoke"]
        assert "slowpoke" in progress.render()

    def test_campaign_runner_reports_progress(self, tmp_path):
        lines = []
        progress = CampaignProgress(total=0, emit=lines.append)
        spec = api.grid(small_config(runtime=0.3), name="obs_progress",
                        seed=[11, 12])
        result = api.campaign(spec, progress=progress)
        assert result.executed == 2
        assert progress.total == 2  # runner re-binds total to pending count
        assert progress.done == 2
        assert len(lines) == 2


# ----------------------------------------------------------------------
# fuzz violation trace bundling
# ----------------------------------------------------------------------
class TestFuzzTraceBundling:
    def test_violation_bundles_trace(self, tmp_path):
        from repro.fuzz import ORACLES, run_fuzz

        name = "obs-always-fails"
        if name not in ORACLES.available():
            @ORACLES.register(name)
            def _always(ctx):
                return ["forced violation (test_obs)"]

        report = run_fuzz(budget=1, seed=0, artifacts=str(tmp_path),
                          shrink=False, oracles=[name])
        assert not report.ok
        outcome = report.failures[0]
        assert outcome.trace_artifact is not None
        assert obs_trace.ACTIVE is None
        header, records = validate_jsonl(outcome.trace_artifact)
        assert len(records) > 0
        document = json.loads(open(outcome.artifact).read())
        assert document["trace_artifact"] == outcome.trace_artifact
        assert report.to_dict()["violations"][0]["trace_artifact"] == (
            outcome.trace_artifact
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestTraceCli:
    def _write_config(self, tmp_path):
        path = tmp_path / "config.json"
        path.write_text(json.dumps({
            "num_nodes": 4, "runtime": 0.4, "warmup": 0.1, "cooldown": 0.1,
            "seed": 11, "cost_profile": "fast", "block_size": 20,
            "concurrency": 8, "num_clients": 2, "view_timeout": 0.05,
            "mempool_capacity": 200,
        }))
        return path

    def test_run_trace_out_then_summarize(self, tmp_path, capsys):
        config = self._write_config(tmp_path)
        out = tmp_path / "t.jsonl"
        assert main(["run", str(config), "--trace-out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert f"trace: {out}" in stdout
        assert out.exists()
        assert obs_trace.ACTIVE is None

        assert main(["trace", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "valid trace:" in stdout
        assert any(line.startswith("records: ") for line in stdout.splitlines())

    def test_trace_convert_formats(self, tmp_path, capsys):
        config = self._write_config(tmp_path)
        out = tmp_path / "t.jsonl"
        main(["run", str(config), "--trace-out", str(out)])
        capsys.readouterr()

        perfetto = tmp_path / "t.perfetto.json"
        assert main(["trace", str(out), "-f", "perfetto",
                     "-o", str(perfetto)]) == 0
        doc = json.loads(perfetto.read_text())
        assert doc["traceEvents"]

        svg = tmp_path / "t.svg"
        assert main(["trace", str(out), "-f", "svg", "-o", str(svg)]) == 0
        assert svg.read_text().startswith("<svg")
        capsys.readouterr()

    def test_trace_rejects_invalid_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("this is not a trace\n")
        assert main(["trace", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err
