"""Unit tests for leader election and quorum tracking."""

import pytest

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.election.election import (
    HashBasedElection,
    RoundRobinElection,
    StaticLeaderElection,
    make_election,
)
from repro.quorum.quorum import QuorumTracker, TimeoutTracker, max_faulty, quorum_size
from repro.types.certificates import Timeout, timeout_digest

from helpers import build_certified_chain, make_vote


NODES = ["r0", "r1", "r2", "r3"]


class TestElection:
    def test_round_robin_rotates(self):
        election = RoundRobinElection(NODES)
        assert [election.leader(v) for v in range(1, 6)] == ["r1", "r2", "r3", "r0", "r1"]

    def test_round_robin_is_leader(self):
        election = RoundRobinElection(NODES)
        assert election.is_leader("r1", 1)
        assert not election.is_leader("r0", 1)

    def test_static_leader_never_changes(self):
        election = StaticLeaderElection(NODES, master="r2")
        assert all(election.leader(v) == "r2" for v in range(20))

    def test_static_leader_must_be_a_node(self):
        with pytest.raises(ValueError):
            StaticLeaderElection(NODES, master="r9")

    def test_hash_election_is_deterministic(self):
        a = HashBasedElection(NODES, seed=3)
        b = HashBasedElection(NODES, seed=3)
        assert [a.leader(v) for v in range(50)] == [b.leader(v) for v in range(50)]

    def test_hash_election_spreads_leadership(self):
        election = HashBasedElection(NODES, seed=3)
        leaders = {election.leader(v) for v in range(100)}
        assert leaders == set(NODES)

    def test_hash_election_seed_changes_schedule(self):
        a = [HashBasedElection(NODES, seed=1).leader(v) for v in range(50)]
        b = [HashBasedElection(NODES, seed=2).leader(v) for v in range(50)]
        assert a != b

    def test_make_election_master_takes_precedence(self):
        election = make_election(NODES, master="r3", kind="hash")
        assert isinstance(election, StaticLeaderElection)

    def test_make_election_kinds(self):
        assert isinstance(make_election(NODES), RoundRobinElection)
        assert isinstance(make_election(NODES, kind="hash"), HashBasedElection)
        with pytest.raises(ValueError):
            make_election(NODES, kind="lottery")

    def test_empty_node_list_rejected(self):
        with pytest.raises(ValueError):
            RoundRobinElection([])


class TestQuorumSizes:
    def test_max_faulty(self):
        assert max_faulty(4) == 1
        assert max_faulty(8) == 2
        assert max_faulty(32) == 10
        assert max_faulty(1) == 0

    def test_quorum_size(self):
        assert quorum_size(4) == 3
        assert quorum_size(7) == 5
        assert quorum_size(8) == 6
        assert quorum_size(32) == 22

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            max_faulty(0)


class TestQuorumTracker:
    def setup_method(self):
        self.registry = KeyRegistry()
        self.forest, self.blocks = build_certified_chain([1])
        self.block = self.blocks[0]

    def test_qc_forms_at_threshold(self):
        tracker = QuorumTracker(4, self.registry)
        qc = None
        for voter in ["r0", "r1", "r2"]:
            qc = tracker.add_and_certify(make_vote(self.registry, voter, self.block))
        assert qc is not None
        assert qc.block_id == self.block.block_id
        assert len(qc.signers) == 3

    def test_no_qc_below_threshold(self):
        tracker = QuorumTracker(4, self.registry)
        for voter in ["r0", "r1"]:
            assert tracker.add_and_certify(make_vote(self.registry, voter, self.block)) is None

    def test_duplicate_votes_do_not_count(self):
        tracker = QuorumTracker(4, self.registry)
        vote = make_vote(self.registry, "r0", self.block)
        tracker.voted(vote)
        assert not tracker.voted(vote)
        assert tracker.vote_count(self.block.view, self.block.block_id) == 1
        assert tracker.duplicate_votes == 1

    def test_qc_is_emitted_only_once(self):
        tracker = QuorumTracker(4, self.registry)
        for voter in ["r0", "r1", "r2"]:
            tracker.voted(make_vote(self.registry, voter, self.block))
        assert tracker.certified(self.block.view, self.block.block_id) is not None
        assert tracker.certified(self.block.view, self.block.block_id) is None

    def test_extra_votes_after_qc_do_not_reissue(self):
        tracker = QuorumTracker(4, self.registry)
        for voter in ["r0", "r1", "r2"]:
            tracker.add_and_certify(make_vote(self.registry, voter, self.block))
        assert tracker.add_and_certify(make_vote(self.registry, "r3", self.block)) is None

    def test_invalid_signature_rejected(self):
        tracker = QuorumTracker(4, self.registry)
        vote = make_vote(self.registry, "r0", self.block)
        tampered = type(vote)(
            voter="r1",
            block_id=vote.block_id,
            view=vote.view,
            signature=vote.signature,
        )
        self.registry.register("r1")
        assert not tracker.voted(tampered)
        assert tracker.invalid_votes == 1

    def test_votes_for_different_blocks_are_separate(self):
        forest, blocks = build_certified_chain([1, 2])
        tracker = QuorumTracker(4, self.registry)
        for voter in ["r0", "r1"]:
            tracker.voted(make_vote(self.registry, voter, blocks[0]))
        tracker.voted(make_vote(self.registry, "r2", blocks[1]))
        assert tracker.certified(blocks[0].view, blocks[0].block_id) is None


class TestTimeoutTracker:
    def _timeout(self, registry, voter, view):
        keypair = registry.register(voter)
        return Timeout(
            voter=voter,
            view=view,
            high_qc_view=view - 1,
            signature=sign(keypair, timeout_digest(view)),
        )

    def test_tc_forms_at_threshold(self):
        registry = KeyRegistry()
        tracker = TimeoutTracker(4, registry)
        tc = None
        for voter in ["r0", "r1", "r2"]:
            tc = tracker.add_and_certify(self._timeout(registry, voter, view=5))
        assert tc is not None
        assert tc.view == 5
        assert tc.high_qc_view == 4

    def test_duplicates_do_not_count(self):
        registry = KeyRegistry()
        tracker = TimeoutTracker(4, registry)
        timeout = self._timeout(registry, "r0", view=5)
        assert tracker.record(timeout)
        assert not tracker.record(timeout)
        assert tracker.timeout_count(5) == 1

    def test_tc_only_once_per_view(self):
        registry = KeyRegistry()
        tracker = TimeoutTracker(4, registry)
        for voter in ["r0", "r1", "r2"]:
            tracker.add_and_certify(self._timeout(registry, voter, view=5))
        assert tracker.add_and_certify(self._timeout(registry, "r3", view=5)) is None

    def test_views_tracked_independently(self):
        registry = KeyRegistry()
        tracker = TimeoutTracker(4, registry)
        tracker.record(self._timeout(registry, "r0", view=5))
        tracker.record(self._timeout(registry, "r1", view=6))
        assert tracker.timeout_count(5) == 1
        assert tracker.timeout_count(6) == 1

    def test_invalid_signature_rejected(self):
        registry = KeyRegistry()
        tracker = TimeoutTracker(4, registry)
        good = self._timeout(registry, "r0", view=5)
        registry.register("r1")
        forged = Timeout(voter="r1", view=5, high_qc_view=0, signature=good.signature)
        assert not tracker.record(forged)
        assert tracker.invalid_timeouts == 1
