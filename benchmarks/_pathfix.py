"""Path shim: make benchmark modules runnable from any working directory.

``python benchmarks/bench_fig9_block_sizes.py`` puts ``benchmarks/`` on
``sys.path`` (so ``import _pathfix`` and ``from common import ...`` always
resolve) but not ``src/`` — historically the scripts only worked with
``PYTHONPATH=src`` exported.  Importing this module first fixes that: it
prepends the repository's ``src/`` (and ``benchmarks/`` itself, for pytest
runs rooted elsewhere) so every invocation style works from the repo root,
from inside ``benchmarks/``, or from anywhere else.
"""

import sys
from pathlib import Path

_BENCHMARKS_DIR = Path(__file__).resolve().parent

for _entry in (str(_BENCHMARKS_DIR), str(_BENCHMARKS_DIR.parent / "src")):
    if _entry not in sys.path:
        sys.path.insert(0, _entry)
