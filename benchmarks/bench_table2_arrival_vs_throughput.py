"""Table II — transaction arrival rate vs. observed throughput (HotStuff).

The paper drives HotStuff (4 replicas, block size 400) with open-loop clients
at increasing arrival rates and reports that the throughput observed on the
blockchain tracks the arrival rate until the system saturates.  This bench
repeats the sweep with Poisson clients; the expected property is
``throughput ≈ arrival rate`` for every rate below the saturation knee.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    protocol="hotstuff",
    num_nodes=4,
    block_size=400,
    payload_size=0,
    num_clients=2,
    runtime=1.5,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=0.5,
    mempool_capacity=4000,
    seed=11,
)

CI_RATES = [500.0, 1000.0, 2000.0, 3000.0]
FULL_RATES = [500.0, 1000.0, 1500.0, 2000.0, 2500.0, 3000.0, 3500.0]


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """The whole Table II sweep as one declarative grid."""
    rates = FULL_RATES if scale == "full" else CI_RATES
    return api.grid(BASE_CONFIG, name="table2_arrival_vs_throughput",
                    repetitions=reps, arrival_rate=rates)


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Sweep arrival rates and report observed throughput per rate."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        rate = record["params"]["arrival_rate"]
        metrics = record["metrics"]
        rows.append(
            {
                "arrival_rate_tps": rate,
                "throughput_tps": metrics["throughput_tps"],
                "ratio": metrics["throughput_tps"] / rate,
                "mean_latency_ms": metrics["mean_latency"] * 1e3,
            }
        )
    return collapse_rows(rows, ["arrival_rate_tps"], reps)


def test_benchmark_table2(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "table2_arrival_vs_throughput",
        "Table II: arrival rate vs. transaction throughput (HotStuff, 4 replicas, bsize 400)",
        rows,
        ["arrival_rate_tps", "throughput_tps", "ratio", "mean_latency_ms"],
    )
    # The paper's observation: observed throughput tracks the arrival rate
    # (within a few percent) below saturation.
    below_saturation = rows[:-1]
    assert all(0.85 <= row["ratio"] <= 1.15 for row in below_saturation)


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "table2_arrival_vs_throughput",
        "Table II: arrival rate vs. transaction throughput (HotStuff, 4 replicas, bsize 400)",
        rows,
        ["arrival_rate_tps", "throughput_tps", "ratio", "mean_latency_ms"],
    )


if __name__ == "__main__":
    main()
