"""Shared plumbing for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section.  Each module exposes:

* ``run(scale)`` — runs the experiment sweep and returns a list of result
  rows (dicts);
* a ``test_benchmark_*`` function that wires ``run`` into pytest-benchmark
  (one round — a "run" here is a whole simulation campaign, not a
  micro-benchmark);
* ``main()`` — runs the sweep at full scale and prints the paper-style table.

Scales
------
``ci`` (default)
    Reduced parameter grids sized so the whole benchmark suite finishes in
    minutes on a laptop.  The qualitative shapes (protocol ordering, curve
    knees, attack degradation) are preserved.
``full``
    The paper-sized grids (64-node scalability, 0-10 Byzantine nodes, long
    responsiveness timeline).  Select by setting ``REPRO_BENCH_SCALE=full``.

Simulated vs. paper numbers: the simulator charges millisecond-scale CPU
costs (see ``repro.bench.profiles``), so absolute Tx/s are a few thousand
rather than the paper's tens of thousands; EXPERIMENTS.md compares shapes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """The benchmark scale: "ci" (default) or "full" via REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "ci").lower()
    return "full" if scale == "full" else "ci"


def format_table(title: str, rows: List[Dict], columns: Iterable[str]) -> str:
    """Render rows as a fixed-width text table."""
    columns = list(columns)
    widths = {c: max(len(c), *(len(_fmt(r.get(c))) for r in rows)) if rows else len(c) for c in columns}
    lines = [title, "-" * len(title)]
    lines.append("  ".join(c.ljust(widths[c]) for c in columns))
    for row in rows:
        lines.append("  ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def report(name: str, title: str, rows: List[Dict], columns: Iterable[str]) -> str:
    """Print the table and save it under benchmarks/results/."""
    table = format_table(title, rows, columns)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    return table


def _fmt(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
