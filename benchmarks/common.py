"""Shared plumbing for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section.  Each module exposes:

* a spec builder — the whole sweep declared as one
  :class:`repro.experiments.ExperimentSpec` (base config + axes + tags);
* ``run(scale)`` — runs the spec as a campaign (:func:`campaign_records`)
  and formats the records into result rows (dicts);
* a ``test_benchmark_*`` function that wires ``run`` into pytest-benchmark
  (one round — a "run" here is a whole simulation campaign, not a
  micro-benchmark);
* ``main()`` — runs the campaign at full scale and prints the paper-style
  table.

Campaigns run serially by default; set ``REPRO_BENCH_WORKERS=N`` to fan the
runs of each figure out over N worker processes (records are bit-identical
either way), and ``REPRO_BENCH_STORE=dir`` to persist/resume them through a
:class:`repro.experiments.ResultStore`.

Repetitions & error bars
------------------------
Every module's ``main()`` accepts ``--reps N`` (default
``REPRO_BENCH_REPS`` or 1): the spec is expanded with N seed-incremented
repetitions per point, the per-repetition rows are collapsed through
:func:`repro.analysis.stats.aggregate_rows`, and the printed table gains
``<metric>_ci95`` columns (95% Student-t half-widths).  Rendering the same
runs as the paper's figures is the ``plot`` side of the analysis subsystem:
persist with ``REPRO_BENCH_STORE=dir`` and run ``python -m repro plot -s
dir``.

Scales
------
``ci`` (default)
    Reduced parameter grids sized so the whole benchmark suite finishes in
    minutes on a laptop.  The qualitative shapes (protocol ordering, curve
    knees, attack degradation) are preserved.
``full``
    The paper-sized grids (64-node scalability, 0-10 Byzantine nodes, long
    responsiveness timeline).  Select by setting ``REPRO_BENCH_SCALE=full``.

Simulated vs. paper numbers: the simulator charges millisecond-scale CPU
costs (see ``repro.bench.profiles``), so absolute Tx/s are a few thousand
rather than the paper's tens of thousands; ``docs/EXPERIMENTS.md`` compares
shapes.
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

import _pathfix  # noqa: F401  (src/ on sys.path regardless of CWD)

from repro import api
from repro.analysis.report import format_table as render_table
from repro.analysis.stats import aggregate_rows

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """The benchmark scale: "ci" (default) or "full" via REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "ci").lower()
    return "full" if scale == "full" else "ci"


def bench_workers() -> int:
    """Worker processes per campaign (REPRO_BENCH_WORKERS, default 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def bench_reps() -> int:
    """Repetitions per point (REPRO_BENCH_REPS, default 1 = no error bars)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_REPS", "1")))
    except ValueError:
        return 1


def bench_store():
    """The shared result store (REPRO_BENCH_STORE names a dir), or None."""
    root = os.environ.get("REPRO_BENCH_STORE", "")
    return api.ResultStore(root) if root else None


def campaign_records(spec) -> List[Dict]:
    """Run one figure's spec as a campaign and return its records in order."""
    return api.campaign(spec, workers=bench_workers(), store=bench_store()).records


def collapse_rows(rows: List[Dict], keys: Sequence[str], reps: int) -> List[Dict]:
    """Collapse per-repetition rows into mean rows with ``_ci95`` columns.

    A no-op for single-repetition runs, so the committed CI tables (and the
    ``test_benchmark_*`` assertions on raw rows) are untouched.
    """
    if reps <= 1:
        return rows
    return aggregate_rows(rows, keys=keys)


def with_ci(columns: Iterable[str], rows: List[Dict]) -> List[str]:
    """The column list with each present ``<metric>_ci95`` companion spliced
    in after its metric (plus ``reps``) — for collapsed repetition rows."""
    present = set().union(*(row.keys() for row in rows)) if rows else set()
    expanded: List[str] = []
    for column in columns:
        expanded.append(column)
        if f"{column}_ci95" in present:
            expanded.append(f"{column}_ci95")
    if "reps" in present and "reps" not in expanded:
        expanded.append("reps")
    return expanded


def bench_args(argv: Optional[Sequence[str]] = None) -> argparse.Namespace:
    """The shared ``main()`` argument parser for every benchmark module.

    ``--scale`` defaults to "full" (a module run by hand reproduces the
    paper-sized figure) and ``--reps`` to ``REPRO_BENCH_REPS`` or 1; pass
    ``--reps 5`` for seed-incremented repetitions with 95%-CI error columns.
    """
    parser = argparse.ArgumentParser(description="Reproduce one paper figure.")
    parser.add_argument("--scale", choices=["ci", "full"], default="full",
                        help="grid size: paper-sized (default) or the CI grid")
    parser.add_argument("--reps", type=int, default=bench_reps(), metavar="N",
                        help="repetitions per point (error bars across seeds)")
    args = parser.parse_args(argv)
    args.reps = max(1, args.reps)
    return args


def format_table(title: str, rows: List[Dict], columns: Iterable[str]) -> str:
    """Render rows as a fixed-width text table (title + the shared
    :mod:`repro.analysis.report` renderer)."""
    return "\n".join([title, "-" * len(title), render_table(rows, columns)])


def report(name: str, title: str, rows: List[Dict], columns: Iterable[str]) -> str:
    """Print the table and save it under benchmarks/results/.

    Collapsed repetition runs (``--reps N``: rows carry ``_ci95`` columns)
    save to ``<name>_ci95.txt`` so they never clobber the committed
    canonical ``<name>.txt`` tables.
    """
    columns = with_ci(columns, rows)
    table = format_table(title, rows, columns)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    stem = name if not any(c.endswith("_ci95") for c in columns) else f"{name}_ci95"
    (RESULTS_DIR / f"{stem}.txt").write_text(table + "\n")
    return table


