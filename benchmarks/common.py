"""Shared plumbing for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper's
evaluation section.  Each module exposes:

* a spec builder — the whole sweep declared as one
  :class:`repro.experiments.ExperimentSpec` (base config + axes + tags);
* ``run(scale)`` — runs the spec as a campaign (:func:`campaign_records`)
  and formats the records into result rows (dicts);
* a ``test_benchmark_*`` function that wires ``run`` into pytest-benchmark
  (one round — a "run" here is a whole simulation campaign, not a
  micro-benchmark);
* ``main()`` — runs the campaign at full scale and prints the paper-style
  table.

Campaigns run serially by default; set ``REPRO_BENCH_WORKERS=N`` to fan the
runs of each figure out over N worker processes (records are bit-identical
either way), and ``REPRO_BENCH_STORE=dir`` to persist/resume them through a
:class:`repro.experiments.ResultStore`.

Scales
------
``ci`` (default)
    Reduced parameter grids sized so the whole benchmark suite finishes in
    minutes on a laptop.  The qualitative shapes (protocol ordering, curve
    knees, attack degradation) are preserved.
``full``
    The paper-sized grids (64-node scalability, 0-10 Byzantine nodes, long
    responsiveness timeline).  Select by setting ``REPRO_BENCH_SCALE=full``.

Simulated vs. paper numbers: the simulator charges millisecond-scale CPU
costs (see ``repro.bench.profiles``), so absolute Tx/s are a few thousand
rather than the paper's tens of thousands; ``docs/EXPERIMENTS.md`` compares
shapes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List

import _pathfix  # noqa: F401  (src/ on sys.path regardless of CWD)

from repro import api
from repro.experiments.cli import format_table as render_table

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> str:
    """The benchmark scale: "ci" (default) or "full" via REPRO_BENCH_SCALE."""
    scale = os.environ.get("REPRO_BENCH_SCALE", "ci").lower()
    return "full" if scale == "full" else "ci"


def bench_workers() -> int:
    """Worker processes per campaign (REPRO_BENCH_WORKERS, default 1)."""
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1


def bench_store():
    """The shared result store (REPRO_BENCH_STORE names a dir), or None."""
    root = os.environ.get("REPRO_BENCH_STORE", "")
    return api.ResultStore(root) if root else None


def campaign_records(spec) -> List[Dict]:
    """Run one figure's spec as a campaign and return its records in order."""
    return api.campaign(spec, workers=bench_workers(), store=bench_store()).records


def format_table(title: str, rows: List[Dict], columns: Iterable[str]) -> str:
    """Render rows as a fixed-width text table (title + the CLI renderer)."""
    return "\n".join([title, "-" * len(title), render_table(rows, columns)])


def report(name: str, title: str, rows: List[Dict], columns: Iterable[str]) -> str:
    """Print the table and save it under benchmarks/results/."""
    table = format_table(title, rows, columns)
    print("\n" + table)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(table + "\n")
    return table


