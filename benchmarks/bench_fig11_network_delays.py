"""Figure 11 — throughput vs. latency with additional network delay 0 / 5 / 10 ms.

The paper injects additional inter-replica delay (5ms ± 1ms and 10ms ± 2ms).
Reproduction criteria: latency rises by roughly the injected round-trip for
every protocol, throughput falls, and Streamlet's relative disadvantage
shrinks as the propagation delay starts to dominate the echo overhead
(comparable to 2CHS at the 10 ms setting).
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    num_nodes=4,
    block_size=400,
    payload_size=128,
    num_clients=2,
    runtime=1.2,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=0.5,
    mempool_capacity=4000,
    seed=23,
)

PROTOCOLS = [("HS", "hotstuff"), ("2CHS", "2chainhs"), ("SL", "streamlet")]
#: (label, one-way mean delay, one-way stddev) — the paper quotes RTT-ish
#: figures of 5ms±1ms and 10ms±2ms; one-way halves are injected on each hop.
CI_DELAYS = [("d0", 0.0, 0.0), ("d10", 5e-3, 1e-3)]
FULL_DELAYS = [("d0", 0.0, 0.0), ("d5", 2.5e-3, 0.5e-3), ("d10", 5e-3, 1e-3)]
CI_LEVELS = [50, 400]
FULL_LEVELS = [25, 50, 100, 200, 400, 800]


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """Every (protocol, added delay, concurrency) point as one campaign."""
    delays = FULL_DELAYS if scale == "full" else CI_DELAYS
    levels = FULL_LEVELS if scale == "full" else CI_LEVELS
    points = [
        {
            "_series": f"{label}-{delay_label}",
            "protocol": protocol,
            "extra_delay_mean": mean,
            "extra_delay_stddev": stddev,
            "concurrency": int(level),
        }
        for label, protocol in PROTOCOLS
        for delay_label, mean, stddev in delays
        for level in levels
    ]
    return api.ExperimentSpec(
        name="fig11_network_delays", base=BASE_CONFIG, points=points, repetitions=reps
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Sweep concurrency for every protocol / added delay pair."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        rows.append(
            {
                "series": record["params"]["_series"],
                "concurrency": record["config"]["concurrency"],
                "throughput_tps": record["metrics"]["throughput_tps"],
                "latency_ms": record["metrics"]["mean_latency"] * 1e3,
            }
        )
    return collapse_rows(rows, ["series", "concurrency"], reps)


def _low_load_latency(rows, series):
    candidates = [r for r in rows if r["series"] == series]
    return min(candidates, key=lambda r: r["concurrency"])["latency_ms"]


def test_benchmark_fig11(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig11_network_delays",
        "Figure 11: throughput vs. latency under added network delay (bsize 400, p128)",
        rows,
        ["series", "concurrency", "throughput_tps", "latency_ms"],
    )
    # Added delay raises latency for every protocol.
    for label in ("HS", "2CHS", "SL"):
        assert _low_load_latency(rows, f"{label}-d10") > _low_load_latency(rows, f"{label}-d0")
    # Streamlet's latency penalty relative to 2CHS shrinks once propagation
    # delay dominates.
    ratio_near = _low_load_latency(rows, "SL-d0") / _low_load_latency(rows, "2CHS-d0")
    ratio_far = _low_load_latency(rows, "SL-d10") / _low_load_latency(rows, "2CHS-d10")
    assert ratio_far <= ratio_near + 0.05


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig11_network_delays",
        "Figure 11: throughput vs. latency under added network delay (bsize 400, p128)",
        rows,
        ["series", "concurrency", "throughput_tps", "latency_ms"],
    )


if __name__ == "__main__":
    main()
