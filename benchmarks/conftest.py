"""Pytest configuration for the benchmark harness."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))

import _pathfix  # noqa: E402,F401  (also puts the repo's src/ on sys.path)
