"""Figure 8 — analytical model vs. implementation (HS, 2CHS, SL).

The paper validates the Bamboo implementations against the queuing model of
§V on four (cluster size / block size) configurations, plotting latency vs.
throughput for both.  This bench runs the same comparison: for each
configuration and protocol it sweeps open-loop arrival rates, measures the
simulator's latency, asks the analytical model for its prediction at the same
rate, and reports both.  The reproduction criterion is that the model tracks
the implementation: low-load latencies within a modest factor and the same
saturation ordering.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api
from repro.model.predictions import AnalyticalModel, ModelParameters

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

PROTOCOLS = ["hotstuff", "2chainhs", "streamlet"]

BASE_CONFIG = api.Configuration(
    num_nodes=4,
    block_size=400,
    payload_size=0,
    num_clients=2,
    runtime=1.2,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=0.5,
    mempool_capacity=4000,
    seed=13,
)

CI_CONFIGS = [(4, 100), (4, 400)]
FULL_CONFIGS = [(4, 100), (8, 100), (4, 400), (8, 400)]
CI_LOAD_FRACTIONS = [0.2, 0.5, 0.8]
FULL_LOAD_FRACTIONS = [0.1, 0.3, 0.5, 0.7, 0.9]


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """One point per (configuration, protocol, load fraction), with the
    model's prediction at that rate carried along as a tag."""
    configs = FULL_CONFIGS if scale == "full" else CI_CONFIGS
    fractions = FULL_LOAD_FRACTIONS if scale == "full" else CI_LOAD_FRACTIONS
    points = []
    for num_nodes, block_size in configs:
        for protocol in PROTOCOLS:
            config = BASE_CONFIG.replace(
                protocol=protocol, num_nodes=num_nodes, block_size=block_size
            )
            model = AnalyticalModel(protocol, ModelParameters.from_configuration(config))
            saturation = model.saturation_rate()
            for fraction in fractions:
                rate = fraction * saturation
                points.append(
                    {
                        "_config": f"{num_nodes}/{block_size}",
                        "_model_ms": model.latency(rate) * 1e3,
                        "protocol": protocol,
                        "num_nodes": num_nodes,
                        "block_size": block_size,
                        "arrival_rate": rate,
                    }
                )
    return api.ExperimentSpec(
        name="fig8_model_vs_implementation", base=BASE_CONFIG, points=points,
        repetitions=reps,
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Compare measured and predicted latency across configurations."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        params = record["params"]
        metrics = record["metrics"]
        rows.append(
            {
                "config": params["_config"],
                "protocol": params["protocol"],
                "arrival_tps": params["arrival_rate"],
                "measured_ms": metrics["mean_latency"] * 1e3,
                "model_ms": params["_model_ms"],
                "measured_tput": metrics["throughput_tps"],
            }
        )
    # model_ms is deterministic per point, so it stays a grouping key.
    return collapse_rows(rows, ["config", "protocol", "arrival_tps", "model_ms"], reps)


def test_benchmark_fig8(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig8_model_vs_implementation",
        "Figure 8: model vs. implementation (latency in ms at increasing arrival rates)",
        rows,
        ["config", "protocol", "arrival_tps", "measured_ms", "model_ms", "measured_tput"],
    )
    # Model and implementation should agree at low load (the paper's curves
    # overlap; our tolerance is a factor of three because the M/D/1 term
    # grows somewhat faster than the simulator's bounded mempool queue).
    for (config_key, protocol) in {(r["config"], r["protocol"]) for r in rows}:
        series = [r for r in rows if r["config"] == config_key and r["protocol"] == protocol]
        lowest = min(series, key=lambda r: r["arrival_tps"])
        assert lowest["measured_ms"] <= 4.0 * lowest["model_ms"]
        assert lowest["model_ms"] <= 4.0 * lowest["measured_ms"]


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig8_model_vs_implementation",
        "Figure 8: model vs. implementation (latency in ms at increasing arrival rates)",
        rows,
        ["config", "protocol", "arrival_tps", "measured_ms", "model_ms", "measured_tput"],
    )


if __name__ == "__main__":
    main()
