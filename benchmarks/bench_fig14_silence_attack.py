"""Figure 14 — the silence attack: throughput, latency, CGR, BI vs. Byzantine count.

The paper runs 32 replicas with a 50 ms view timeout and raises the number of
silent Byzantine leaders from 0 to 10.  Reproduction criteria:

* every protocol's throughput falls as more leaders stay silent;
* HotStuff and two-chain HotStuff lose chain growth alike (the block before
  a silent view loses its certificate and is overwritten);
* Streamlet's chain growth rate stays at 1 (broadcast votes mean no QC is
  ever lost), so it degrades gracefully;
* block intervals grow faster than under the forking attack.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    strategy="silence",
    block_size=400,
    payload_size=128,
    num_clients=2,
    concurrency=400,
    runtime=1.5,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    # The paper uses a 50 ms timeout against ~10 ms happy-path views; the
    # scaled cost profile makes a view take ~50 ms (HS/2CHS) or several
    # hundred ms (Streamlet's echoes), so the timeouts below keep the same
    # "several times the happy-path view" ratio per protocol.
    view_timeout=0.25,
    election="hash",
    request_timeout=1.5,
    mempool_capacity=4000,
    seed=37,
)

STREAMLET_VIEW_TIMEOUT = 0.4
STREAMLET_RUNTIME = 3.0

PROTOCOLS = [("HS", "hotstuff"), ("2CHS", "2chainhs"), ("SL", "streamlet")]
CI_SETUP = {"nodes": 16, "byz_counts": [0, 4], "sl_nodes": 4, "sl_byz": [0, 1]}
FULL_SETUP = {"nodes": 32, "byz_counts": [0, 2, 4, 6, 8, 10], "sl_nodes": 32, "sl_byz": [0, 2, 4, 6, 8, 10]}


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """One point per protocol and silent-leader count (SL gets its own timing)."""
    setup = FULL_SETUP if scale == "full" else CI_SETUP
    points = []
    for label, protocol in PROTOCOLS:
        nodes = setup["sl_nodes"] if label == "SL" else setup["nodes"]
        byz_counts = setup["sl_byz"] if label == "SL" else setup["byz_counts"]
        for byz in byz_counts:
            point = {
                "_label": label,
                "protocol": protocol,
                "num_nodes": nodes,
                "byzantine_nodes": byz,
            }
            if label == "SL":
                # Streamlet's echoes make its happy-path view several times
                # longer under the scaled cost profile; keep the timeout a
                # small multiple of the view and measure a longer window so
                # silent-leader stalls do not consume the whole run.
                point["view_timeout"] = STREAMLET_VIEW_TIMEOUT
                point["runtime"] = STREAMLET_RUNTIME
            points.append(point)
    return api.ExperimentSpec(
        name="fig14_silence_attack", base=BASE_CONFIG, points=points, repetitions=reps
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Measure the four metrics as the number of silent leaders grows."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        metrics = record["metrics"]
        rows.append(
            {
                "protocol": record["params"]["_label"],
                "nodes": record["config"]["num_nodes"],
                "byzantine": record["config"]["byzantine_nodes"],
                "throughput_tps": metrics["throughput_tps"],
                "latency_ms": metrics["mean_latency"] * 1e3,
                "cgr": metrics["chain_growth_rate"],
                "block_interval": metrics["block_interval"],
            }
        )
    return collapse_rows(rows, ["protocol", "nodes", "byzantine"], reps)


def _metric(rows, protocol, byz, key):
    for row in rows:
        if row["protocol"] == protocol and row["byzantine"] == byz:
            return row[key]
    return None


def test_benchmark_fig14(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig14_silence_attack",
        "Figure 14: metrics under the silence attack (increasing Byzantine nodes)",
        rows,
        ["protocol", "nodes", "byzantine", "throughput_tps", "latency_ms", "cgr", "block_interval"],
    )
    hs_byz = max(r["byzantine"] for r in rows if r["protocol"] == "HS")
    sl_byz = max(r["byzantine"] for r in rows if r["protocol"] == "SL")
    # Throughput falls for every protocol.
    for label, byz in (("HS", hs_byz), ("2CHS", hs_byz), ("SL", sl_byz)):
        assert _metric(rows, label, byz, "throughput_tps") < _metric(rows, label, 0, "throughput_tps")
    # HS and 2CHS lose chain growth alike; Streamlet stays at 1.  The HS/2CHS
    # gap tolerance is loose at CI scale: with a third of the leaders silent,
    # HotStuff's stricter consecutive-view three-chain also delays commits
    # beyond the short measurement window.
    assert _metric(rows, "HS", hs_byz, "cgr") < 0.98
    assert abs(_metric(rows, "HS", hs_byz, "cgr") - _metric(rows, "2CHS", hs_byz, "cgr")) < 0.35
    # Streamlet never forks; its CGR only dips through the short-window tail
    # of blocks that have not yet gathered two successors when measurement
    # stops, so the bound is loose at CI scale.
    assert _metric(rows, "SL", sl_byz, "cgr") > 0.7
    assert _metric(rows, "SL", sl_byz, "cgr") >= _metric(rows, "HS", hs_byz, "cgr") - 0.05
    # Block interval grows under the attack.
    assert _metric(rows, "HS", hs_byz, "block_interval") > _metric(rows, "HS", 0, "block_interval")


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig14_silence_attack",
        "Figure 14: metrics under the silence attack (increasing Byzantine nodes)",
        rows,
        ["protocol", "nodes", "byzantine", "throughput_tps", "latency_ms", "cgr", "block_interval"],
    )


if __name__ == "__main__":
    main()
