"""Ablation bench — the design choices DESIGN.md calls out.

Not a figure from the paper, but the knobs its discussion (§VI-E, §V-E)
identifies as the interesting degrees of freedom:

* commit-rule depth (HotStuff's three-chain vs. the two-chain variants);
* vote destination (next-leader unicast vs. broadcast: 2CHS vs. the
  LBFT-inspired variant, Streamlet);
* leader election (round-robin rotation vs. hash-based randomization);
* pacemaker timeout under a silent leader.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    num_nodes=4,
    block_size=400,
    payload_size=0,
    num_clients=2,
    concurrency=300,
    runtime=1.2,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=0.5,
    mempool_capacity=4000,
    seed=43,
)

#: (arm label, config overrides) — each arm is one run over BASE_CONFIG.
ARMS = [
    ("commit-depth-3 (hotstuff)", {"protocol": "hotstuff"}),
    ("commit-depth-2 (2chainhs)", {"protocol": "2chainhs"}),
    ("votes-unicast (2chainhs)", {"protocol": "2chainhs"}),
    ("votes-broadcast (lbft)", {"protocol": "lbft"}),
    ("votes-broadcast+echo (streamlet)", {"protocol": "streamlet"}),
    ("election-round-robin", {"protocol": "hotstuff", "election": "round-robin"}),
    ("election-hash", {"protocol": "hotstuff", "election": "hash"}),
    (
        "silent-leader timeout 50ms",
        {"protocol": "hotstuff", "byzantine_nodes": 1, "strategy": "silence",
         "view_timeout": 0.05, "election": "hash", "request_timeout": 1.0},
    ),
    (
        "silent-leader timeout 200ms",
        {"protocol": "hotstuff", "byzantine_nodes": 1, "strategy": "silence",
         "view_timeout": 0.2, "election": "hash", "request_timeout": 1.0},
    ),
]


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """One point per ablation arm (the CI scale drops the redundant arms)."""
    arms = ARMS
    if scale != "full":
        arms = arms[:2] + arms[3:5] + arms[7:]
    points = [{"_arm": label, **overrides} for label, overrides in arms]
    return api.ExperimentSpec(
        name="ablation_design_choices", base=BASE_CONFIG, points=points, repetitions=reps
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Run one experiment per ablation arm."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        metrics = record["metrics"]
        rows.append(
            {
                "arm": record["params"]["_arm"],
                "throughput_tps": metrics["throughput_tps"],
                "latency_ms": metrics["mean_latency"] * 1e3,
                "block_interval": metrics["block_interval"],
                "cgr": metrics["chain_growth_rate"],
            }
        )
    return collapse_rows(rows, ["arm"], reps)


def test_benchmark_ablation(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "ablation_design_choices",
        "Ablation: commit depth, vote destination, election, timeout",
        rows,
        ["arm", "throughput_tps", "latency_ms", "block_interval", "cgr"],
    )
    by_arm = {r["arm"]: r for r in rows}
    # The deeper commit rule costs latency, not throughput.
    assert (
        by_arm["commit-depth-3 (hotstuff)"]["latency_ms"]
        > by_arm["commit-depth-2 (2chainhs)"]["latency_ms"]
    )
    # Echoing (Streamlet) costs throughput compared to plain vote broadcast.
    assert (
        by_arm["votes-broadcast+echo (streamlet)"]["throughput_tps"]
        < by_arm["votes-broadcast (lbft)"]["throughput_tps"] * 1.05
    )
    # A shorter timeout recovers more throughput under a silent leader.
    assert (
        by_arm["silent-leader timeout 50ms"]["throughput_tps"]
        >= by_arm["silent-leader timeout 200ms"]["throughput_tps"] * 0.9
    )


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "ablation_design_choices",
        "Ablation: commit depth, vote destination, election, timeout",
        rows,
        ["arm", "throughput_tps", "latency_ms", "block_interval", "cgr"],
    )


if __name__ == "__main__":
    main()
