"""Figure 9 — throughput vs. latency for block sizes 100 / 400 / 800.

The paper compares HS, 2CHS, SL (and the original C++ HotStuff, OHS) with
zero-payload requests at three block sizes by raising client concurrency
until saturation.  Reproduction criteria: every curve is L-shaped, larger
blocks raise the saturation throughput with diminishing returns above 400,
Streamlet sits below the HotStuff variants, and the OHS profile is close to
Bamboo-HotStuff.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    num_nodes=4,
    payload_size=0,
    num_clients=2,
    runtime=1.2,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=0.5,
    mempool_capacity=4000,
    seed=17,
)

CI_LEVELS = [50, 200, 800]
FULL_LEVELS = [25, 50, 100, 200, 400, 800, 1600]
CI_BLOCK_SIZES = [100, 400]
FULL_BLOCK_SIZES = [100, 400, 800]

#: (label, protocol, cost profile) — OHS is HotStuff under the "ohs" profile.
SERIES = [
    ("HS", "hotstuff", "standard"),
    ("2CHS", "2chainhs", "standard"),
    ("SL", "streamlet", "standard"),
    ("OHS", "hotstuff", "ohs"),
]


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """Every (series, block size, concurrency) point as one campaign."""
    levels = FULL_LEVELS if scale == "full" else CI_LEVELS
    block_sizes = FULL_BLOCK_SIZES if scale == "full" else CI_BLOCK_SIZES
    points = [
        {
            "_series": f"{label}-b{block_size}",
            "protocol": protocol,
            "cost_profile": profile,
            "block_size": block_size,
            "concurrency": int(level),
        }
        for label, protocol, profile in SERIES
        for block_size in block_sizes
        # The paper could not obtain meaningful OHS results at 400.
        if not (label == "OHS" and block_size == 400)
        for level in levels
    ]
    return api.ExperimentSpec(
        name="fig9_block_sizes", base=BASE_CONFIG, points=points, repetitions=reps
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Sweep client concurrency for every protocol / block size pair."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        rows.append(
            {
                "series": record["params"]["_series"],
                "concurrency": record["config"]["concurrency"],
                "throughput_tps": record["metrics"]["throughput_tps"],
                "latency_ms": record["metrics"]["mean_latency"] * 1e3,
            }
        )
    return collapse_rows(rows, ["series", "concurrency"], reps)


def _saturation(rows: List[Dict], series: str) -> float:
    return max((r["throughput_tps"] for r in rows if r["series"] == series), default=0.0)


def test_benchmark_fig9(benchmark):
    scale = bench_scale()
    rows = benchmark.pedantic(run, args=(scale,), rounds=1, iterations=1)
    report(
        "fig9_block_sizes",
        "Figure 9: throughput vs. latency for block sizes (zero payload, 4 replicas)",
        rows,
        ["series", "concurrency", "throughput_tps", "latency_ms"],
    )
    # Larger blocks raise saturation throughput.
    assert _saturation(rows, "HS-b400") > _saturation(rows, "HS-b100")
    # Streamlet saturates below HotStuff at the same block size.
    assert _saturation(rows, "SL-b400") < _saturation(rows, "HS-b400")
    # The OHS baseline is within a modest factor of Bamboo-HotStuff.
    assert _saturation(rows, "OHS-b100") >= 0.7 * _saturation(rows, "HS-b100")


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig9_block_sizes",
        "Figure 9: throughput vs. latency for block sizes (zero payload, 4 replicas)",
        rows,
        ["series", "concurrency", "throughput_tps", "latency_ms"],
    )


if __name__ == "__main__":
    main()
