"""Figure 10 — throughput vs. latency for payload sizes 0 / 128 / 1024 bytes.

The paper fixes the block size at 400 and varies the transaction payload.
Reproduction criteria: larger payloads lower throughput and raise latency for
every protocol, Streamlet is the most sensitive (its echoes multiply the
bytes moved), and the latency gap between HotStuff and 2CHS narrows as the
payload (transmission delay) grows.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    num_nodes=4,
    block_size=400,
    num_clients=2,
    runtime=1.2,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=0.5,
    mempool_capacity=4000,
    seed=19,
)

PROTOCOLS = [("HS", "hotstuff"), ("2CHS", "2chainhs"), ("SL", "streamlet")]
CI_PAYLOADS = [0, 1024]
FULL_PAYLOADS = [0, 128, 1024]
CI_LEVELS = [50, 200, 800]
FULL_LEVELS = [25, 50, 100, 200, 400, 800, 1600]


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """Every (protocol, payload, concurrency) point as one campaign."""
    payloads = FULL_PAYLOADS if scale == "full" else CI_PAYLOADS
    levels = FULL_LEVELS if scale == "full" else CI_LEVELS
    points = [
        {
            "_series": f"{label}-p{payload}",
            "protocol": protocol,
            "payload_size": payload,
            "concurrency": int(level),
        }
        for label, protocol in PROTOCOLS
        for payload in payloads
        for level in levels
    ]
    return api.ExperimentSpec(
        name="fig10_payload_sizes", base=BASE_CONFIG, points=points, repetitions=reps
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Sweep concurrency for every protocol / payload size pair."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        rows.append(
            {
                "series": record["params"]["_series"],
                "concurrency": record["config"]["concurrency"],
                "throughput_tps": record["metrics"]["throughput_tps"],
                "latency_ms": record["metrics"]["mean_latency"] * 1e3,
            }
        )
    return collapse_rows(rows, ["series", "concurrency"], reps)


def _saturation(rows, series):
    return max((r["throughput_tps"] for r in rows if r["series"] == series), default=0.0)


def _low_load_latency(rows, series):
    candidates = [r for r in rows if r["series"] == series]
    return min(candidates, key=lambda r: r["concurrency"])["latency_ms"]


def test_benchmark_fig10(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig10_payload_sizes",
        "Figure 10: throughput vs. latency for payload sizes (bsize 400, 4 replicas)",
        rows,
        ["series", "concurrency", "throughput_tps", "latency_ms"],
    )
    payloads = sorted({int(r["series"].split("-p")[1]) for r in rows})
    heavy = payloads[-1]
    # Larger payloads cost throughput for every protocol.
    for label in ("HS", "2CHS", "SL"):
        assert _saturation(rows, f"{label}-p{heavy}") <= _saturation(rows, f"{label}-p0")
    # The HS vs. 2CHS latency gap narrows (relatively) with a heavy payload.
    gap_light = _low_load_latency(rows, "HS-p0") / _low_load_latency(rows, "2CHS-p0")
    gap_heavy = _low_load_latency(rows, f"HS-p{heavy}") / _low_load_latency(rows, f"2CHS-p{heavy}")
    assert gap_heavy <= gap_light + 0.05


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig10_payload_sizes",
        "Figure 10: throughput vs. latency for payload sizes (bsize 400, 4 replicas)",
        rows,
        ["series", "concurrency", "throughput_tps", "latency_ms"],
    )


if __name__ == "__main__":
    main()
