"""Figure 13 — the forking attack: throughput, latency, CGR, BI vs. Byzantine count.

The paper runs 32 replicas and raises the number of Byzantine replicas
performing the forking attack from 0 to 10.  Reproduction criteria:

* Streamlet is flat on every metric (immune to forking);
* two-chain HotStuff outperforms HotStuff on every metric (it can lose at
  most one block per attack instead of two);
* block intervals start at the commit-rule depth (2 for 2CHS, 3 for HS) and
  grow with the attack;
* chain growth rate falls roughly like 1 - k·byz/n with k = 2 for HS and
  k = 1 for 2CHS.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    strategy="forking",
    block_size=400,
    payload_size=128,
    num_clients=2,
    concurrency=400,
    runtime=1.5,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=1.0,
    election="hash",
    request_timeout=1.5,
    mempool_capacity=4000,
    seed=31,
)

PROTOCOLS = [("HS", "hotstuff"), ("2CHS", "2chainhs"), ("SL", "streamlet")]
CI_SETUP = {"nodes": 16, "byz_counts": [0, 5], "sl_nodes": 8, "sl_byz": [0, 2]}
FULL_SETUP = {"nodes": 32, "byz_counts": [0, 2, 4, 6, 8, 10], "sl_nodes": 32, "sl_byz": [0, 2, 4, 6, 8, 10]}


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """One point per protocol and Byzantine count (SL uses its own sizes)."""
    setup = FULL_SETUP if scale == "full" else CI_SETUP
    points = []
    for label, protocol in PROTOCOLS:
        nodes = setup["sl_nodes"] if label == "SL" else setup["nodes"]
        byz_counts = setup["sl_byz"] if label == "SL" else setup["byz_counts"]
        points.extend(
            {"_label": label, "protocol": protocol, "num_nodes": nodes, "byzantine_nodes": byz}
            for byz in byz_counts
        )
    return api.ExperimentSpec(
        name="fig13_forking_attack", base=BASE_CONFIG, points=points, repetitions=reps
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Measure the four metrics as the number of forking attackers grows."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        metrics = record["metrics"]
        rows.append(
            {
                "protocol": record["params"]["_label"],
                "nodes": record["config"]["num_nodes"],
                "byzantine": record["config"]["byzantine_nodes"],
                "throughput_tps": metrics["throughput_tps"],
                "latency_ms": metrics["mean_latency"] * 1e3,
                "cgr": metrics["chain_growth_rate"],
                "block_interval": metrics["block_interval"],
            }
        )
    return collapse_rows(rows, ["protocol", "nodes", "byzantine"], reps)


def _metric(rows, protocol, byz, key):
    for row in rows:
        if row["protocol"] == protocol and row["byzantine"] == byz:
            return row[key]
    return None


def test_benchmark_fig13(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig13_forking_attack",
        "Figure 13: metrics under the forking attack (increasing Byzantine nodes)",
        rows,
        ["protocol", "nodes", "byzantine", "throughput_tps", "latency_ms", "cgr", "block_interval"],
    )
    hs_byz = max(r["byzantine"] for r in rows if r["protocol"] == "HS")
    sl_byz = max(r["byzantine"] for r in rows if r["protocol"] == "SL")
    # Forking lowers HS chain growth, 2CHS stays above HS, SL stays at 1.
    assert _metric(rows, "HS", hs_byz, "cgr") < _metric(rows, "HS", 0, "cgr")
    assert _metric(rows, "2CHS", hs_byz, "cgr") > _metric(rows, "HS", hs_byz, "cgr")
    assert _metric(rows, "SL", sl_byz, "cgr") > 0.97
    # Block intervals start at the commit-rule depth and grow under attack.
    assert abs(_metric(rows, "HS", 0, "block_interval") - 3.0) < 0.3
    assert abs(_metric(rows, "2CHS", 0, "block_interval") - 2.0) < 0.3
    assert _metric(rows, "HS", hs_byz, "block_interval") > _metric(rows, "HS", 0, "block_interval")


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig13_forking_attack",
        "Figure 13: metrics under the forking attack (increasing Byzantine nodes)",
        rows,
        ["protocol", "nodes", "byzantine", "throughput_tps", "latency_ms", "cgr", "block_interval"],
    )


if __name__ == "__main__":
    main()
