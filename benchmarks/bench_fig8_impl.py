"""Figure 8, measured axis — the protocol stack over real TCP vs. the model.

``bench_fig8_model_vs_implementation`` compares the simulator against the
*analytical* model; this module regenerates the figure's other axis: the same
``Configuration`` is run in ``mode="model"`` (discrete-event, modeled crypto
and network) and ``mode="deploy"`` (an asyncio TCP loopback cluster with real
Ed25519 signing and measured wall-clock time, :mod:`repro.transport`).  Both
runs emit identical campaign records, so with ``REPRO_BENCH_STORE`` set the
stored campaign prefix-matches the ``fig8`` figure and ``python -m repro
plot`` draws the measured and simulated latency curves of one configuration
side by side — the paper's model-vs-implementation comparison, regenerated
from actual runs of both.

Deploy points cost real seconds of wall clock per point (the run *is* the
measurement), so the grids stay small even at full scale.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

MODES = ["model", "deploy"]

BASE_CONFIG = api.Configuration(
    num_nodes=4,
    block_size=50,
    payload_size=0,
    num_clients=2,
    runtime=1.6,
    warmup=0.4,
    cooldown=0.2,
    view_timeout=1.0,
    request_timeout=2.0,
    mempool_capacity=2000,
    seed=13,
)

CI_PROTOCOLS = ["hotstuff"]
FULL_PROTOCOLS = ["hotstuff", "2chainhs"]
#: Open-loop arrival rates (Tx/s), sized to the loopback cluster's capacity
#: with pure-Python Ed25519 (~60-70 committed Tx/s at n=4).
CI_RATES = [20.0, 50.0]
FULL_RATES = [15.0, 30.0, 45.0, 60.0]


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """One point per (protocol, arrival rate, execution mode)."""
    protocols = FULL_PROTOCOLS if scale == "full" else CI_PROTOCOLS
    rates = FULL_RATES if scale == "full" else CI_RATES
    points = []
    for protocol in protocols:
        for rate in rates:
            for mode in MODES:
                points.append(
                    {
                        "_config": f"{BASE_CONFIG.num_nodes}/{BASE_CONFIG.block_size}",
                        "protocol": protocol,
                        "arrival_rate": rate,
                        "mode": mode,
                    }
                )
    return api.ExperimentSpec(
        name="fig8_impl", base=BASE_CONFIG, points=points, repetitions=reps,
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Measure one grid in both execution modes and tabulate latency."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        params = record["params"]
        metrics = record["metrics"]
        rows.append(
            {
                "config": params["_config"],
                "protocol": params["protocol"],
                "mode": params["mode"],
                "arrival_tps": params["arrival_rate"],
                "latency_ms": metrics["mean_latency"] * 1e3,
                "tput_tps": metrics["throughput_tps"],
                "consistent": record["consistent"],
            }
        )
    return collapse_rows(rows, ["config", "protocol", "mode", "arrival_tps"], reps)


def test_benchmark_fig8_impl(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig8_impl",
        "Figure 8: simulated vs. deployed (mean latency at open-loop arrival rates)",
        rows,
        ["config", "protocol", "mode", "arrival_tps", "latency_ms", "tput_tps"],
    )
    # Every run — simulated or over real sockets — must stay safe and commit.
    assert all(r["consistent"] for r in rows)
    assert all(r["tput_tps"] > 0 for r in rows)
    assert all(r["latency_ms"] > 0 for r in rows)
    # Both execution modes produced a curve for every (protocol, rate) point.
    by_mode = {mode: [r for r in rows if r["mode"] == mode] for mode in MODES}
    assert len(by_mode["model"]) == len(by_mode["deploy"]) > 0


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig8_impl",
        "Figure 8: simulated vs. deployed (mean latency at open-loop arrival rates)",
        rows,
        ["config", "protocol", "mode", "arrival_tps", "latency_ms", "tput_tps"],
    )


if __name__ == "__main__":
    main()
