"""Figure 12 — scalability: saturated throughput and latency for 4-64 nodes.

The paper scales the cluster from 4 to 64 nodes (block size 400, payload 128
bytes).  Reproduction criteria: throughput falls and latency rises with
cluster size for every protocol, Streamlet degrades fastest (its O(n^3)
message complexity), and the HS/2CHS latency difference shrinks as the
cluster grows.

Streamlet beyond 16 nodes is extremely expensive to simulate message by
message (the paper itself calls its >= 64-node results meaningless), so the
CI scale caps Streamlet at 16 nodes and the full scale at 32.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    block_size=400,
    payload_size=128,
    num_clients=2,
    runtime=1.2,
    warmup=0.4,
    cooldown=0.4,
    cost_profile="standard",
    view_timeout=1.0,
    mempool_capacity=4000,
    concurrency=400,
    seed=29,
)

PROTOCOLS = [("HS", "hotstuff"), ("2CHS", "2chainhs"), ("SL", "streamlet")]
CI_SIZES = {"HS": [4, 16], "2CHS": [4, 16], "SL": [4, 8]}
FULL_SIZES = {"HS": [4, 8, 16, 32, 64], "2CHS": [4, 8, 16, 32, 64], "SL": [4, 8, 16, 32]}


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """One point per protocol and cluster size (irregular: SL is capped)."""
    sizes = FULL_SIZES if scale == "full" else CI_SIZES
    points = [
        {"_label": label, "protocol": protocol, "num_nodes": num_nodes}
        for label, protocol in PROTOCOLS
        for num_nodes in sizes[label]
    ]
    return api.ExperimentSpec(
        name="fig12_scalability", base=BASE_CONFIG, points=points, repetitions=reps
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Measure saturated throughput/latency per protocol and cluster size."""
    rows = []
    for record in campaign_records(spec(scale, reps)):
        rows.append(
            {
                "protocol": record["params"]["_label"],
                "nodes": record["config"]["num_nodes"],
                "throughput_tps": record["metrics"]["throughput_tps"],
                "latency_ms": record["metrics"]["mean_latency"] * 1e3,
            }
        )
    return collapse_rows(rows, ["protocol", "nodes"], reps)


def _series(rows, label):
    return sorted((r for r in rows if r["protocol"] == label), key=lambda r: r["nodes"])


def test_benchmark_fig12(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig12_scalability",
        "Figure 12: scalability (bsize 400, 128-byte payload, saturated clients)",
        rows,
        ["protocol", "nodes", "throughput_tps", "latency_ms"],
    )
    for label in ("HS", "2CHS", "SL"):
        series = _series(rows, label)
        # Larger clusters: lower throughput, higher latency.
        assert series[-1]["throughput_tps"] < series[0]["throughput_tps"]
        assert series[-1]["latency_ms"] > series[0]["latency_ms"]
    # Streamlet degrades faster than HotStuff over the shared size range.
    hs = {r["nodes"]: r for r in _series(rows, "HS")}
    sl = {r["nodes"]: r for r in _series(rows, "SL")}
    shared = sorted(set(hs) & set(sl))
    first, last = shared[0], shared[-1]
    hs_drop = hs[last]["throughput_tps"] / hs[first]["throughput_tps"]
    sl_drop = sl[last]["throughput_tps"] / sl[first]["throughput_tps"]
    assert sl_drop <= hs_drop


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig12_scalability",
        "Figure 12: scalability (bsize 400, 128-byte payload, saturated clients)",
        rows,
        ["protocol", "nodes", "throughput_tps", "latency_ms"],
    )


if __name__ == "__main__":
    main()
