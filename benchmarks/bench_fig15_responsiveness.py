"""Figure 15 — responsiveness: throughput over time with fluctuation + crash.

Four replicas run under sustained load; the network fluctuates for a period
(inter-replica delays far above the optimistic timeout), after which one
replica crashes (a permanent silence attack).  Two settings are compared:

* ``t-small`` — the timeout is far below the fluctuation delays and leaders
  propose as soon as they enter a view (the paper's 10 ms setting);
* ``t-large`` — the timeout covers the worst fluctuation delay and leaders
  wait out the timeout after a TC-triggered view change (the 100 ms setting).

Reproduction criteria: every protocol stalls during the fluctuation in the
small-timeout setting; the responsive protocol (HotStuff) resumes at network
speed once the fluctuation ends despite the crashed replica; the
large-timeout setting keeps all protocols live but at lower throughput.

The paper additionally observed that 2CHS and Streamlet never recovered in
the small-timeout setting because replicas ended up locked on conflicting
blocks; in this simulator messages are delayed but never lost, so those
protocols do recover once delays normalize — docs/EXPERIMENTS.md discusses
the deviation.
"""

from __future__ import annotations

from typing import Dict, List

import _pathfix  # noqa: F401

from repro import api
from repro.bench.timeline import ResponsivenessScenario
from repro.experiments import timeline_mean

from common import bench_args, bench_scale, campaign_records, collapse_rows, report

BASE_CONFIG = api.Configuration(
    num_nodes=4,
    block_size=100,
    payload_size=128,
    num_clients=2,
    concurrency=300,
    cost_profile="standard",
    election="hash",
    request_timeout=1.5,
    mempool_capacity=4000,
    runtime=12.0,
    warmup=0.0,
    cooldown=0.0,
    seed=41,
)

PROTOCOLS = [("HS", "hotstuff"), ("2CHS", "2chainhs"), ("SL", "streamlet")]

CI_SCENARIO = ResponsivenessScenario(
    fluctuation_start=3.0,
    fluctuation_duration=4.0,
    fluctuation_min=0.06,
    fluctuation_max=0.15,
    crash_at=8.0,
    total_duration=12.0,
    bucket=0.5,
)
FULL_SCENARIO = ResponsivenessScenario(
    fluctuation_start=5.0,
    fluctuation_duration=10.0,
    fluctuation_min=0.06,
    fluctuation_max=0.15,
    crash_at=16.0,
    total_duration=40.0,
    bucket=0.5,
)

#: (setting label, view timeout, wait after a TC before proposing).  The
#: paper's 10 ms / 100 ms settings are scaled to the simulator's view
#: duration: the small timeout exceeds the happy-path view but is far below
#: the fluctuation delays; the large timeout covers the worst fluctuation
#: round trip.
SETTINGS = [("t-small", 0.08, 0.0), ("t-large", 0.35, 0.35)]


def _scenario(scale: str) -> ResponsivenessScenario:
    return FULL_SCENARIO if scale == "full" else CI_SCENARIO


def spec(scale: str = "ci", reps: int = 1) -> api.ExperimentSpec:
    """Every (timeout setting, protocol) run under the shared fault schedule."""
    scenario = _scenario(scale)
    points = [
        {
            "_series": f"{label}-{setting}",
            "protocol": protocol,
            "view_timeout": timeout,
            "propose_wait_after_tc": wait,
        }
        for setting, timeout, wait in SETTINGS
        for label, protocol in PROTOCOLS
    ]
    return api.ExperimentSpec(
        name="fig15_responsiveness",
        base=BASE_CONFIG.replace(runtime=scenario.total_duration),
        points=points,
        scenario=scenario.to_scenario(),
        bucket=scenario.bucket,
        repetitions=reps,
    )


def run(scale: str = "ci", reps: int = 1) -> List[Dict]:
    """Run the fluctuation + crash scenario for each protocol and timeout."""
    scenario = _scenario(scale)
    rows = []
    for record in campaign_records(spec(scale, reps)):
        timeline = record["timeline"]
        rows.append(
            {
                "series": record["params"]["_series"],
                "before_tps": timeline_mean(timeline, 0.0, scenario.fluctuation_start),
                "during_tps": timeline_mean(
                    timeline, scenario.fluctuation_start, scenario.fluctuation_end
                ),
                "after_crash_tps": timeline_mean(
                    timeline, scenario.crash_at, scenario.total_duration
                ),
                "consistent": record["consistent"],
            }
        )
    return collapse_rows(rows, ["series"], reps)


def _row(rows, series):
    return next(r for r in rows if r["series"] == series)


def test_benchmark_fig15(benchmark):
    rows = benchmark.pedantic(run, args=(bench_scale(),), rounds=1, iterations=1)
    report(
        "fig15_responsiveness",
        "Figure 15: throughput before / during fluctuation / after the crash",
        rows,
        ["series", "before_tps", "during_tps", "after_crash_tps", "consistent"],
    )
    # Small-timeout setting: the fluctuation stalls every protocol that was
    # making progress before it.
    for label in ("HS", "2CHS", "SL"):
        row = _row(rows, f"{label}-t-small")
        if row["before_tps"] > 0:
            assert row["during_tps"] < 0.5 * row["before_tps"]
        assert row["consistent"]
    # HotStuff (responsive) resumes after the fluctuation despite the crash:
    # clearly above the stalled fluctuation level, and a sizable fraction of
    # the pre-fault throughput (the crashed leader's views still cost a
    # timeout each, which is why it is not 100%).
    hs_small = _row(rows, "HS-t-small")
    assert hs_small["after_crash_tps"] > 2 * hs_small["during_tps"]
    assert hs_small["after_crash_tps"] > 0.15 * hs_small["before_tps"]
    # Large-timeout setting keeps everyone live, at reduced throughput.
    for label in ("HS", "2CHS", "SL"):
        row = _row(rows, f"{label}-t-large")
        assert row["after_crash_tps"] > 0


def main() -> None:
    args = bench_args()
    rows = run(args.scale, args.reps)
    report(
        "fig15_responsiveness",
        "Figure 15: throughput before / during fluctuation / after the crash",
        rows,
        ["series", "before_tps", "during_tps", "after_crash_tps", "consistent"],
    )


if __name__ == "__main__":
    main()
