"""Adversarial scenario fuzzer: generated fault/Byzantine campaigns with
safety invariants, replayable violation artifacts, and greedy shrinking.

Entry points:

* :func:`run_fuzz` — ``python -m repro fuzz`` / ``api.fuzz()``: execute a
  budget of generated cases, audit each with the invariant oracles, persist
  passing records, dump + shrink violations.
* :func:`generate_case` / :func:`generate_cases` — the pure seeded
  generator (same ``(seed, index)`` → byte-identical case, forever).
* :func:`audit` — oracle-check one hand-built configuration (the
  protocol×attack conformance tests are built on this).
* :func:`replay` — re-execute a dumped violation artifact.
* :func:`register_oracle` — add a custom invariant oracle (see
  ``docs/EXTENDING.md``).
"""

from repro.fuzz.generator import (
    EPISODE_KINDS,
    PROTOCOL_CYCLE,
    STRATEGY_POOL,
    FuzzCase,
    generate_case,
    generate_cases,
)
from repro.fuzz.harness import (
    CaseOutcome,
    FuzzReport,
    audit,
    execute_case,
    replay,
    run_fuzz,
    write_artifact,
)
from repro.fuzz.invariants import (
    ORACLES,
    OracleContext,
    Violation,
    available_oracles,
    check_invariants,
    register_oracle,
)
from repro.fuzz.shrink import ShrinkResult, shrink_case

__all__ = [
    "CaseOutcome",
    "EPISODE_KINDS",
    "FuzzCase",
    "FuzzReport",
    "ORACLES",
    "OracleContext",
    "PROTOCOL_CYCLE",
    "STRATEGY_POOL",
    "ShrinkResult",
    "Violation",
    "audit",
    "available_oracles",
    "check_invariants",
    "execute_case",
    "generate_case",
    "generate_cases",
    "register_oracle",
    "replay",
    "run_fuzz",
    "shrink_case",
    "write_artifact",
]
