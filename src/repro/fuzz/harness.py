"""The fuzz campaign driver: execute, check, persist, shrink, replay.

:func:`run_fuzz` is the engine behind ``python -m repro fuzz``: it walks the
first ``budget`` generated cases of a seed, executes each through the
ordinary scenario runner, and audits the finished cluster with every
registered invariant oracle.  Three properties make campaigns practical:

* **Byte-reproducible** — each case executes through the exact
  :meth:`RunSpec.payload` round-trip ordinary campaigns use, and the stored
  record has the same schema, so re-running a seed appends byte-identical
  JSONL lines (``tests/test_fuzz.py`` pins this).
* **Resumable** — passing cases are persisted to a
  :class:`~repro.experiments.store.ResultStore` under their content hash;
  a re-run with the same store skips them.  Violating cases are *never*
  stored — they must stay loud on every run.
* **Replayable** — a violation dumps a self-contained scenario JSON (and a
  shrunken ``-min`` variant); :func:`replay` re-executes such an artifact
  and reports whether the violation still fires.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.bench.config import Configuration
from repro.experiments.store import ResultStore
from repro.fuzz.generator import FuzzCase, generate_case
from repro.fuzz.invariants import (
    OracleContext,
    Violation,
    check_invariants,
)
from repro.scenario import Scenario, ScenarioRunner


@dataclass
class CaseOutcome:
    """One executed case: its record, and any invariant violations."""

    case: FuzzCase
    record: Dict[str, Any]
    violations: List[Violation] = field(default_factory=list)
    #: Consistency hash of the honest replicas' common committed prefix —
    #: the determinism witness: same case, same fingerprint, always.
    fingerprint: str = ""
    #: Paths of the artifacts written for a violating case (if any).
    artifact: Optional[str] = None
    shrunk_artifact: Optional[str] = None
    #: Path of the violating run's event trace (JSONL), captured by
    #: re-executing the case under a fresh tracer.
    trace_artifact: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def execute_case(
    case: FuzzCase, oracles: Optional[List[str]] = None
) -> CaseOutcome:
    """Run one case and audit the finished cluster with the oracles.

    The configuration and scenario go through the same payload round-trip
    as :func:`repro.experiments.runner.execute_payload`, so the returned
    record is byte-identical to what an ordinary campaign would store for
    the same point.
    """
    payload = case.run_spec().payload()
    config = Configuration.from_dict(payload["config"])
    scenario = Scenario.from_dict(payload["scenario"])
    runner = ScenarioRunner(config, scenario, bucket=payload["bucket"])
    cluster = runner.build()
    outcome = runner.run(cluster)
    record: Dict[str, Any] = {
        "run_id": payload["run_id"],
        "campaign": payload["campaign"],
        "index": payload["index"],
        "repetition": payload["repetition"],
        "params": payload["params"],
        "config": config.to_dict(),
        "scenario": scenario.to_dict(),
        "metrics": outcome.metrics.to_dict(),
        "consistent": outcome.consistent,
        "highest_view": outcome.highest_view,
        "timeline": [[t, tps] for t, tps in outcome.timeline],
    }
    ctx = OracleContext(cluster=cluster, result=outcome, case=case)
    violations = check_invariants(ctx, oracles)
    honest = ctx.honest_replicas()
    fingerprint = ""
    if honest:
        common = min(r.forest.committed_height for r in honest)
        fingerprint = f"{common}:{honest[0].forest.consistency_hash(common)}"
    return CaseOutcome(
        case=case, record=record, violations=violations, fingerprint=fingerprint
    )


def audit(
    config: Configuration,
    scenario: Optional[Scenario] = None,
    oracles: Optional[List[str]] = None,
) -> CaseOutcome:
    """Run one hand-built configuration through the full oracle audit.

    The conformance-matrix tests (and the docs' extension walkthrough) use
    this to ask "does protocol P survive attack A?" without generating
    cases.  The conditional liveness oracle is skipped — there is no
    generator metadata to bound the fault schedule.
    """
    case = FuzzCase(
        seed=0,
        index=0,
        config=config,
        scenario=scenario if scenario is not None else Scenario(name="audit"),
        liveness_eligible=False,
    )
    return execute_case(case, oracles)


@dataclass
class FuzzReport:
    """Summary of one fuzz campaign invocation."""

    seed: int
    budget: int
    executed: int = 0
    skipped: int = 0
    #: Outcomes of the violating cases only (passing cases are summarized
    #: by the counters; their full records live in the store).
    failures: List[CaseOutcome] = field(default_factory=list)
    #: How many cases ran each protocol, by canonical name.
    protocols: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def violations(self) -> List[Violation]:
        return [v for outcome in self.failures for v in outcome.violations]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "budget": self.budget,
            "executed": self.executed,
            "skipped": self.skipped,
            "protocols": dict(sorted(self.protocols.items())),
            "violations": [
                {
                    "run_id": outcome.case.run_id,
                    "index": outcome.case.index,
                    "violations": [v.to_dict() for v in outcome.violations],
                    "artifact": outcome.artifact,
                    "shrunk_artifact": outcome.shrunk_artifact,
                    "trace_artifact": outcome.trace_artifact,
                }
                for outcome in self.failures
            ],
        }


def capture_trace(
    directory: str, case: FuzzCase, oracles: Optional[List[str]] = None
) -> str:
    """Re-execute a violating case under a fresh tracer and dump its trace.

    The campaign itself runs untraced (tracing must never be a precondition
    for finding a bug), so the violating case is executed a second time —
    cases are deterministic, the replay reproduces the same run — with a
    :class:`repro.obs.Tracer` installed, and the full event trace lands
    next to the replay artifact as ``violation-<run_id>-trace.jsonl``.
    Any tracer the caller had installed is restored afterwards.
    """
    from repro.obs import trace as obs_trace
    from repro.obs.export import write_jsonl

    os.makedirs(directory, exist_ok=True)
    with obs_trace.tracing() as tracer:
        execute_case(case, oracles)
    path = os.path.join(directory, f"violation-{case.run_id}-trace.jsonl")
    write_jsonl(tracer.records(), path)
    return path


def write_artifact(
    directory: str, outcome: CaseOutcome, suffix: str = ""
) -> str:
    """Dump a violating case as a self-contained, replayable JSON file."""
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(
        directory, f"violation-{outcome.case.run_id}{suffix}.json"
    )
    document = {
        "fuzz": {
            "seed": outcome.case.seed,
            "index": outcome.case.index,
            "run_id": outcome.case.run_id,
        },
        "violations": [v.to_dict() for v in outcome.violations],
        "trace_artifact": outcome.trace_artifact,
        "case": outcome.case.to_dict(),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def replay(source: Union[str, Dict[str, Any]]) -> CaseOutcome:
    """Re-execute a violation artifact (path or parsed dict).

    Accepts both the artifact document (``{"fuzz": ..., "case": {...}}``)
    and a bare serialized case.  Returns the fresh :class:`CaseOutcome` —
    callers check ``outcome.violations`` to confirm the bug still fires.
    """
    if isinstance(source, str):
        with open(source, "r", encoding="utf-8") as handle:
            source = json.load(handle)
    data = source.get("case", source)
    return execute_case(FuzzCase.from_dict(data))


def run_fuzz(
    budget: int = 50,
    seed: int = 0,
    store: Optional[Union[ResultStore, str]] = None,
    artifacts: Optional[str] = None,
    shrink: bool = True,
    oracles: Optional[List[str]] = None,
    progress=None,
) -> FuzzReport:
    """Execute the first ``budget`` generated cases of campaign ``seed``.

    Passing cases append their campaign record to ``store`` (when given) and
    are skipped on re-runs; violating cases write replayable artifacts to
    ``artifacts`` (default: next to the store) and, unless ``shrink`` is
    disabled, a greedily minimized ``-min`` variant.  ``progress`` is an
    optional callable receiving each :class:`CaseOutcome` as it completes.
    """
    from repro.fuzz.shrink import shrink_case  # local: avoid an import cycle

    if isinstance(store, str):
        store = ResultStore(store)
    if artifacts is None and store is not None:
        artifacts = os.path.join(store.root, "artifacts")

    report = FuzzReport(seed=seed, budget=budget)
    for index in range(budget):
        case = generate_case(seed, index)
        report.protocols[case.config.protocol] = (
            report.protocols.get(case.config.protocol, 0) + 1
        )
        if store is not None and case.run_id in store:
            report.skipped += 1
            continue
        outcome = execute_case(case, oracles)
        report.executed += 1
        if outcome.ok:
            if store is not None:
                store.add(outcome.record)
        else:
            if artifacts is not None:
                # Trace first so the replay artifact can point at it.
                outcome.trace_artifact = capture_trace(artifacts, case, oracles)
                outcome.artifact = write_artifact(artifacts, outcome)
            if shrink:
                fired = sorted({v.oracle for v in outcome.violations})
                shrunk = shrink_case(case, oracles=fired)
                if artifacts is not None:
                    outcome.shrunk_artifact = write_artifact(
                        artifacts, shrunk.outcome, suffix="-min"
                    )
            report.failures.append(outcome)
        if progress is not None:
            progress(outcome)
    return report
