"""Greedy shrinking: minimize a violating case while it still violates.

A raw fuzz counterexample carries everything the generator happened to draw
— decoy fault events, a larger cluster than needed, a longer run than needed.
:func:`shrink_case` strips it down with three greedy phases, re-executing
the candidate after every proposed cut and keeping the cut only if the
violation (the same oracle set) still fires:

1. **drop events** — remove timeline events one at a time, restarting the
   sweep after every successful removal (a removal can unlock others);
2. **shrink the cluster** — decrement ``num_nodes`` while the configuration
   still validates and the violation reproduces (the negative control stops
   at n=5: with n=4 an equivocating leader's minority branch can no longer
   reach even the weakened quorum, a nice demonstration that the shrinker
   keeps exactly what the bug needs);
3. **shorten the run** — halve ``runtime`` down to 0.2 simulated seconds.

Re-execution is deterministic, so "still violates" is a pure predicate and
the result is a stable local minimum.  Total re-executions are capped so a
pathological case cannot stall a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.bench.config import ConfigurationError
from repro.fuzz.generator import FuzzCase
from repro.fuzz.harness import CaseOutcome, execute_case


@dataclass
class ShrinkResult:
    """The minimized case, its outcome, and the work it took."""

    case: FuzzCase
    #: Outcome of executing the minimized case (violations still firing).
    outcome: CaseOutcome
    #: Re-executions spent (successful and failed cuts alike).
    executions: int = 0
    #: Cuts that survived: events dropped + node decrements + runtime halvings.
    reductions: int = 0


def shrink_case(
    case: FuzzCase,
    oracles: Optional[List[str]] = None,
    max_executions: int = 48,
) -> ShrinkResult:
    """Greedily minimize ``case`` while the given oracles keep firing.

    ``oracles`` names the oracle set that must keep reporting violations
    (default: all registered — pass the ones that fired originally so the
    shrinker does not chase an unrelated invariant).
    """
    best = case.with_changes()  # liveness claim dropped; see FuzzCase
    best_outcome = execute_case(best, oracles)
    state = ShrinkResult(case=best, outcome=best_outcome, executions=1)
    if best_outcome.ok:
        # Not reproducible (flaky oracle or wrong oracle set): return the
        # original unshrunk so the artifact still documents the first run.
        return state

    def attempt(candidate: FuzzCase) -> bool:
        if state.executions >= max_executions:
            return False
        outcome = execute_case(candidate, oracles)
        state.executions += 1
        if outcome.violations:
            state.case = candidate
            state.outcome = outcome
            state.reductions += 1
            return True
        return False

    # Phase 1: drop timeline events one at a time, to a fixpoint.
    changed = True
    while changed and state.executions < max_executions:
        changed = False
        events = state.case.scenario.events
        for i in range(len(events)):
            reduced = events[:i] + events[i + 1 :]
            if attempt(state.case.with_changes(events=reduced)):
                changed = True
                break  # indices shifted; restart the sweep

    # Phase 2: shrink the cluster one replica at a time.
    while state.executions < max_executions:
        config = state.case.config
        if config.num_nodes <= 1:
            break
        candidate_config = config.replace(num_nodes=config.num_nodes - 1)
        try:
            candidate_config.validate()
        except ConfigurationError:
            break  # would violate n >= 3f+1, lose the master, etc.
        if not attempt(state.case.with_changes(config=candidate_config)):
            break

    # Phase 3: halve the measured runtime.
    while state.executions < max_executions:
        config = state.case.config
        halved = round(config.runtime / 2, 3)
        if halved < 0.2:
            break
        if not attempt(state.case.with_changes(config=config.replace(runtime=halved))):
            break

    return state
