"""Seeded scenario generator: random-but-reproducible adversarial campaigns.

``generate_case(seed, index)`` draws one :class:`FuzzCase` — an ordinary
``Configuration`` plus a :class:`~repro.scenario.Scenario` fault timeline —
from ``random.Random(f"repro-fuzz:{seed}:{index}")``, so a campaign is a pure
function of ``(seed, budget)``: the same pair regenerates byte-identical
cases on any machine, any number of times.  Each case is keyed by the same
:func:`~repro.experiments.spec.run_key` content hash ordinary campaigns use,
which is what makes fuzz campaigns resumable through a
:class:`~repro.experiments.store.ResultStore`.

The draws are *bounded by design* so that every generated case is one the
protocols are supposed to survive — any oracle violation is then a real bug,
not an over-aggressive schedule:

* the protocol cycles deterministically through all five registered chained
  protocols (``index % 5``), so any budget >= 5 covers the full matrix;
* static Byzantine replicas plus scheduled faults never exceed ``f``
  *concurrently*: fault episodes are laid out sequentially (never
  overlapping), crash sets and partition minorities are capped at
  ``f - byzantine``, and ``set-byzantine`` conversions only fire while the
  permanent Byzantine total stays within ``f``;
* every transient fault heals inside the run (``quiet_after`` records the
  last heal), leaving a post-heal window for the conditional liveness
  oracle — cases whose window is too short, or that contain any permanent
  Byzantine replica (which can legitimately zero a chained protocol's
  throughput), are marked ineligible instead of producing false alarms;
* the quorum threshold stays at the safe default — the unsafe sub-``2f+1``
  knob exists for the negative-control test, not for the generator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.bench.config import Configuration
from repro.experiments.spec import DEFAULT_BUCKET, RunSpec, run_key
from repro.scenario import Scenario
from repro.scenario.events import (
    CrashReplica,
    NetworkFluctuation,
    Partition,
    RecoverReplica,
    ScenarioEvent,
    SetArrivalRate,
    SetByzantine,
)

#: Deterministic protocol assignment: case ``index`` runs protocol
#: ``PROTOCOL_CYCLE[index % 5]``, so every budget >= 5 exercises all five.
PROTOCOL_CYCLE = ("hotstuff", "2chainhs", "streamlet", "fasthotstuff", "lbft")

#: Strategies the generator may assign to static Byzantine replicas or via
#: ``set-byzantine`` conversions (every registered non-honest strategy).
STRATEGY_POOL = (
    "silence",
    "forking",
    "equivocate",
    "delayed-proposal",
    "omission",
    "omission-delay",
)

#: Transient-fault episode kinds the generator schedules (see module doc).
EPISODE_KINDS = ("crash", "partition", "fluctuation", "set-rate", "set-byzantine")


@dataclass
class FuzzCase:
    """One generated adversarial run: config + fault timeline + metadata."""

    seed: int
    index: int
    config: Configuration
    scenario: Scenario
    #: Simulated time after which no scheduled fault remains active.
    quiet_after: float = 0.0
    #: Post-heal slack the liveness oracle grants before demanding commits.
    liveness_grace: float = 0.5
    #: Whether the conditional liveness oracle applies (the generator clears
    #: this when the post-heal window is too short; shrinking clears it too).
    liveness_eligible: bool = True

    @property
    def campaign(self) -> str:
        """Campaign name shared by every case of one fuzz seed."""
        return f"fuzz-{self.seed}"

    @property
    def run_id(self) -> str:
        """Content hash keying this case in a result store."""
        return run_key(self.config, self.scenario, DEFAULT_BUCKET)

    def params(self) -> Dict[str, Any]:
        """The record's ``params`` block: what varied, plus fuzz tags."""
        return {
            "protocol": self.config.protocol,
            "num_nodes": self.config.num_nodes,
            "byzantine_nodes": self.config.byzantine_nodes,
            "strategy": self.config.strategy,
            "_fuzz_seed": self.seed,
            "_fuzz_index": self.index,
            "_events": len(self.scenario.events),
        }

    def run_spec(self) -> RunSpec:
        """The equivalent ordinary campaign run (same payload, same hash)."""
        return RunSpec(
            campaign=self.campaign,
            index=self.index,
            repetition=0,
            params=self.params(),
            config=self.config,
            scenario=self.scenario,
            bucket=DEFAULT_BUCKET,
        )

    def with_changes(
        self,
        config: Optional[Configuration] = None,
        events: Optional[List[ScenarioEvent]] = None,
        duration: Optional[float] = None,
    ) -> "FuzzCase":
        """A variant case for shrinking: new config and/or timeline.

        Shrunken variants drop the liveness claim — removing a recovery (or
        shortening the run) legitimately changes what liveness means, and
        shrinking targets the safety oracle that already fired.
        """
        scenario = Scenario(
            name=self.scenario.name,
            events=list(self.scenario.events) if events is None else list(events),
            duration=self.scenario.duration if duration is None else duration,
        )
        return FuzzCase(
            seed=self.seed,
            index=self.index,
            config=config if config is not None else self.config,
            scenario=scenario,
            quiet_after=self.quiet_after,
            liveness_grace=self.liveness_grace,
            liveness_eligible=False,
        )

    # ------------------------------------------------------------------
    # (de)serialization — the replayable violation-artifact format
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "index": self.index,
            "config": self.config.to_dict(),
            "scenario": self.scenario.to_dict(),
            "quiet_after": self.quiet_after,
            "liveness_grace": self.liveness_grace,
            "liveness_eligible": self.liveness_eligible,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzCase":
        return cls(
            seed=data.get("seed", 0),
            index=data.get("index", 0),
            config=Configuration.from_dict(data["config"]),
            scenario=Scenario.from_dict(data.get("scenario", {})),
            quiet_after=data.get("quiet_after", 0.0),
            liveness_grace=data.get("liveness_grace", 0.5),
            liveness_eligible=data.get("liveness_eligible", False),
        )


def generate_case(seed: int, index: int) -> FuzzCase:
    """Draw case ``index`` of fuzz campaign ``seed`` (pure and deterministic)."""
    rng = random.Random(f"repro-fuzz:{seed}:{index}")

    protocol = PROTOCOL_CYCLE[index % len(PROTOCOL_CYCLE)]
    num_nodes = rng.choice((4, 5, 6, 7))
    f = (num_nodes - 1) // 3
    byzantine = rng.choice((0, 0, 1, min(f, rng.randint(1, max(1, f)))))
    byzantine = min(byzantine, f)
    strategy = rng.choice(STRATEGY_POOL) if byzantine else "silence"

    view_timeout = rng.choice((0.05, 0.08, 0.1))
    block_size = rng.choice((10, 20, 50))
    open_loop = rng.random() < 0.4
    runtime = rng.choice((1.0, 1.5))

    config = Configuration(
        protocol=protocol,
        num_nodes=num_nodes,
        byzantine_nodes=byzantine,
        strategy=strategy,
        election=rng.choice(("round-robin", "hash")),
        block_size=block_size,
        mempool_capacity=10 * block_size,
        num_clients=2,
        concurrency=rng.choice((8, 16, 32)),
        arrival_rate=float(rng.choice((300, 600, 1200))) if open_loop else 0.0,
        extra_delay_mean=rng.choice((0.0, 0.0, 0.001, 0.003)),
        view_timeout=view_timeout,
        runtime=runtime,
        warmup=0.2,
        cooldown=0.4,
        seed=rng.randint(0, 2**31 - 1),
        cost_profile="fast",
    )

    events, quiet_after, byz_total = _draw_timeline(rng, config)
    # Clients stop at warmup+runtime, so the post-heal commit window the
    # liveness oracle demands must fit inside the offered-load interval.
    grace = max(0.3, 4.0 * view_timeout)
    window = (config.warmup + config.runtime) - (quiet_after + grace)
    # Liveness is only demanded for benign-fault cases: a permanent Byzantine
    # replica can legitimately zero a chained protocol's throughput (e.g. a
    # silent leader in a 4-node round-robin rotation breaks HotStuff's
    # three-consecutive-views commit rule forever — the paper's Fig. 10/11
    # attack degradation).  Byzantine cases keep all the safety oracles.
    eligible = byz_total == 0 and window >= max(0.25, 3.0 * view_timeout)

    case = FuzzCase(
        seed=seed,
        index=index,
        config=config,
        scenario=Scenario(name=f"fuzz-{seed}-{index}", events=events),
        quiet_after=quiet_after,
        liveness_grace=grace,
        liveness_eligible=eligible,
    )
    case.config.validate()
    return case


def generate_cases(seed: int, budget: int, start: int = 0) -> List[FuzzCase]:
    """The first ``budget`` cases of campaign ``seed``, starting at ``start``."""
    return [generate_case(seed, index) for index in range(start, start + budget)]


def _draw_timeline(rng: random.Random, config: Configuration):
    """Sequential, non-overlapping fault episodes within the f-bound.

    Returns ``(events, quiet_after, permanent_byzantine_total)``.  Episodes
    occupy ``[warmup, warmup + 0.5 * runtime]`` so the tail of the offered
    load is a healed, quiet window the liveness oracle can demand commits in.
    """
    f = (config.num_nodes - 1) // 3
    node_ids = config.node_ids()
    byz_total = config.byzantine_nodes
    # Honest, non-observer replicas are the fault victims: r0 stays up so
    # the metrics/consistency observer always has a full view of the run.
    victims = [n for n in node_ids[1:] if n not in config.byzantine_ids()]

    events: List[ScenarioEvent] = []
    quiet_after = config.warmup
    cursor = config.warmup
    deadline = config.warmup + 0.5 * config.runtime

    for _ in range(rng.randint(0, 3)):
        start = round(cursor + rng.uniform(0.05, 0.15), 3)
        duration = round(rng.uniform(0.1, 0.25), 3)
        if start + duration > deadline:
            break
        kind = rng.choice(EPISODE_KINDS)
        transient_budget = f - byz_total  # concurrent faults still allowed

        if kind == "crash" and transient_budget >= 1:
            count = rng.randint(1, min(transient_budget, len(victims)))
            for victim in rng.sample(victims, count):
                events.append(CrashReplica(at=start, replica=victim))
                events.append(RecoverReplica(at=start + duration, replica=victim))
        elif kind == "partition" and transient_budget >= 1:
            size = rng.randint(1, min(transient_budget, len(victims)))
            minority = rng.sample(victims, size)
            majority = [n for n in node_ids if n not in minority]
            events.append(
                Partition(at=start, groups=[minority, majority], duration=duration)
            )
        elif kind == "fluctuation":
            events.append(
                NetworkFluctuation(
                    at=start,
                    duration=duration,
                    min_delay=0.001,
                    max_delay=round(0.2 * config.view_timeout, 4),
                )
            )
        elif kind == "set-rate" and config.arrival_rate > 0:
            factor = rng.choice((0.5, 1.5, 2.0))
            events.append(
                SetArrivalRate(at=start, rate=round(config.arrival_rate * factor, 1))
            )
        elif kind == "set-byzantine" and byz_total < f and victims:
            victim = rng.choice(victims)
            victims.remove(victim)  # permanently corrupted; no longer a victim
            byz_total += 1
            events.append(
                SetByzantine(
                    at=start, replica=victim, strategy=rng.choice(STRATEGY_POOL)
                )
            )
        else:
            continue  # kind not applicable under the current fault budget
        cursor = start + duration
        quiet_after = max(quiet_after, cursor)

    return events, quiet_after, byz_total
