"""Post-run invariant oracles: what "the protocol stayed correct" means.

Each oracle is a function from an :class:`OracleContext` (the finished
cluster with all per-replica state, the run's :class:`ScenarioResult`, and —
for generated cases — the :class:`~repro.fuzz.generator.FuzzCase` metadata)
to a list of human-readable problem strings.  Oracles are an extension
point, registered exactly like protocols and strategies::

    @register_oracle("no-empty-batches")
    def no_empty_batches(ctx):
        return [f"{r.node_id} proposed an empty block"
                for r in ctx.honest_replicas() if ...]

The built-ins check the paper's safety claims from three angles plus a
conditional liveness claim:

* **agreement** — no two honest replicas commit conflicting chains: the
  consistency hash of the common committed prefix must match pairwise, and
  no honest replica may have counted a local safety violation (a conflicting
  commit attempt raises inside the forest).
* **certified-safety** — no view certifies two different blocks anywhere in
  the honest replicas' collective view of the chain; with intersecting
  quorums, two QCs in one view require an honest double-vote.
* **dedup** — no transaction appears twice in one replica's committed chain
  (the executor's dedup would mask the double-apply; the chain itself must
  already be duplicate-free).
* **liveness** — commits resume after the last scheduled fault heals.  Only
  applies to cases the generator marked eligible: benign-fault cases (no
  Byzantine replica — a rotating silent leader can legitimately zero a
  chained protocol's throughput) whose faults all heal early enough to
  leave a demanded-commit window.  Hand-built audits skip it.

Oracles never *prove* correctness — they are falsifiers.  The negative
control in ``tests/test_fuzz_negative.py`` demonstrates they can actually
fail: an equivocating static leader over a sub-``2f+1`` quorum threshold
trips **agreement** (and usually **certified-safety**) reproducibly.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.plugins import Registry

#: The invariant-oracle extension point.  Values are callables taking an
#: :class:`OracleContext` and returning a list of problem strings.
ORACLES: Registry[Callable[["OracleContext"], List[str]]] = Registry("invariant oracle")


def register_oracle(name: str, *aliases: str, override: bool = False) -> Callable:
    """Decorator registering an invariant oracle under ``name``."""
    return ORACLES.register(name, *aliases, override=override)


def available_oracles() -> List[str]:
    """Canonical names of the registered oracles, in registration order."""
    return ORACLES.available()


@dataclass
class Violation:
    """One oracle failure: which invariant broke and how."""

    oracle: str
    detail: str

    def to_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "detail": self.detail}

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Violation":
        return cls(oracle=data["oracle"], detail=data["detail"])


@dataclass
class OracleContext:
    """Everything an oracle may inspect after a run."""

    #: The finished cluster, with every replica's forest/stats/executor live.
    cluster: Any
    #: The run's :class:`~repro.scenario.runner.ScenarioResult`.
    result: Any
    #: Generator metadata (:class:`~repro.fuzz.generator.FuzzCase`); ``None``
    #: for hand-built audits, which disables the conditional liveness oracle.
    case: Optional[Any] = None

    def honest_replicas(self) -> List[Any]:
        """Replicas that are honest *now*: configured honest and never
        converted to a Byzantine strategy by a ``set-byzantine`` event."""
        byzantine = set(self.cluster.config.byzantine_ids())
        return [
            replica
            for replica in self.cluster.replicas.values()
            if replica.node_id not in byzantine and type(replica).strategy == "honest"
        ]


def check_invariants(
    ctx: OracleContext, oracles: Optional[List[str]] = None
) -> List[Violation]:
    """Run the named oracles (default: all registered) over a finished run."""
    names = oracles if oracles is not None else available_oracles()
    violations: List[Violation] = []
    for name in names:
        canonical = ORACLES.canonical(name)
        for detail in ORACLES.get(name)(ctx):
            violations.append(Violation(oracle=canonical, detail=detail))
    return violations


# ----------------------------------------------------------------------
# built-in oracles
# ----------------------------------------------------------------------
@register_oracle("agreement")
def agreement(ctx: OracleContext) -> List[str]:
    """No two honest replicas commit conflicting chains."""
    problems: List[str] = []
    honest = ctx.honest_replicas()
    if len(honest) < 2:
        return problems
    for replica in honest:
        if replica.stats.safety_violations:
            problems.append(
                f"{replica.node_id} recorded {replica.stats.safety_violations} "
                f"conflicting-commit attempt(s) in its forest"
            )
    common = min(r.forest.committed_height for r in honest)
    hashes = {r.node_id: r.forest.consistency_hash(common) for r in honest}
    if len(set(hashes.values())) > 1:
        groups: Dict[str, List[str]] = {}
        for node_id, chain_hash in hashes.items():
            groups.setdefault(chain_hash[:12], []).append(node_id)
        split = "; ".join(
            f"{'/'.join(sorted(ids))} -> {h}" for h, ids in sorted(groups.items())
        )
        problems.append(
            f"honest replicas committed divergent chains at height {common}: {split}"
        )
    return problems


@register_oracle("certified-safety")
def certified_safety(ctx: OracleContext) -> List[str]:
    """No view certifies two different blocks across the honest replicas."""
    by_view: Dict[int, Dict[str, List[str]]] = {}
    for replica in ctx.honest_replicas():
        for vertex in replica.forest.certified_vertices():
            qc = vertex.qc
            if qc is None:
                continue
            holders = by_view.setdefault(qc.view, {}).setdefault(qc.block_id, [])
            holders.append(replica.node_id)
    problems: List[str] = []
    for view in sorted(by_view):
        blocks = by_view[view]
        if len(blocks) > 1:
            detail = "; ".join(
                f"{block_id[:12]} (seen by {'/'.join(sorted(set(ids)))})"
                for block_id, ids in sorted(blocks.items())
            )
            problems.append(f"view {view} certified {len(blocks)} blocks: {detail}")
    return problems


@register_oracle("dedup", "no-double-apply")
def dedup(ctx: OracleContext) -> List[str]:
    """No transaction is committed twice in any honest replica's chain."""
    problems: List[str] = []
    for replica in ctx.honest_replicas():
        counts = Counter(replica.forest.committed_transactions())
        duplicated = [txid for txid, n in counts.items() if n > 1]
        if duplicated:
            sample = ", ".join(sorted(duplicated)[:3])
            problems.append(
                f"{replica.node_id} committed {len(duplicated)} transaction(s) "
                f"more than once (e.g. {sample})"
            )
    return problems


@register_oracle("liveness", "conditional-liveness")
def liveness(ctx: OracleContext) -> List[str]:
    """Commits resume after the last transient fault heals.

    Conditional: only generated cases the generator marked eligible apply —
    benign-fault schedules (no Byzantine replicas) whose faults all heal
    early enough to leave a demanded-commit window before the clients stop.
    The check itself is black-box: the observer's throughput timeline must
    show at least one committed transaction after ``quiet_after + grace``.
    """
    from repro.experiments.spec import DEFAULT_BUCKET

    case = ctx.case
    if case is None or not getattr(case, "liveness_eligible", False):
        return []
    resume_after = case.quiet_after + case.liveness_grace
    # Clients stop submitting at warmup+runtime, so commits legitimately
    # drain during cooldown — only demand commits while load is offered.
    stop = case.config.warmup + case.config.runtime
    committed_after = sum(
        tps
        for t, tps in ctx.result.timeline
        # Bucket [t, t+width) overlaps the demanded window.
        if t + DEFAULT_BUCKET > resume_after and t < stop and tps > 0
    )
    if committed_after > 0:
        return []
    return [
        f"no transaction committed between t={resume_after:.2f} (last fault "
        f"healed at {case.quiet_after:.2f} + {case.liveness_grace:.2f} grace) "
        f"and the end of offered load t={stop:.2f}, despite every transient "
        f"fault having healed"
    ]
