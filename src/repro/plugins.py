"""Generic plugin registries: the framework's extension-point machinery.

The paper's central claim is that a chained-BFT framework should let
researchers plug in new protocols, attacks, and environments without
touching the shared machinery.  This module provides the one mechanism every
extension point uses: a :class:`Registry` mapping names (and aliases) to
implementations, populated either with the decorator form::

    PROTOCOLS = Registry("protocol")

    @PROTOCOLS.register("myproto", "mp")
    class MyProtocolSafety(Safety):
        ...

or imperatively with :meth:`Registry.add`.  Lookups normalize case, dashes,
and underscores (``"Fast-HotStuff"`` finds ``"fasthotstuff"``), unknown
names raise a :class:`RegistryError` listing what *is* available, and
``available()`` returns canonical names in registration order — so listings
like ``available_protocols()`` are always derived from the registry contents
rather than hand-maintained.

The concrete registries live next to the interfaces they extend:

===================  =============================  ==========================
extension point      registry                       module
===================  =============================  ==========================
protocols            ``PROTOCOLS``                  ``repro.protocols.registry``
Byzantine behaviour  ``STRATEGIES``                 ``repro.core.byzantine``
leader election      ``ELECTIONS``                  ``repro.election.election``
network delays       ``DELAY_MODELS``               ``repro.network.delays``
client workloads     ``CLIENTS``                    ``repro.client.client``
scenario events      ``SCENARIO_EVENTS``            ``repro.scenario.events``
message handlers     ``MESSAGE_HANDLERS``           ``repro.core.dispatch``
invariant oracles    ``ORACLES``                    ``repro.fuzz.invariants``
trace sinks          ``TRACE_SINKS``                ``repro.obs.trace``
===================  =============================  ==========================

``repro.api`` re-exports one ``register_*`` helper per registry, and
``api.available()`` lists every registry's contents under the same keys;
``docs/EXTENDING.md`` is the guided tour.
"""

from __future__ import annotations

from typing import Callable, Dict, Generic, List, Optional, TypeVar

T = TypeVar("T")


def normalize_name(name: str) -> str:
    """Canonicalize a lookup key: lowercase, drop dashes and underscores."""
    return name.lower().replace("-", "").replace("_", "")


class RegistryError(ValueError):
    """An unknown or conflicting name was used with a :class:`Registry`."""


class Registry(Generic[T]):
    """A name -> implementation mapping with aliases and decorator support."""

    def __init__(self, kind: str) -> None:
        #: Human-readable name of the extension point ("protocol", ...);
        #: used in error messages.
        self.kind = kind
        self._entries: Dict[str, T] = {}
        #: normalized alias -> canonical name (canonical maps to itself).
        self._aliases: Dict[str, str] = {}
        #: canonical names in registration order.
        self._order: List[str] = []
        #: Bumped on every add/unregister so callers may cache resolutions
        #: and cheaply detect staleness (see ``repro.core.dispatch``).
        self.version = 0

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add(self, name: str, obj: T, *aliases: str, override: bool = False) -> T:
        """Register ``obj`` under ``name`` (and ``aliases``); return ``obj``."""
        if not name:
            raise RegistryError(f"{self.kind} name must be non-empty")
        for key in (name, *aliases):
            canonical = self._aliases.get(normalize_name(key))
            if canonical is not None and not override:
                raise RegistryError(
                    f"{self.kind} name {key!r} is already registered "
                    f"(for {canonical!r}); pass override=True to replace it"
                )
        if override:
            for key in (name, *aliases):
                shadowed = self._aliases.get(normalize_name(key))
                # Re-pointing the alias that *is* an entry's canonical name
                # orphans that entry: evict it so available()/items() never
                # advertise something lookups can no longer reach.
                if (
                    shadowed is not None
                    and shadowed != name
                    and normalize_name(shadowed) == normalize_name(key)
                ):
                    del self._entries[shadowed]
                    self._order.remove(shadowed)
                    self._aliases = {
                        a: c for a, c in self._aliases.items() if c != shadowed
                    }
        if name not in self._order:
            self._order.append(name)
        self._entries[name] = obj
        for key in (name, *aliases):
            self._aliases[normalize_name(key)] = name
        self.version += 1
        return obj

    def register(self, name: str, *aliases: str, override: bool = False) -> Callable[[T], T]:
        """Decorator form of :meth:`add`."""

        def decorator(obj: T) -> T:
            return self.add(name, obj, *aliases, override=override)

        return decorator

    def unregister(self, name: str) -> None:
        """Remove an entry and every alias pointing at it (mostly for tests)."""
        canonical = self.canonical(name)
        del self._entries[canonical]
        self._order.remove(canonical)
        self._aliases = {a: c for a, c in self._aliases.items() if c != canonical}
        self.version += 1

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def canonical(self, name: str) -> str:
        """Resolve ``name`` (or an alias) to its canonical name."""
        canonical = self._aliases.get(normalize_name(name))
        if canonical is None:
            raise RegistryError(
                f"unknown {self.kind} {name!r}; available: {', '.join(self.available())}"
            )
        return canonical

    def get(self, name: str) -> T:
        """Look up an implementation; raise :class:`RegistryError` if unknown."""
        return self._entries[self.canonical(name)]

    def __contains__(self, name: str) -> bool:
        return normalize_name(name) in self._aliases

    def available(self) -> List[str]:
        """Canonical names in registration order."""
        return list(self._order)

    def aliases(self, name: str) -> List[str]:
        """All non-canonical aliases of ``name``, sorted."""
        canonical = self.canonical(name)
        return sorted(
            a for a, c in self._aliases.items()
            if c == canonical and a != normalize_name(canonical)
        )

    def items(self) -> List[tuple]:
        """(canonical name, implementation) pairs in registration order."""
        return [(name, self._entries[name]) for name in self._order]

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Registry({self.kind!r}, {self.available()})"


def lazy_import(module_names: List[str]) -> Callable[[], None]:
    """Build an idempotent loader that imports ``module_names`` on first call.

    Registries populated by decorators need the defining modules imported
    before lookups; calling the returned function from the registry's factory
    functions avoids circular imports at module load time.  A failed import
    propagates and is retried on the next call (the loader only latches once
    every module imported cleanly); re-entrant calls during the import pass
    return immediately.
    """
    state = {"loaded": False, "loading": False}

    def ensure() -> None:
        if state["loaded"] or state["loading"]:
            return
        import importlib

        state["loading"] = True
        try:
            for module in module_names:
                importlib.import_module(module)
            state["loaded"] = True
        finally:
            state["loading"] = False

    return ensure
