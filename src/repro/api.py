"""The public facade: one module for running, sweeping, and extending.

Everything a user script needs lives here::

    from repro import api

    # run one experiment (config may be a Configuration or a plain dict)
    result = api.run({"protocol": "hotstuff", "num_nodes": 4, "runtime": 2.0})

    # run a fault schedule declaratively
    result = api.run(config, scenario={"events": [
        {"kind": "crash-replica", "at": 3.0, "replica": "last"},
        {"kind": "recover-replica", "at": 6.0, "replica": "last"},
    ]})

    # sweep client load to a latency/throughput curve
    points = api.sweep(config, concurrency_levels=[8, 32, 128])

    # the same protocol stack over real asyncio TCP with Ed25519 signing
    # (the "implementation" axis of fig. 8; same result schema as api.run)
    result = api.deploy({"protocol": "hotstuff", "num_nodes": 4, "runtime": 2.0})

    # declare a whole experiment grid and run it as a campaign — in
    # parallel worker processes, resumable through a result store
    spec = api.grid(config, protocol=["hotstuff", "2chainhs"],
                    block_size=[100, 400])
    result = api.campaign(spec, workers=4, store="results/")

    # collapse repetitions into mean ± 95% CI and render paper figures,
    # purely from stored records (no re-execution)
    groups = api.aggregate("results/")
    paths = api.plot("results/", out="figures/")

    # fuzz: randomized fault/Byzantine scenarios audited by safety oracles
    report = api.fuzz(budget=50, seed=0, store="results/")
    assert report.ok, report.violations

    # trace one run: per-replica protocol event records + latency histograms
    traced = api.trace(config, scenario={"events": [
        {"kind": "crash-replica", "at": 0.4, "replica": "last"}]})
    traced.save("run.trace.jsonl")                # deterministic JSONL
    traced.save("run.perfetto.json", "perfetto")  # open in ui.perfetto.dev

    # extend the framework: every extension point is a register_* decorator
    @api.register_protocol("myproto")
    class MyProtocolSafety(Safety): ...

``run``/``build``/``sweep`` accept either a :class:`Configuration` or a
JSON-style dict (ignoring unknown keys, like Bamboo's config file);
scenarios likewise accept a :class:`Scenario` or its dict form.

:func:`available` lists every registered implementation per extension point,
derived from the registries themselves, and one ``register_*`` helper is
re-exported per registry:

=====================  ===========================  =======================
``available()`` key    helper                       extended contract
=====================  ===========================  =======================
``protocols``          ``register_protocol``        ``Safety`` subclass
``strategies``         ``register_strategy``        ``Replica`` subclass
``elections``          ``register_election``        ``LeaderElection``
``delay_models``       ``register_delay_model``     ``DelayModel``
``clients``            ``register_client``          ``ClientBase``
``scenario_events``    ``register_scenario_event``  ``ScenarioEvent``
``message_handlers``   ``register_message_handler`` handler callable
``oracles``            ``register_oracle``          invariant callable
``trace_sinks``        ``register_trace_sink``      trace export callable
=====================  ===========================  =======================

``docs/EXTENDING.md`` walks through every row with runnable examples —
including the message-handler registry that the block-fetch subsystem
(:mod:`repro.sync`) uses to plug its ``BlockRequest`` / ``BlockResponse``
handlers into the replica.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.analysis import GroupSummary, aggregate_records, render_store
from repro.bench.config import Configuration, ConfigurationError
from repro.bench.runner import Cluster, ExperimentResult, build_cluster, run_experiment
from repro.bench.sweeps import SweepPoint, saturation_sweep
from repro.client.client import available_clients, register_client
from repro.experiments import (
    CampaignResult,
    CampaignRunner,
    ExperimentSpec,
    ResultStore,
)
from repro.core.byzantine import available_strategies, register_strategy
from repro.core.dispatch import available_message_handlers, register_message_handler
from repro.election.election import available_elections, register_election
from repro.network.delays import available_delay_models, register_delay_model
from repro.fuzz import (
    FuzzReport,
    available_oracles,
    register_oracle,
    replay,
    run_fuzz,
)
from repro.fuzz import audit as _fuzz_audit
from repro.obs import (
    TracedRun,
    Tracer,
    available_trace_sinks,
    register_trace_sink,
    tracing,
)
from repro.protocols.registry import available_protocols, register_protocol
from repro.scenario import (
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    available_scenario_events,
    register_scenario_event,
)

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "Cluster",
    "Configuration",
    "ConfigurationError",
    "ExperimentResult",
    "ExperimentSpec",
    "FuzzReport",
    "GroupSummary",
    "ResultStore",
    "Scenario",
    "ScenarioResult",
    "SweepPoint",
    "TracedRun",
    "Tracer",
    "aggregate",
    "audit",
    "available",
    "build",
    "campaign",
    "deploy",
    "fuzz",
    "grid",
    "load_config",
    "plot",
    "register_client",
    "register_delay_model",
    "register_election",
    "register_message_handler",
    "register_oracle",
    "register_protocol",
    "register_scenario_event",
    "register_strategy",
    "register_trace_sink",
    "replay",
    "run",
    "sweep",
    "trace",
    "tracing",
]

ConfigLike = Union[Configuration, Dict]
ScenarioLike = Union[Scenario, Dict, None]


def _coerce_config(config: ConfigLike) -> Configuration:
    if isinstance(config, Configuration):
        return config
    if isinstance(config, dict):
        return Configuration.from_dict(config)
    raise TypeError(f"expected Configuration or dict, got {type(config).__name__}")


def _coerce_scenario(scenario: ScenarioLike) -> Optional[Scenario]:
    if scenario is None or isinstance(scenario, Scenario):
        return scenario
    if isinstance(scenario, dict):
        return Scenario.from_dict(scenario)
    raise TypeError(f"expected Scenario, dict, or None, got {type(scenario).__name__}")


def load_config(source: Union[str, Path, Dict]) -> Configuration:
    """Build a :class:`Configuration` from a dict or a JSON file path."""
    if isinstance(source, dict):
        return Configuration.from_dict(source)
    data = json.loads(Path(source).read_text())
    return Configuration.from_dict(data.get("config", data))


def build(config: ConfigLike, scenario: ScenarioLike = None) -> Cluster:
    """Build (but do not run) a fully wired cluster.

    With a ``scenario``, its events are already scheduled on the returned
    cluster; call ``cluster.start()`` and ``cluster.run()`` yourself to
    drive it manually.
    """
    coerced = _coerce_config(config)
    declarative = _coerce_scenario(scenario)
    if declarative is None:
        return build_cluster(coerced)
    return ScenarioRunner(coerced, declarative).build()


def run(
    config: ConfigLike,
    scenario: ScenarioLike = None,
    bucket: float = 0.5,
) -> Union[ExperimentResult, ScenarioResult]:
    """Run one experiment, optionally under a declarative fault schedule.

    Without a scenario this is the classic measured run and returns an
    :class:`ExperimentResult`; with one it returns a :class:`ScenarioResult`
    whose ``timeline`` (bucketed at ``bucket`` seconds) shows throughput
    around each injected event.
    """
    coerced = _coerce_config(config)
    declarative = _coerce_scenario(scenario)
    if declarative is None:
        return run_experiment(coerced)
    return ScenarioRunner(coerced, declarative, bucket=bucket).run()


def deploy(config: ConfigLike, host: str = "127.0.0.1") -> ExperimentResult:
    """Run one experiment in deployment mode: real TCP, real signing.

    The identical protocol stack (safety rules, pacemaker, quorum logic,
    mempool, clients) runs over asyncio loopback sockets with length-prefixed
    JSON frames and Ed25519 vote signatures instead of the simulated network
    and cost model.  Returns the same :class:`ExperimentResult` record shape
    as :func:`run`, so stored model and deploy runs plot onto one figure
    (the fig. 8 "simulated vs. implementation" comparison).

    Equivalent to ``api.run({**config, "mode": "deploy"})``; the transport
    runtime is imported lazily so model-only users never touch asyncio.
    """
    from repro.transport.runtime import run_deployment

    coerced = _coerce_config(config)
    if coerced.mode != "deploy":
        coerced = coerced.replace(mode="deploy")
    return run_deployment(coerced, host=host)


def sweep(
    config: ConfigLike,
    concurrency_levels: Optional[Sequence[int]] = None,
    arrival_rates: Optional[Sequence[float]] = None,
    workers: int = 1,
    store: Optional[Union[ResultStore, str, Path]] = None,
) -> List[SweepPoint]:
    """Sweep client load and return one latency/throughput point per level.

    ``workers`` and ``store`` are forwarded to the underlying campaign
    (parallel execution and resume), like :func:`campaign`.
    """
    return saturation_sweep(
        _coerce_config(config),
        concurrency_levels=concurrency_levels,
        arrival_rates=arrival_rates,
        workers=workers,
        store=store,
    )


SpecLike = Union[ExperimentSpec, Dict, str, Path]


def grid(
    base: ConfigLike,
    name: str = "grid",
    scenario: ScenarioLike = None,
    repetitions: int = 1,
    seed_policy: str = "increment",
    **axes: Sequence,
) -> ExperimentSpec:
    """Declare a Cartesian experiment grid over configuration fields.

    Every keyword argument is one grid axis (a list of values for that
    :class:`Configuration` field); the expansion is their cross product over
    ``base``.  For zipped axes, explicit point lists, or tags, build an
    :class:`ExperimentSpec` directly. ::

        spec = api.grid(base, protocol=["hotstuff", "2chainhs"],
                        block_size=[100, 400], repetitions=3)
    """
    for field, values in axes.items():
        # A bare string would iterate per character into a nonsense grid.
        if isinstance(values, str) or not isinstance(values, (list, tuple, range)):
            raise TypeError(
                f"grid axis {field!r} must be a list of values, got {values!r}"
            )
    return ExperimentSpec(
        name=name,
        base=_coerce_config(base),
        grid={field: list(values) for field, values in axes.items()},
        scenario=_coerce_scenario(scenario),
        repetitions=repetitions,
        seed_policy=seed_policy,
    )


def campaign(
    spec: SpecLike,
    workers: int = 1,
    store: Optional[Union[ResultStore, str, Path]] = None,
    force: bool = False,
    progress=None,
) -> CampaignResult:
    """Run an experiment campaign: expand, execute, persist, resume.

    ``spec`` may be an :class:`ExperimentSpec`, its dict form, or a path to
    a JSON file.  ``workers > 1`` fans the pending runs out over that many
    processes (records are bit-identical to a serial run, persisted as each completes); ``store`` names a
    result-store directory — runs whose content hash is already stored are
    served from it without executing (pass ``force=True`` to re-run).
    ``progress=True`` prints a live done/total + rate + ETA + straggler line
    to stderr as each run completes (or pass a
    :class:`repro.obs.CampaignProgress` to customise it).
    """
    if isinstance(spec, (str, Path)):
        spec = ExperimentSpec.from_json(Path(spec).read_text())
    elif isinstance(spec, dict):
        spec = ExperimentSpec.from_dict(spec)
    elif not isinstance(spec, ExperimentSpec):
        raise TypeError(
            f"expected ExperimentSpec, dict, or path, got {type(spec).__name__}"
        )
    return CampaignRunner(
        spec, workers=workers, store=store, force=force, progress=progress
    ).run()


RecordsLike = Union[CampaignResult, ResultStore, Sequence[Dict], str, Path]


def _coerce_records(source: RecordsLike, campaign: Optional[str] = None) -> List[Dict]:
    if isinstance(source, CampaignResult):
        records = source.records
    elif isinstance(source, ResultStore):
        records = source.records(campaign=campaign)
        campaign = None
    elif isinstance(source, (str, Path)):
        records = ResultStore(source).records(campaign=campaign)
        campaign = None
    else:
        records = list(source)
    if campaign is not None:
        records = [r for r in records if r.get("campaign") == campaign]
    return list(records)


def aggregate(
    source: RecordsLike,
    campaign: Optional[str] = None,
    metrics: Optional[Sequence[str]] = None,
) -> List[GroupSummary]:
    """Collapse stored repetitions into mean / stddev / 95%-CI aggregates.

    ``source`` may be a :class:`CampaignResult`, a :class:`ResultStore` (or
    its directory path), or a plain list of record dicts; nothing is ever
    re-executed.  Groups are the logical points of the campaign (params sans
    the ``_repetition`` tag), in expansion order. ::

        result = api.campaign(api.grid(base, protocol=["hotstuff", "2chainhs"],
                                       repetitions=5), store="results/")
        for group in api.aggregate(result):
            tput = group.metric("throughput_tps")
            print(group.label(), f"{tput.mean:.0f} ±{tput.ci95:.0f} Tx/s")
    """
    return aggregate_records(_coerce_records(source, campaign), metrics=metrics)


def plot(
    source: Union[ResultStore, str, Path],
    out: Union[str, Path] = "figures",
    campaigns: Optional[Sequence[str]] = None,
    figure=None,
) -> List[Path]:
    """Render stored campaigns as standalone SVG figures (with error bars).

    One SVG per campaign is written under ``out``; campaigns whose name
    starts with a known figure key (``fig8``-``fig15``, ``table2``,
    ``ablation``) get that paper figure's axes, others a generic chart (or
    pass ``figure`` to force one).  Purely record-driven: the plot step
    executes zero simulations.
    """
    store = source if isinstance(source, ResultStore) else ResultStore(source)
    return render_store(store, out, campaigns=campaigns, figure=figure)


def fuzz(
    budget: int = 50,
    seed: int = 0,
    store: Optional[Union[ResultStore, str, Path]] = None,
    artifacts: Optional[str] = None,
    shrink: bool = True,
) -> FuzzReport:
    """Run a randomized adversarial campaign against the safety oracles.

    Executes the first ``budget`` generated cases of ``seed`` — each an
    ordinary configuration plus a bounded fault/Byzantine timeline — and
    audits every finished cluster with the registered invariant oracles
    (agreement, certified-safety, dedup, conditional liveness, plus any
    added via :func:`register_oracle`).  Same seed, same cases: re-running
    appends byte-identical records.  Violating cases dump replayable JSON
    artifacts and a greedily shrunken ``-min`` variant; pass one to
    :func:`replay` to re-execute it. ::

        report = api.fuzz(budget=50, seed=0, store="results/")
        assert report.ok, report.violations
    """
    if isinstance(store, Path):
        store = str(store)
    return run_fuzz(
        budget=budget, seed=seed, store=store, artifacts=artifacts, shrink=shrink
    )


def trace(
    config: ConfigLike,
    scenario: ScenarioLike = None,
    categories=None,
    capacity: Optional[int] = None,
    out: Optional[Union[str, Path]] = None,
    bucket: float = 0.5,
) -> TracedRun:
    """Run one experiment with protocol-event tracing enabled.

    Installs a fresh :class:`repro.obs.Tracer` for the duration of the run
    (restoring any previously installed tracer afterwards) and returns a
    :class:`repro.obs.TracedRun` bundling the ordinary result with the
    trace.  ``categories`` filters what is recorded (names, a bitmask, or
    ``None`` for everything); ``capacity`` bounds the per-replica ring
    buffers; ``out`` additionally writes the deterministic JSONL dump. ::

        traced = api.trace({"num_nodes": 4, "runtime": 1.0, "seed": 7})
        print(len(traced.records()))
        traced.save("run.perfetto.json", "perfetto")

    Tracing never changes run semantics: the result (and any stored
    record) is identical with tracing on or off.
    """
    kwargs = {"categories": categories}
    if capacity is not None:
        kwargs["capacity"] = capacity
    with tracing(**kwargs) as tracer:
        result = run(config, scenario=scenario, bucket=bucket)
    traced = TracedRun(result=result, tracer=tracer)
    if out is not None:
        traced.save(out)
    return traced


def audit(
    config: ConfigLike,
    scenario: ScenarioLike = None,
    oracles: Optional[List[str]] = None,
):
    """Run one hand-built configuration through the full oracle audit.

    Accepts the same ``Configuration``-or-dict (and ``Scenario``-or-dict)
    inputs as :func:`run`; returns the :class:`repro.fuzz.CaseOutcome`
    whose ``violations`` list is empty when every invariant held.  The
    conformance-matrix tests use this to ask "does protocol P survive
    attack A?" without generating fuzz cases.
    """
    return _fuzz_audit(_coerce_config(config), _coerce_scenario(scenario), oracles)


def available(kind: Optional[str] = None) -> Union[Dict[str, List[str]], List[str]]:
    """List registered implementations, per extension point.

    With no argument, returns a dict mapping each extension point to its
    canonical names; with one ("protocols", "strategies", "elections",
    "delay_models", "clients", "scenario_events", "message_handlers",
    "oracles", "trace_sinks"), returns that list.
    """
    listings = {
        "protocols": available_protocols(),
        "strategies": available_strategies(),
        "elections": available_elections(),
        "delay_models": available_delay_models(),
        "clients": available_clients(),
        "scenario_events": available_scenario_events(),
        "message_handlers": available_message_handlers(),
        "oracles": available_oracles(),
        "trace_sinks": available_trace_sinks(),
    }
    if kind is None:
        return listings
    if kind not in listings:
        raise ValueError(
            f"unknown extension point {kind!r}; available: {', '.join(listings)}"
        )
    return listings[kind]
