"""Bamboo-py: a framework for prototyping and evaluating chained-BFT protocols.

This package reproduces the system described in "Dissecting the Performance
of Chained-BFT" (ICDCS 2021): the Bamboo prototyping framework, the three
evaluated protocols (HotStuff, two-chain HotStuff, Streamlet) plus two
extensions (Fast-HotStuff and an LBFT-inspired variant), the two Byzantine
attack strategies (forking and silence), the benchmark facilities, and the
analytical queuing model used to validate the implementation.

Quick start::

    from repro import Configuration, run_experiment

    config = Configuration(protocol="hotstuff", num_nodes=4, block_size=400,
                           runtime=2.0, cost_profile="fast")
    result = run_experiment(config)
    print(result.metrics.as_dict())

See ``examples/`` for runnable scenarios and ``benchmarks/`` for the
regeneration of every table and figure in the paper's evaluation.
"""

from repro.bench.config import Configuration
from repro.bench.metrics import MetricsCollector, RunMetrics
from repro.bench.runner import Cluster, ExperimentResult, build_cluster, run_experiment
from repro.bench.sweeps import SweepPoint, saturation_sweep
from repro.bench.timeline import ResponsivenessScenario, run_responsiveness
from repro.core.byzantine import ForkingReplica, SilentReplica
from repro.core.replica import Replica, ReplicaSettings
from repro.model.predictions import AnalyticalModel, ModelParameters
from repro.protocols.registry import available_protocols, make_safety

__version__ = "1.0.0"

__all__ = [
    "AnalyticalModel",
    "Cluster",
    "Configuration",
    "ExperimentResult",
    "ForkingReplica",
    "MetricsCollector",
    "ModelParameters",
    "Replica",
    "ReplicaSettings",
    "ResponsivenessScenario",
    "RunMetrics",
    "SilentReplica",
    "SweepPoint",
    "available_protocols",
    "build_cluster",
    "make_safety",
    "run_experiment",
    "run_responsiveness",
    "saturation_sweep",
    "__version__",
]
