"""Bamboo-py: a framework for prototyping and evaluating chained-BFT protocols.

This package reproduces the system described in "Dissecting the Performance
of Chained-BFT" (ICDCS 2021): the Bamboo prototyping framework, the three
evaluated protocols (HotStuff, two-chain HotStuff, Streamlet) plus two
extensions (Fast-HotStuff and an LBFT-inspired variant), the two Byzantine
attack strategies (forking and silence), the benchmark facilities, and the
analytical queuing model used to validate the implementation.

The public surface is the :mod:`repro.api` facade::

    from repro import api

    result = api.run({"protocol": "hotstuff", "num_nodes": 4,
                      "block_size": 400, "runtime": 2.0, "cost_profile": "fast"})
    print(result.metrics.as_dict())

Every part of an experiment is an extension point backed by a registry
(:mod:`repro.plugins`): protocols, Byzantine strategies, leader elections,
network delay models, client types, and scenario events.  Register your own
with the ``api.register_*`` decorators and select them by name from the
configuration; fault schedules are declarative :class:`~repro.scenario.Scenario`
objects that serialize to JSON.  See ``README.md`` for a worked example and
``examples/`` / ``benchmarks/`` for runnable scenarios and the regeneration
of every table and figure in the paper's evaluation.
"""

from repro import api
from repro.bench.config import Configuration, ConfigurationError
from repro.bench.metrics import MetricsCollector, RunMetrics
from repro.bench.runner import Cluster, ExperimentResult, build_cluster, run_experiment
from repro.bench.sweeps import SweepPoint, saturation_sweep
from repro.bench.timeline import ResponsivenessScenario, run_responsiveness
from repro.core.byzantine import ForkingReplica, SilentReplica
from repro.experiments import (
    CampaignResult,
    CampaignRunner,
    ExperimentSpec,
    ResultStore,
    run_campaign,
)
from repro.core.replica import Replica, ReplicaSettings
from repro.model.predictions import AnalyticalModel, ModelParameters
from repro.plugins import Registry, RegistryError
from repro.protocols.registry import available_protocols, make_safety
from repro.scenario import Scenario, ScenarioResult, ScenarioRunner, run_scenario

__version__ = "1.2.0"

__all__ = [
    "AnalyticalModel",
    "CampaignResult",
    "CampaignRunner",
    "Cluster",
    "Configuration",
    "ConfigurationError",
    "ExperimentResult",
    "ExperimentSpec",
    "ForkingReplica",
    "MetricsCollector",
    "ModelParameters",
    "Registry",
    "RegistryError",
    "Replica",
    "ReplicaSettings",
    "ResponsivenessScenario",
    "ResultStore",
    "RunMetrics",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SilentReplica",
    "SweepPoint",
    "api",
    "available_protocols",
    "build_cluster",
    "make_safety",
    "run_campaign",
    "run_experiment",
    "run_responsiveness",
    "run_scenario",
    "saturation_sweep",
    "__version__",
]
