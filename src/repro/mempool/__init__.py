"""Memory pool of pending transactions (paper §III-E)."""

from repro.mempool.mempool import Mempool

__all__ = ["Mempool"]
