"""The mempool: a bounded bidirectional queue of pending transactions.

New transactions arrive at the back; transactions recovered from forked
(abandoned) blocks are re-inserted at the front so they are re-proposed
first — exactly the behaviour the paper relies on when measuring latency
under the forking attack (§VI-C).  Each replica has its own local mempool,
which avoids cluster-wide duplicate checks (paper §III-E).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set, Tuple

from repro.types.transaction import Transaction


class Mempool:
    """Pending-transaction queue with front re-insertion for forked blocks."""

    def __init__(self, capacity: int = 1000) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Transaction] = deque()
        self._pending_ids: Set[str] = set()
        self._proposed_ids: Set[str] = set()
        self.total_added = 0
        self.total_rejected = 0
        self.total_requeued = 0

    def __len__(self) -> int:
        return len(self._queue)

    def __contains__(self, txid: str) -> bool:
        return txid in self._pending_ids

    @property
    def is_full(self) -> bool:
        """True when the pool has reached its configured capacity."""
        return len(self._queue) >= self.capacity

    def add(self, transaction: Transaction) -> bool:
        """Append a new client transaction; returns False if rejected.

        Rejection happens when the pool is full (backpressure, the knob that
        bounds client concurrency) or when the transaction is already pending
        or already proposed.
        """
        if transaction.txid in self._pending_ids or transaction.txid in self._proposed_ids:
            self.total_rejected += 1
            return False
        if self.is_full:
            self.total_rejected += 1
            return False
        self._queue.append(transaction)
        self._pending_ids.add(transaction.txid)
        self.total_added += 1
        return True

    def requeue_front(self, transactions: Iterable[Transaction]) -> int:
        """Re-insert transactions from forked blocks at the front of the queue.

        The capacity limit is deliberately not enforced here: these
        transactions were already admitted once and dropping them would lose
        client requests.
        """
        staged: List[Transaction] = []
        for tx in transactions:
            if tx.txid in self._pending_ids:
                continue
            self._proposed_ids.discard(tx.txid)
            staged.append(tx)
        for tx in reversed(staged):
            self._queue.appendleft(tx)
            self._pending_ids.add(tx.txid)
            self.total_requeued += 1
        return len(staged)

    def next_batch(self, max_size: int) -> Tuple[Transaction, ...]:
        """Pop up to ``max_size`` transactions for a new proposal.

        Bamboo's batching strategy: take everything available up to the block
        size, even if that is fewer than a full block.
        """
        if max_size <= 0:
            return ()
        count = min(max_size, len(self._queue))
        batch = []
        for _ in range(count):
            tx = self._queue.popleft()
            self._pending_ids.discard(tx.txid)
            self._proposed_ids.add(tx.txid)
            batch.append(tx)
        return tuple(batch)

    def mark_committed(self, transactions: Iterable[Transaction]) -> None:
        """Forget transactions that have been committed (garbage collection)."""
        proposed = self._proposed_ids
        pending = self._pending_ids
        queue = self._queue
        for tx in transactions:
            txid = tx.txid
            proposed.discard(txid)
            if txid in pending:
                # Committed via another replica's proposal while still queued
                # locally; drop the local copy to avoid proposing a duplicate.
                pending.discard(txid)
                try:
                    queue.remove(tx)
                except ValueError:
                    pass

    def peek(self) -> Optional[Transaction]:
        """Return the transaction at the front without removing it."""
        if not self._queue:
            return None
        return self._queue[0]

    def snapshot_ids(self) -> List[str]:
        """Ids of all pending transactions in queue order (for tests)."""
        return [tx.txid for tx in self._queue]
