"""Metrics: throughput, latency, chain growth rate, and block interval.

The collector receives events from two sides:

* the *observer replica* (an honest replica designated by the runner) reports
  blocks added to its forest, blocks committed, forked blocks, and the views
  it enters;
* every *client* reports per-transaction latency for committed replies.

From these events the collector derives the four metrics of §IV-B:

* **throughput** — committed transactions per second inside the measurement
  window;
* **latency** — client-observed commit latency (mean and percentiles);
* **chain growth rate (CGR)** — the fraction of blocks appended to the chain
  that end up committed, which isolates the damage done by forks from the
  damage done by timeouts;
* **block interval (BI)** — the average number of views between a block's
  proposal view and the view in which the observer commits it.

Sync activity (fetch rounds and fetched blocks/bytes, see :mod:`repro.sync`)
is reported by *every* replica, not just the observer: the interesting
syncers are recovered or partition-healed replicas, which are rarely the
observer.  Sync counters are whole-run totals — catch-up typically happens
outside the measurement window, and windowing it away would hide exactly the
traffic the fault scenarios are about.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.types.block import Block


def timeline_mean(timeline, start: float, end: float) -> float:
    """Average Tx/s of the timeline buckets within ``[start, end)``.

    Works on both in-memory ``[(t, tps), ...]`` timelines and the
    ``[[t, tps], ...]`` lists found in stored campaign records.
    """
    values = [tps for t, tps in timeline if start <= t < end]
    if not values:
        return 0.0
    return sum(values) / len(values)


@dataclass
class CommittedBlockRecord:
    """One committed block as seen by the observer replica."""

    block_id: str
    proposal_view: int
    commit_view: int
    height: int
    num_transactions: int
    committed_at: float


@dataclass
class RunMetrics:
    """Summary of one experiment run."""

    throughput_tps: float
    mean_latency: float
    median_latency: float
    p99_latency: float
    chain_growth_rate: float
    block_interval: float
    committed_transactions: int
    committed_blocks: int
    blocks_added: int
    blocks_forked: int
    safety_violations: int
    latency_samples: int
    #: Block-fetch activity across the whole cluster and run (not windowed).
    sync_rounds: int = 0
    sync_blocks_fetched: int = 0
    sync_bytes_fetched: int = 0
    #: Checkpoint activity across the whole cluster and run (not windowed;
    #: see :mod:`repro.checkpoint`).  ``peak_forest_blocks`` is the largest
    #: per-replica forest observed at a checkpoint — the bounded-memory
    #: claim is that it stays O(checkpoint_interval) on long runs.
    checkpoints_taken: int = 0
    snapshots_installed: int = 0
    blocks_truncated: int = 0
    snapshot_bytes_fetched: int = 0
    peak_forest_blocks: int = 0
    #: Host-side performance of the run itself — wall-clock seconds the
    #: simulation took and scheduler events processed per wall-clock second.
    #: These measure the *simulator*, not the simulated system: they seed the
    #: perf trajectory (``tools/perf_smoke.py``) that future speedups are
    #: judged against.  Excluded from :meth:`to_dict`: they vary per host
    #: and execution, and stored campaign records must stay bit-identical
    #: across serial/parallel/resumed runs.  ``compare=False`` keeps two
    #: runs with equal simulated outcomes equal regardless of host speed.
    wall_clock_seconds: float = field(default=0.0, compare=False)
    events_per_second: float = field(default=0.0, compare=False)

    #: Fields that never enter the canonical record serialization.
    PERF_FIELDS = ("wall_clock_seconds", "events_per_second")

    def to_dict(self) -> Dict[str, float]:
        """Lossless JSON-compatible dict of the *simulated* quantities.

        This is the serialization the campaign :class:`ResultStore` records;
        :meth:`from_dict` inverts it exactly.  Host-side perf fields
        (:attr:`PERF_FIELDS`) are excluded to keep records deterministic;
        the human-facing view with millisecond conversions is
        :meth:`as_dict`.
        """
        data = dataclasses.asdict(self)
        for name in self.PERF_FIELDS:
            data.pop(name, None)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, float]) -> "RunMetrics":
        """Rebuild metrics serialized with :meth:`to_dict` (unknown keys ok)."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view used by the benchmark report printers."""
        return {
            "throughput_tps": self.throughput_tps,
            "mean_latency_ms": self.mean_latency * 1e3,
            "median_latency_ms": self.median_latency * 1e3,
            "p99_latency_ms": self.p99_latency * 1e3,
            "chain_growth_rate": self.chain_growth_rate,
            "block_interval": self.block_interval,
            "committed_transactions": self.committed_transactions,
            "committed_blocks": self.committed_blocks,
            "blocks_added": self.blocks_added,
            "blocks_forked": self.blocks_forked,
            "safety_violations": self.safety_violations,
            "sync_rounds": self.sync_rounds,
            "sync_blocks_fetched": self.sync_blocks_fetched,
            "sync_bytes_fetched": self.sync_bytes_fetched,
            "checkpoints_taken": self.checkpoints_taken,
            "snapshots_installed": self.snapshots_installed,
            "blocks_truncated": self.blocks_truncated,
            "snapshot_bytes_fetched": self.snapshot_bytes_fetched,
            "peak_forest_blocks": self.peak_forest_blocks,
            "wall_clock_seconds": self.wall_clock_seconds,
            "events_per_second": self.events_per_second,
        }


class MetricsCollector:
    """Accumulates raw events and computes the run metrics."""

    def __init__(self, window_start: float = 0.0, window_end: Optional[float] = None) -> None:
        self.window_start = window_start
        self.window_end = window_end
        self.latencies: List[Tuple[float, float]] = []
        self.rejections: List[float] = []
        self.timeouts: List[float] = []
        self.committed_blocks: List[CommittedBlockRecord] = []
        self.blocks_added: List[Tuple[float, int]] = []
        self.blocks_forked: List[Tuple[float, int]] = []
        self.views_entered: Dict[int, float] = {}
        self.safety_violations = 0
        self.observer: Optional[str] = None
        # Sync and checkpoint activity is never windowed or attributed, so
        # plain counters suffice (per-replica detail lives in each manager's
        # stats object).
        self.sync_rounds = 0
        self.sync_blocks_fetched = 0
        self.sync_bytes_fetched = 0
        self.checkpoints_taken = 0
        self.snapshots_installed = 0
        self.blocks_truncated = 0
        self.snapshot_bytes_fetched = 0
        self.peak_forest_blocks = 0

    # ------------------------------------------------------------------
    # observer-side events
    # ------------------------------------------------------------------
    def record_block_added(self, node_id: str, block: Block, now: float) -> None:
        """A block was added to the observer's forest."""
        self.blocks_added.append((now, block.view))

    def record_block_committed(self, node_id: str, block: Block, commit_view: int, now: float) -> None:
        """A block was committed by the observer."""
        self.committed_blocks.append(
            CommittedBlockRecord(
                block_id=block.block_id,
                proposal_view=block.view,
                commit_view=commit_view,
                height=block.height,
                num_transactions=block.num_transactions,
                committed_at=now,
            )
        )

    def record_block_forked(self, node_id: str, block: Block, now: float) -> None:
        """A block was abandoned (pruned from a losing branch)."""
        self.blocks_forked.append((now, block.view))

    def record_view_entered(self, node_id: str, view: int, now: float) -> None:
        """The observer entered a view."""
        self.views_entered[view] = now

    def record_safety_violation(self, node_id: str) -> None:
        """The observer detected a conflicting commit (should never happen)."""
        self.safety_violations += 1

    # ------------------------------------------------------------------
    # sync events (reported by every replica, not just the observer)
    # ------------------------------------------------------------------
    def record_sync_round(self, node_id: str, now: float) -> None:
        """A replica issued one block-fetch round (to its fanout of peers)."""
        self.sync_rounds += 1

    def record_sync_fetch(self, node_id: str, num_blocks: int, num_bytes: int, now: float) -> None:
        """A replica ingested one BlockResponse (``num_blocks`` newly inserted)."""
        self.sync_blocks_fetched += num_blocks
        self.sync_bytes_fetched += num_bytes

    # ------------------------------------------------------------------
    # checkpoint events (reported by every replica, not just the observer)
    # ------------------------------------------------------------------
    def record_forest_size(self, node_id: str, blocks: int, now: float) -> None:
        """A checkpointing replica observed its forest size at a commit.

        Reported on every commit (pre-truncation), so ``peak_forest_blocks``
        reflects what was actually held — including on runs too short to
        ever complete a checkpoint interval.
        """
        self.peak_forest_blocks = max(self.peak_forest_blocks, blocks)

    def record_checkpoint(
        self, node_id: str, height: int, blocks_truncated: int, now: float
    ) -> None:
        """A replica took a checkpoint and truncated its forest below it."""
        self.checkpoints_taken += 1
        self.blocks_truncated += blocks_truncated

    def record_snapshot_response(self, node_id: str, num_bytes: int, now: float) -> None:
        """A replica received one SnapshotResponse (counted whether or not it
        installs — negatives and stale duplicates are real traffic too, the
        same convention :meth:`record_sync_fetch` uses for response bytes)."""
        self.snapshot_bytes_fetched += num_bytes

    def record_snapshot_install(self, node_id: str, now: float) -> None:
        """A replica installed a peer's checkpoint (snapshot catch-up)."""
        self.snapshots_installed += 1

    # ------------------------------------------------------------------
    # client-side events
    # ------------------------------------------------------------------
    def record_latency(self, txid: str, latency: float, now: float) -> None:
        """A client observed a committed reply ``latency`` seconds after sending."""
        self.latencies.append((now, latency))

    def record_rejection(self, txid: str, now: float) -> None:
        """A client request was rejected by a full mempool."""
        self.rejections.append(now)

    def record_timeout(self, txid: str, now: float) -> None:
        """A client gave up on a request after its timeout."""
        self.timeouts.append(now)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def _in_window(self, timestamp: float) -> bool:
        if timestamp < self.window_start:
            return False
        if self.window_end is not None and timestamp > self.window_end:
            return False
        return True

    def _window_length(self, fallback_end: float) -> float:
        end = self.window_end if self.window_end is not None else fallback_end
        return max(end - self.window_start, 1e-9)

    def throughput(self) -> float:
        """Committed transactions per second within the window."""
        in_window = [r for r in self.committed_blocks if self._in_window(r.committed_at)]
        total = sum(r.num_transactions for r in in_window)
        last = max((r.committed_at for r in self.committed_blocks), default=self.window_start)
        return total / self._window_length(last)

    def latency_stats(self) -> Tuple[float, float, float]:
        """(mean, median, p99) of client latencies within the window."""
        samples = sorted(lat for now, lat in self.latencies if self._in_window(now))
        if not samples:
            return (0.0, 0.0, 0.0)
        mean = statistics.fmean(samples)
        median = samples[len(samples) // 2]
        p99 = samples[min(len(samples) - 1, int(0.99 * len(samples)))]
        return (mean, median, p99)

    def chain_growth_rate(self) -> float:
        """Committed blocks / blocks appended to the chain, within the window."""
        added = [t for t, _view in self.blocks_added if self._in_window(t)]
        if not added:
            return 0.0
        committed = [r for r in self.committed_blocks if self._in_window(r.committed_at)]
        return min(1.0, len(committed) / len(added))

    def block_interval(self) -> float:
        """Mean number of views from a block's proposal to its commit."""
        intervals = [
            r.commit_view - r.proposal_view
            for r in self.committed_blocks
            if self._in_window(r.committed_at)
        ]
        if not intervals:
            return 0.0
        return statistics.fmean(intervals)

    def throughput_timeline(self, bucket: float = 0.5, end: Optional[float] = None) -> List[Tuple[float, float]]:
        """Committed Tx/s per time bucket — used by the responsiveness figure."""
        if bucket <= 0:
            raise ValueError("bucket must be positive")
        last_commit = max((r.committed_at for r in self.committed_blocks), default=0.0)
        horizon = end if end is not None else last_commit
        if horizon <= 0:
            return []
        buckets: Dict[int, int] = {}
        for record in self.committed_blocks:
            index = int(record.committed_at // bucket)
            buckets[index] = buckets.get(index, 0) + record.num_transactions
        points = []
        for index in range(int(horizon // bucket) + 1):
            points.append((index * bucket, buckets.get(index, 0) / bucket))
        return points

    def summarize(self) -> RunMetrics:
        """Compute the standard summary of the run."""
        mean, median, p99 = self.latency_stats()
        in_window_commits = [r for r in self.committed_blocks if self._in_window(r.committed_at)]
        return RunMetrics(
            throughput_tps=self.throughput(),
            mean_latency=mean,
            median_latency=median,
            p99_latency=p99,
            chain_growth_rate=self.chain_growth_rate(),
            block_interval=self.block_interval(),
            committed_transactions=sum(r.num_transactions for r in in_window_commits),
            committed_blocks=len(in_window_commits),
            blocks_added=sum(1 for t, _ in self.blocks_added if self._in_window(t)),
            blocks_forked=sum(1 for t, _ in self.blocks_forked if self._in_window(t)),
            safety_violations=self.safety_violations,
            latency_samples=sum(1 for t, _ in self.latencies if self._in_window(t)),
            sync_rounds=self.sync_rounds,
            sync_blocks_fetched=self.sync_blocks_fetched,
            sync_bytes_fetched=self.sync_bytes_fetched,
            checkpoints_taken=self.checkpoints_taken,
            snapshots_installed=self.snapshots_installed,
            blocks_truncated=self.blocks_truncated,
            snapshot_bytes_fetched=self.snapshot_bytes_fetched,
            peak_forest_blocks=self.peak_forest_blocks,
        )
