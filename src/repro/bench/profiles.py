"""Cost profiles: named CPU cost models used by benchmarks and tests.

The absolute throughput of the paper's testbed (hundreds of thousands of
transactions per second on 8-vCPU machines) cannot be simulated transaction
by transaction in reasonable wall-clock time, so the benchmark profile scales
every CPU cost up by a constant factor.  Scaling all costs together preserves
the *relative* behaviour of the protocols — who saturates first, how block
size and payload shift the curves — while keeping each simulated run to a few
hundred thousand events.  ``docs/EXPERIMENTS.md`` reports both the paper's
absolute numbers and the simulator's, and compares shapes rather than
magnitudes.

Profiles
--------
``fast``
    Microsecond-scale costs, saturating in the hundreds of KTx/s.  Used by
    unit and integration tests where wall-clock speed matters more than
    saturation realism.
``standard``
    Millisecond-scale costs, saturating at a few KTx/s.  The default for all
    benchmark figures.
``ohs``
    The "original HotStuff" baseline of Fig. 9: the standard profile with a
    slightly cheaper request path, modelling the paper's explanation of the
    small gap (TCP ingest instead of HTTP, different batching, C++ vs Go).
``measured``
    All-zero modeled costs.  Used by the deployment runtime
    (:mod:`repro.transport`), where signing, verification, and serialization
    are *real* work on the wall clock — charging modeled CPU costs on top
    would double-count them.
"""

from __future__ import annotations

from repro.crypto.costs import CryptoCostModel

_FAST = CryptoCostModel()

_STANDARD = CryptoCostModel(
    sign_time=1.0e-3,
    verify_time=1.2e-3,
    per_transaction_time=1.0e-4,
    block_overhead_time=0.5e-3,
    qc_aggregate_time=1.0e-3,
    qc_verify_time=1.5e-3,
)

_OHS = _STANDARD.scaled(0.88)

_MEASURED = _FAST.scaled(0.0)

_PROFILES = {
    "fast": _FAST,
    "standard": _STANDARD,
    "ohs": _OHS,
    "measured": _MEASURED,
}


def cost_profile(name: str) -> CryptoCostModel:
    """Return a copy of the named cost profile."""
    key = name.lower()
    if key not in _PROFILES:
        raise ValueError(
            f"unknown cost profile {name!r}; expected one of {sorted(_PROFILES)}"
        )
    return _PROFILES[key].scaled(1.0)


def available_profiles() -> list:
    """Names of the available cost profiles."""
    return sorted(_PROFILES)
