"""The responsiveness experiment (paper §VI-D, Fig. 15) as a scenario.

The experiment runs four replicas under sustained load, injects ten seconds
of network fluctuation (one-way delays varying between ``fluctuation_min``
and ``fluctuation_max``), and afterwards crashes one replica (a permanent
silence attack).  The outcome is a throughput timeline: responsive protocols
(HotStuff) resume at network speed as soon as the fluctuation ends, while
protocols that rely on conservative timeouts only make progress at the pace
of their timers.

Since the declarative scenario layer exists, the whole fault schedule is two
events (:meth:`ResponsivenessScenario.to_scenario`); this module only keeps
the Fig. 15 parameter block and result shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.bench.config import Configuration
from repro.bench.metrics import timeline_mean
from repro.scenario import CrashReplica, NetworkFluctuation, Scenario, ScenarioRunner


@dataclass
class ResponsivenessScenario:
    """Timing of the fluctuation window and the post-fluctuation crash."""

    fluctuation_start: float = 5.0
    fluctuation_duration: float = 10.0
    fluctuation_min: float = 5e-3
    fluctuation_max: float = 50e-3
    crash_at: float = 20.0
    total_duration: float = 40.0
    bucket: float = 0.5

    @property
    def fluctuation_end(self) -> float:
        """When the fluctuation window closes."""
        return self.fluctuation_start + self.fluctuation_duration

    def to_scenario(self) -> Scenario:
        """The Fig. 15 fault schedule as a declarative scenario."""
        return Scenario(
            name="responsiveness",
            duration=self.total_duration,
            events=[
                NetworkFluctuation(
                    at=self.fluctuation_start,
                    duration=self.fluctuation_duration,
                    min_delay=self.fluctuation_min,
                    max_delay=self.fluctuation_max,
                ),
                # r0 is the metrics observer, so the victim is the last replica.
                CrashReplica(at=self.crash_at, replica="last"),
            ],
        )


@dataclass
class ResponsivenessResult:
    """Throughput timeline and bookkeeping for one scenario run."""

    config: Configuration
    scenario: ResponsivenessScenario
    timeline: List[Tuple[float, float]]
    crashed_replica: str
    consistent: bool
    throughput_before: float = 0.0
    throughput_during: float = 0.0
    throughput_after: float = 0.0

    def mean_throughput(self, start: float, end: float) -> float:
        """Average Tx/s of the timeline buckets within [start, end)."""
        return timeline_mean(self.timeline, start, end)


def run_responsiveness(
    config: Configuration, scenario: ResponsivenessScenario
) -> ResponsivenessResult:
    """Run the Fig. 15 scenario for one protocol/timeout configuration."""
    run_config = config.replace(
        warmup=0.0,
        runtime=scenario.total_duration,
        cooldown=0.0,
    )
    outcome = ScenarioRunner(
        run_config, scenario.to_scenario(), bucket=scenario.bucket
    ).run()
    result = ResponsivenessResult(
        config=run_config,
        scenario=scenario,
        timeline=outcome.timeline,
        crashed_replica=run_config.node_ids()[-1],
        consistent=outcome.consistent,
    )
    result.throughput_before = result.mean_throughput(0.0, scenario.fluctuation_start)
    result.throughput_during = result.mean_throughput(
        scenario.fluctuation_start, scenario.fluctuation_end
    )
    result.throughput_after = result.mean_throughput(
        scenario.crash_at, scenario.total_duration
    )
    return result
