"""Benchmark facilities: configuration, metrics, experiment runner, sweeps.

The runner builds clusters entirely through the plugin registries
(:mod:`repro.plugins`); scripts should normally go through the
:mod:`repro.api` facade, and timed fault injection through
:mod:`repro.scenario`.
"""

from repro.bench.config import Configuration, ConfigurationError
from repro.bench.metrics import MetricsCollector, RunMetrics
from repro.bench.profiles import cost_profile
from repro.bench.runner import Cluster, ExperimentResult, build_cluster, run_experiment
from repro.bench.sweeps import SweepPoint, saturation_sweep
from repro.bench.timeline import ResponsivenessScenario, run_responsiveness

__all__ = [
    "Cluster",
    "Configuration",
    "ConfigurationError",
    "ExperimentResult",
    "MetricsCollector",
    "ResponsivenessScenario",
    "RunMetrics",
    "SweepPoint",
    "build_cluster",
    "cost_profile",
    "run_experiment",
    "run_responsiveness",
    "saturation_sweep",
]
