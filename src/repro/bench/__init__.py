"""Benchmark facilities: configuration, metrics, experiment runner, sweeps."""

from repro.bench.config import Configuration
from repro.bench.metrics import MetricsCollector, RunMetrics
from repro.bench.profiles import cost_profile
from repro.bench.runner import Cluster, ExperimentResult, build_cluster, run_experiment
from repro.bench.sweeps import SweepPoint, saturation_sweep
from repro.bench.timeline import ResponsivenessScenario, run_responsiveness

__all__ = [
    "Cluster",
    "Configuration",
    "ExperimentResult",
    "MetricsCollector",
    "ResponsivenessScenario",
    "RunMetrics",
    "SweepPoint",
    "build_cluster",
    "cost_profile",
    "run_experiment",
    "run_responsiveness",
    "saturation_sweep",
]
