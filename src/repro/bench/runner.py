"""Experiment runner: build a cluster from a configuration and run it.

``build_cluster`` validates the configuration and wires the scheduler,
network, replicas, clients, and metrics collector together; every
protocol-, attack-, election-, delay-, and client-specific choice is a
registry lookup (see :mod:`repro.plugins`), so a new plugin plus a config
entry is all it takes to run a new experiment — no runner changes.
``run_experiment`` runs the whole thing for the configured horizon and
returns an :class:`ExperimentResult`.  Timed fault injection lives in
:mod:`repro.scenario`: declare events, and the :class:`ScenarioRunner`
applies them to the cluster built here.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.config import Configuration
from repro.bench.metrics import MetricsCollector, RunMetrics
from repro.bench.profiles import cost_profile
from repro.checkpoint.manager import CheckpointSettings, CheckpointStats
from repro.client.client import CLIENTS, ClientBase
from repro.client.workload import WorkloadSpec
from repro.core.byzantine import STRATEGIES
from repro.core.replica import Replica, ReplicaSettings
from repro.crypto.keys import KeyRegistry
from repro.election.election import make_election
from repro.network.delays import NoDelay, NormalDelay
from repro.network.network import Network
from repro.obs import trace as obs_trace
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.sync.manager import SyncSettings, SyncStats
from repro.types.sizes import SizeModel


@dataclass
class Cluster:
    """A fully wired simulation ready to run."""

    config: Configuration
    scheduler: EventScheduler
    streams: RandomStreams
    network: Network
    registry: KeyRegistry
    replicas: Dict[str, Replica]
    clients: List[ClientBase]
    metrics: MetricsCollector
    observer_id: str
    #: The installed :class:`repro.obs.Tracer`, or None (tracing disabled).
    #: Deliberately not part of the Configuration: run ids and stored
    #: records are identical with tracing on or off.
    tracer: Optional[object] = None

    def honest_replicas(self) -> List[Replica]:
        """Replicas that follow the protocol."""
        byzantine = set(self.config.byzantine_ids())
        return [r for rid, r in self.replicas.items() if rid not in byzantine]

    def start(self) -> None:
        """Start every replica and client."""
        for replica in self.replicas.values():
            replica.start()
        stop_time = self.config.warmup + self.config.runtime
        for client in self.clients:
            client.start(stop_time=stop_time)

    def run(self, until: Optional[float] = None) -> None:
        """Advance the simulation to ``until`` (default: the configured horizon)."""
        horizon = until if until is not None else self.config.total_duration
        self.scheduler.run_until(horizon)

    def consistency_check(self) -> bool:
        """True if every honest replica's committed chain is a consistent prefix."""
        honest = self.honest_replicas()
        if not honest:
            return True
        min_height = min(r.forest.committed_height for r in honest)
        reference = honest[0].forest.consistency_hash(min_height)
        return all(r.forest.consistency_hash(min_height) == reference for r in honest)

    def sync_report(self) -> SyncStats:
        """Aggregate block-fetch counters across every replica."""
        total = SyncStats()
        for replica in self.replicas.values():
            stats = replica.sync.stats
            for name in vars(total):
                setattr(total, name, getattr(total, name) + getattr(stats, name))
        return total

    def checkpoint_report(self) -> CheckpointStats:
        """Aggregate checkpoint counters across every replica.

        Counters sum; ``peak_forest_blocks`` takes the cluster-wide maximum
        (it is a bound, not a volume).
        """
        total = CheckpointStats()
        for replica in self.replicas.values():
            stats = replica.checkpoint.stats
            for name in vars(total):
                if name == "peak_forest_blocks":
                    total.peak_forest_blocks = max(
                        total.peak_forest_blocks, stats.peak_forest_blocks
                    )
                else:
                    setattr(total, name, getattr(total, name) + getattr(stats, name))
        return total


@dataclass
class ExperimentResult:
    """Outcome of one experiment run."""

    config: Configuration
    metrics: RunMetrics
    consistent: bool
    highest_view: int
    timeline: List = field(default_factory=list)

    @property
    def throughput_ktps(self) -> float:
        """Throughput in thousands of transactions per second."""
        return self.metrics.throughput_tps / 1e3

    @property
    def latency_ms(self) -> float:
        """Mean latency in milliseconds."""
        return self.metrics.mean_latency * 1e3

    def to_dict(self) -> Dict:
        """Lossless JSON-compatible dict (the campaign record shape)."""
        return {
            "config": self.config.to_dict(),
            "metrics": self.metrics.to_dict(),
            "consistent": self.consistent,
            "highest_view": self.highest_view,
            "timeline": [[t, tps] for t, tps in self.timeline],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentResult":
        """Rebuild a result serialized with :meth:`to_dict`."""
        return cls(
            config=Configuration.from_dict(data["config"]),
            metrics=RunMetrics.from_dict(data["metrics"]),
            consistent=data["consistent"],
            highest_view=data["highest_view"],
            timeline=[(t, tps) for t, tps in data.get("timeline", [])],
        )


def build_cluster(config: Configuration) -> Cluster:
    """Wire up a *simulated* cluster (replicas, clients, network, metrics).

    Deployment-mode configurations are built by
    :class:`repro.transport.runtime.DeploymentRunner` instead; this builder
    rejects them rather than silently simulating.
    """
    config.validate()
    if config.mode != "model":
        raise ValueError(
            f"build_cluster is the simulation builder (mode='model'); "
            f"got mode={config.mode!r} — use repro.transport.runtime"
        )
    scheduler = EventScheduler()
    streams = RandomStreams(seed=config.seed)
    base_delay = NormalDelay(config.base_delay_mean, config.base_delay_stddev)
    if config.extra_delay_mean > 0:
        extra_delay = NormalDelay(config.extra_delay_mean, config.extra_delay_stddev)
    else:
        extra_delay = NoDelay()
    network = Network(
        scheduler,
        streams,
        base_delay=base_delay,
        extra_delay=extra_delay,
        bandwidth_bps=config.bandwidth_bps,
    )
    registry = KeyRegistry(deployment_seed=config.seed)
    node_ids = config.node_ids()
    election = make_election(
        node_ids, master=config.master, kind=config.election, seed=config.seed
    )
    metrics = MetricsCollector(
        window_start=config.warmup, window_end=config.warmup + config.runtime
    )

    settings = ReplicaSettings(
        block_size=config.block_size,
        mempool_capacity=config.mempool_capacity,
        view_timeout=config.view_timeout,
        propose_wait_after_tc=config.propose_wait_after_tc,
        sync=SyncSettings(
            enabled=config.sync_enabled,
            max_batch=config.sync_max_batch,
            fanout=config.sync_fanout,
        ),
        checkpoint=CheckpointSettings(
            interval=config.checkpoint_interval,
            snapshot_sync=config.snapshot_sync_enabled,
        ),
        quorum_threshold=config.quorum_threshold,
    )
    costs = cost_profile(config.cost_profile)
    sizes = SizeModel()
    byzantine = set(config.byzantine_ids())
    observer_id = node_ids[0]
    metrics.observer = observer_id
    # Pick up the process-global tracer (None unless repro.obs installed one).
    tracer = obs_trace.ACTIVE
    network.tracer = tracer

    replicas: Dict[str, Replica] = {}
    for node_id in node_ids:
        replica_cls = STRATEGIES.get(config.strategy) if node_id in byzantine else Replica
        replica = replica_cls(
            node_id,
            scheduler,
            network,
            election,
            registry,
            node_ids,
            protocol=config.protocol,
            settings=settings,
            cost_model=costs,
            size_model=sizes,
            metrics=metrics if node_id == observer_id else None,
        )
        # Sync and checkpoint metrics come from every replica (the
        # interesting syncers/installers — recovered or partition-healed
        # nodes — are rarely the observer).
        replica.sync.metrics = metrics
        replica.checkpoint.metrics = metrics
        if tracer is not None:
            replica.attach_tracer(tracer)
        replicas[node_id] = replica

    client_cls = CLIENTS.get(config.resolved_client())
    clients: List[ClientBase] = []
    workload = WorkloadSpec(payload_size=config.payload_size)
    for client_id in config.client_ids():
        client = client_cls.from_config(
            client_id,
            scheduler,
            network,
            streams,
            node_ids,
            workload=workload,
            size_model=sizes,
            metrics=metrics,
            config=config,
        )
        client.tracer = tracer
        clients.append(client)

    return Cluster(
        config=config,
        scheduler=scheduler,
        streams=streams,
        network=network,
        registry=registry,
        replicas=replicas,
        clients=clients,
        metrics=metrics,
        observer_id=observer_id,
        tracer=tracer,
    )


def attach_host_perf(
    metrics: RunMetrics, cluster: Cluster, elapsed: float
) -> RunMetrics:
    """Record how fast the *simulator* ran (wall clock, events/sec).

    Host-side quantities live outside the canonical record serialization
    (see :attr:`RunMetrics.PERF_FIELDS`); they feed ``tools/perf_smoke.py``
    and the perf trajectory, not the stored campaign records.
    """
    metrics.wall_clock_seconds = elapsed
    metrics.events_per_second = (
        cluster.scheduler.processed_events / elapsed if elapsed > 0 else 0.0
    )
    return metrics


def run_experiment(config: Configuration) -> ExperimentResult:
    """Build, start, and run one experiment; return its summarized result.

    Dispatches on ``config.mode``: "model" runs the discrete-event simulation
    here; "deploy" hands the same configuration to the real-transport runtime
    (:mod:`repro.transport`), which returns a result with the identical
    record schema.  Imported lazily so the simulation never loads asyncio
    machinery.
    """
    if config.mode == "deploy":
        from repro.transport.runtime import run_deployment

        return run_deployment(config)
    cluster = build_cluster(config)
    started = time.perf_counter()
    cluster.start()
    cluster.run()
    elapsed = time.perf_counter() - started
    observer = cluster.replicas[cluster.observer_id]
    return ExperimentResult(
        config=config,
        metrics=attach_host_perf(cluster.metrics.summarize(), cluster, elapsed),
        consistent=cluster.consistency_check(),
        highest_view=observer.pacemaker.stats.highest_view,
        timeline=cluster.metrics.throughput_timeline(bucket=0.5, end=config.total_duration),
    )
