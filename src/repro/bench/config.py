"""Experiment configuration (the simulation analogue of Table I).

A :class:`Configuration` captures everything needed to build and run one
experiment: the protocol, the cluster, the Byzantine setup, the workload, the
network conditions, and the simulation horizon.  It can be serialized to and
from a JSON-compatible dict, mirroring Bamboo's JSON configuration file.

The name-valued fields (``protocol``, ``strategy``, ``election``,
``client``) are registry lookups — any implementation registered through
:mod:`repro.plugins` is selectable here — and :meth:`Configuration.validate`
checks them (plus the n ≥ 3f+1 bound and value ranges) with errors that say
what is available; ``build_cluster`` calls it before wiring anything.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Dict, List


class ConfigurationError(ValueError):
    """A configuration failed :meth:`Configuration.validate`."""


@dataclass
class Configuration:
    """All knobs for one experiment run."""

    # --- protocol and cluster -----------------------------------------
    protocol: str = "hotstuff"
    num_nodes: int = 4
    #: Number of Byzantine replicas (Table I's ``byzNo``).
    byzantine_nodes: int = 0
    #: Byzantine strategy: "silence" or "forking" (Table I's ``strategy``).
    strategy: str = "silence"
    #: Static leader node id; empty string means rotating leaders
    #: (Table I's ``master`` with 0 meaning rotation).
    master: str = ""
    #: Leader election kind when ``master`` is empty: "round-robin" (Bamboo's
    #: default rotation) or "hash" (per-view pseudo-random leaders, the
    #: "chosen at random" description of §II-A).  The Byzantine-attack
    #: benchmarks use "hash" so that attack damage is spread uniformly over
    #: honest proposers instead of always hitting the same rotation slots.
    election: str = "round-robin"

    # --- block / mempool / workload ------------------------------------
    #: Transactions per block (Table I's ``bsize``).
    block_size: int = 400
    #: Mempool capacity (Table I's ``memsize``).
    mempool_capacity: int = 1000
    #: Transaction payload size in bytes (Table I's ``psize``).
    payload_size: int = 0
    #: Number of client processes (the paper uses 2 client VMs).
    num_clients: int = 2
    #: Outstanding requests per closed-loop client (Table I's ``concurrency``).
    concurrency: int = 10
    #: If positive, use open-loop Poisson clients with this *total* rate
    #: (transactions per second across all clients) instead of closed-loop.
    arrival_rate: float = 0.0
    #: Client type (a name from the CLIENTS registry).  The default "auto"
    #: keeps the historical selection rule: "poisson" when ``arrival_rate``
    #: is positive, "closed-loop" otherwise.
    client: str = "auto"
    #: Client-side request timeout: a closed-loop client that has not heard a
    #: reply within this many seconds gives up on the request and re-submits
    #: a fresh one to another randomly chosen replica (this is what keeps a
    #: benchmark client alive when its request landed on a silent or starved
    #: replica).
    request_timeout: float = 1.0

    # --- network --------------------------------------------------------
    #: Mean / stddev of the base one-way LAN delay (seconds).
    base_delay_mean: float = 0.25e-3
    base_delay_stddev: float = 0.05e-3
    #: Additional configured one-way delay (Table I's ``delay``), mean/stddev.
    extra_delay_mean: float = 0.0
    extra_delay_stddev: float = 0.0
    #: NIC bandwidth in bytes per second.
    bandwidth_bps: float = 125_000_000.0

    # --- quorums ---------------------------------------------------------
    #: Votes required to form a QC; 0 means the safe default
    #: ``quorum_size(n) = n - f``.  Explicit values model flexible-quorum
    #: deployments (a qc_threshold knob à la flexible_bft).  Values below
    #: 2f+1 make quorums stop intersecting in an honest replica — the fuzz
    #: harness's negative control sets 2 here to prove its agreement oracle
    #: can actually trip.
    quorum_threshold: int = 0

    # --- timing ----------------------------------------------------------
    #: Pacemaker timeout (Table I's ``timeout``), seconds.
    view_timeout: float = 0.1
    #: Extra wait before proposing after a TC-triggered view change.
    propose_wait_after_tc: float = 0.0
    #: Measured portion of the run (Table I's ``runtime``), simulated seconds.
    runtime: float = 5.0
    #: Warm-up excluded from measurements, simulated seconds.
    warmup: float = 0.5
    #: Extra simulated time after the measured window to let commits drain.
    cooldown: float = 0.5

    # --- state sync ------------------------------------------------------
    #: Block-fetch catch-up (see :mod:`repro.sync`).  On by default; turning
    #: it off reproduces the pre-sync behaviour where a recovered replica
    #: rejoins view synchronization but never recovers missed blocks.
    sync_enabled: bool = True
    #: Maximum blocks per BlockResponse batch.
    sync_max_batch: int = 32
    #: Peers asked per fetch round.
    sync_fanout: int = 2

    # --- checkpointing -----------------------------------------------------
    #: Take a checkpoint (snapshot executor state, truncate the forest below
    #: it) every this many committed blocks; 0 disables checkpointing.  With
    #: it on, a long run's forest holds O(checkpoint_interval) blocks instead
    #: of O(run length), with committed metrics unchanged (see
    #: :mod:`repro.checkpoint`).
    checkpoint_interval: int = 0
    #: Serve checkpoints to (and install them from) peers during sync, so a
    #: recovered or far-behind replica crosses a deep gap in one snapshot
    #: transfer instead of walking blocks.  Only effective when
    #: ``checkpoint_interval`` is positive.
    snapshot_sync_enabled: bool = True

    # --- simulation ------------------------------------------------------
    seed: int = 1
    #: Cost profile name ("standard", "fast", "ohs") — see bench.profiles.
    cost_profile: str = "standard"

    # --- execution mode --------------------------------------------------
    #: "model" runs the discrete-event simulation; "deploy" runs the same
    #: protocol stack over real asyncio TCP with wall-clock timers (see
    #: :mod:`repro.transport`).  One configuration can run both, which is
    #: what regenerates the paper's model-vs-implementation fig8.
    mode: str = "model"
    #: Signing scheme: "hmac" (simulated tags, crypto cost modeled),
    #: "ed25519" (real signatures, crypto cost measured), or "auto" —
    #: hmac in model mode, ed25519 in deploy mode.
    signing: str = "auto"

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if not 0 <= self.byzantine_nodes < self.num_nodes:
            raise ValueError("byzantine_nodes must be in [0, num_nodes)")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")
        if self.runtime <= 0:
            raise ValueError("runtime must be positive")
        if self.warmup < 0 or self.cooldown < 0:
            raise ValueError("warmup and cooldown must be non-negative")

    # ------------------------------------------------------------------
    # derived values
    # ------------------------------------------------------------------
    def node_ids(self) -> List[str]:
        """Replica identifiers, r0..r{n-1}."""
        return [f"r{i}" for i in range(self.num_nodes)]

    def client_ids(self) -> List[str]:
        """Client identifiers, c0..c{m-1}."""
        return [f"c{i}" for i in range(self.num_clients)]

    def resolved_client(self) -> str:
        """The effective client type once ``"auto"`` is resolved."""
        if self.client != "auto":
            return self.client
        return "poisson" if self.arrival_rate > 0 else "closed-loop"

    def resolved_signing(self) -> str:
        """The effective signing scheme once ``"auto"`` is resolved."""
        if self.signing != "auto":
            return self.signing
        return "ed25519" if self.mode == "deploy" else "hmac"

    def byzantine_ids(self) -> List[str]:
        """Ids of the Byzantine replicas (the highest-numbered ones).

        Keeping r0 honest guarantees the metrics observer is honest.
        """
        ids = self.node_ids()
        if self.byzantine_nodes == 0:
            return []
        return ids[-self.byzantine_nodes:]

    @property
    def total_duration(self) -> float:
        """Total simulated time: warmup + measured runtime + cooldown."""
        return self.warmup + self.runtime + self.cooldown

    @property
    def measurement_window(self) -> tuple:
        """(start, end) of the measured interval in simulated seconds."""
        return (self.warmup, self.warmup + self.runtime)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> "Configuration":
        """Check the configuration against the registries and the BFT bound.

        Collects *all* problems and raises one :class:`ConfigurationError`
        listing them, so a bad config file is fixed in one round trip.
        Returns ``self`` so it can be chained (``config.validate()``).
        """
        # Imported here: config is a leaf module the registries' modules use.
        from repro.bench.profiles import available_profiles
        from repro.client.client import CLIENTS
        from repro.core.byzantine import STRATEGIES
        from repro.election.election import ELECTIONS
        from repro.plugins import RegistryError
        from repro.protocols.registry import PROTOCOLS, available_protocols

        available_protocols()  # load the built-in protocol modules
        problems: List[str] = []

        def check_registry(field_name: str, value: str, registry) -> None:
            try:
                registry.canonical(value)
            except RegistryError as exc:
                problems.append(f"{field_name}: {exc}")

        check_registry("protocol", self.protocol, PROTOCOLS)
        if self.byzantine_nodes > 0:
            check_registry("strategy", self.strategy, STRATEGIES)
            quorum_bound = 3 * self.byzantine_nodes + 1
            if self.num_nodes < quorum_bound:
                problems.append(
                    f"byzantine_nodes: {self.byzantine_nodes} Byzantine replicas "
                    f"need num_nodes >= 3f+1 = {quorum_bound}, got {self.num_nodes} "
                    f"(quorums would not intersect in an honest replica)"
                )
        if self.master:
            if self.master not in self.node_ids():
                problems.append(
                    f"master: {self.master!r} is not a node id "
                    f"(expected one of r0..r{self.num_nodes - 1})"
                )
        else:
            check_registry("election", self.election, ELECTIONS)
            if (
                self.election in ELECTIONS
                and ELECTIONS.canonical(self.election) == "static"
            ):
                problems.append(
                    "election: 'static' needs the master field to name the "
                    "fixed leader (e.g. master='r0')"
                )
        if self.client != "auto":
            check_registry("client", self.client, CLIENTS)
            if (
                self.client in CLIENTS
                and CLIENTS.canonical(self.client) == "poisson"
                and self.arrival_rate <= 0
            ):
                problems.append(
                    "client: 'poisson' is open-loop and needs arrival_rate > 0 "
                    f"(got {self.arrival_rate})"
                )
        if self.cost_profile not in available_profiles():
            problems.append(
                f"cost_profile: unknown profile {self.cost_profile!r}; "
                f"available: {', '.join(available_profiles())}"
            )
        if self.mode not in ("model", "deploy"):
            problems.append(
                f"mode: unknown mode {self.mode!r}; expected 'model' or 'deploy'"
            )
        if self.signing != "auto":
            from repro.crypto.keys import available_schemes

            if self.signing not in available_schemes():
                problems.append(
                    f"signing: unknown scheme {self.signing!r}; "
                    f"available: auto, {', '.join(available_schemes())}"
                )

        positives = [
            ("num_clients", self.num_clients),
            ("concurrency", self.concurrency),
            ("mempool_capacity", self.mempool_capacity),
            ("bandwidth_bps", self.bandwidth_bps),
            ("view_timeout", self.view_timeout),
            ("request_timeout", self.request_timeout),
            ("sync_max_batch", self.sync_max_batch),
            ("sync_fanout", self.sync_fanout),
        ]
        for name, value in positives:
            if value <= 0:
                problems.append(f"{name}: must be positive, got {value}")
        non_negatives = [
            ("checkpoint_interval", self.checkpoint_interval),
            ("payload_size", self.payload_size),
            ("arrival_rate", self.arrival_rate),
            ("base_delay_mean", self.base_delay_mean),
            ("base_delay_stddev", self.base_delay_stddev),
            ("extra_delay_mean", self.extra_delay_mean),
            ("extra_delay_stddev", self.extra_delay_stddev),
            ("propose_wait_after_tc", self.propose_wait_after_tc),
        ]
        for name, value in non_negatives:
            if value < 0:
                problems.append(f"{name}: must be non-negative, got {value}")
        if not 0 <= self.quorum_threshold <= self.num_nodes:
            problems.append(
                f"quorum_threshold: must be in [0, num_nodes]; got "
                f"{self.quorum_threshold} with num_nodes {self.num_nodes}"
            )
        if self.mempool_capacity > 0 and self.mempool_capacity < self.block_size:
            problems.append(
                f"mempool_capacity: {self.mempool_capacity} is smaller than "
                f"block_size {self.block_size}; no block could ever fill"
            )

        if problems:
            raise ConfigurationError(
                "invalid configuration:\n  - " + "\n  - ".join(problems)
            )
        return self

    # ------------------------------------------------------------------
    # (de)serialization, replacement
    # ------------------------------------------------------------------
    def replace(self, **changes: Any) -> "Configuration":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-compatible dict (Bamboo uses a JSON file)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Configuration":
        """Build a configuration from a dict, ignoring unknown keys."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in known})
