"""Campaign execution: run every expanded point, serially or in parallel.

:class:`CampaignRunner` takes an :class:`~repro.experiments.spec.ExperimentSpec`,
expands it, skips points already present in the optional
:class:`~repro.experiments.store.ResultStore`, and executes the rest —
either in-process or across N worker processes via
``concurrent.futures.ProcessPoolExecutor`` (stdlib only).  Each simulation
is an isolated discrete-event run fully determined by its configuration and
seed, so the per-run records are **bit-identical** whichever way they were
executed (the stored JSONL lines are identical modulo ordering).  Each
record is appended to the store the moment its run completes, so an
interrupted campaign keeps every finished point and resumes from there.

Worker processes import this module fresh under the ``spawn`` start method,
which re-registers every *built-in* protocol/strategy/client; custom plugins
registered at runtime exist only in the parent, so campaigns that use them
should run with ``workers=1`` (or ensure the registering module is imported
on worker startup).  Under the default ``fork`` start method on Linux the
parent's registries are inherited and custom plugins work everywhere.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Union

from repro.bench.config import Configuration
from repro.bench.metrics import timeline_mean
from repro.bench.runner import run_experiment
from repro.experiments.spec import ExperimentSpec, RunSpec
from repro.experiments.store import ResultStore
from repro.scenario import Scenario, ScenarioRunner

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "execute_payload",
    "run_campaign",
    "timeline_mean",
]


def execute_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Run one expanded point (as a :meth:`RunSpec.payload` dict).

    This is the function worker processes execute; it only touches the
    payload dict and returns a plain JSON-compatible record, so it pickles
    cleanly in both directions.
    """
    config = Configuration.from_dict(payload["config"])
    scenario_data = payload.get("scenario")
    record: Dict[str, Any] = {
        "run_id": payload["run_id"],
        "campaign": payload["campaign"],
        "index": payload["index"],
        "repetition": payload["repetition"],
        "params": payload["params"],
        "config": config.to_dict(),
    }
    if scenario_data is not None:
        scenario = Scenario.from_dict(scenario_data)
        outcome = ScenarioRunner(config, scenario, bucket=payload["bucket"]).run()
        record["scenario"] = scenario.to_dict()
        timeline = outcome.timeline
    else:
        outcome = run_experiment(config)
        timeline = outcome.timeline
    record["metrics"] = outcome.metrics.to_dict()
    record["consistent"] = outcome.consistent
    record["highest_view"] = outcome.highest_view
    record["timeline"] = [[t, tps] for t, tps in timeline]
    return record


@dataclass
class CampaignResult:
    """Outcome of one campaign: per-run records plus execution bookkeeping."""

    spec: ExperimentSpec
    #: One record per expanded run, in expansion order.  Records served from
    #: the store are re-labelled with the current expansion's index/params.
    records: List[Dict[str, Any]] = field(default_factory=list)
    #: Number of simulations actually executed this time.
    executed: int = 0
    #: Number of points served from the result store without running.
    skipped: int = 0
    #: Number of in-spec duplicate points folded into another run's record
    #: (identical content hash within one expansion — executed once).
    deduplicated: int = 0

    def __len__(self) -> int:
        return len(self.records)

    def metric(self, name: str) -> List[float]:
        """The named metric across every record, in expansion order."""
        return [record["metrics"][name] for record in self.records]


class CampaignRunner:
    """Expands a spec and executes its pending points, optionally in parallel."""

    def __init__(
        self,
        spec: ExperimentSpec,
        workers: int = 1,
        store: Optional[Union[ResultStore, str]] = None,
        force: bool = False,
        progress: Optional[Any] = None,
    ) -> None:
        self.spec = spec
        self.workers = max(1, int(workers))
        if store is None or isinstance(store, ResultStore):
            self.store = store
        else:
            self.store = ResultStore(store)
        #: Re-run and re-record points even when the store already has them.
        self.force = force
        #: Live progress reporter (:class:`repro.obs.CampaignProgress` or any
        #: object with ``start(run_id)``/``finish(run_id)`` and a ``total``
        #: attribute).  ``True`` builds a default reporter printing to stderr.
        self.progress = progress

    def run(self) -> CampaignResult:
        """Execute the campaign and return every record in expansion order."""
        runs = self.spec.expand()
        pending: List[RunSpec] = []
        reused: Dict[str, Dict[str, Any]] = {}
        seen: set = set()
        for run in runs:
            run_id = run.run_id
            if run_id in seen or run_id in reused:
                continue
            if self.store is not None and not self.force and run_id in self.store:
                reused[run_id] = self.store.get(run_id)
            else:
                seen.add(run_id)
                pending.append(run)

        fresh = self._execute(pending)
        if self.store is not None:
            # Fold any superseded lines (forced re-runs) back to one
            # record per run; a no-op for ordinary campaigns.
            self.store.compact()

        records: List[Dict[str, Any]] = []
        for run in runs:
            base = fresh.get(run.run_id) or reused[run.run_id]
            records.append(
                {
                    **base,
                    "campaign": run.campaign,
                    "index": run.index,
                    "repetition": run.repetition,
                    "params": run.params,
                }
            )
        # Only true store hits count as skipped; in-spec duplicate points
        # deduplicate to one execution but were never stored.
        skipped = sum(1 for run in runs if run.run_id in reused)
        return CampaignResult(
            spec=self.spec,
            records=records,
            executed=len(pending),
            skipped=skipped,
            deduplicated=len(runs) - len(pending) - skipped,
        )

    def _make_progress(self, total: int) -> Optional[Any]:
        if self.progress is None or self.progress is False:
            return None
        if self.progress is True:
            from repro.obs import CampaignProgress

            return CampaignProgress(total)
        reporter = self.progress
        reporter.total = total
        return reporter

    def _execute(self, pending: List[RunSpec]) -> Dict[str, Dict[str, Any]]:
        results: Dict[str, Dict[str, Any]] = {}
        reporter = self._make_progress(len(pending))

        def completed(record: Dict[str, Any]) -> None:
            # Persist immediately: an interrupted (or partially failed)
            # campaign keeps every run that finished before the failure.
            results[record["run_id"]] = record
            if self.store is not None:
                self.store.add(record)
            if reporter is not None:
                reporter.finish(record["run_id"])

        payloads = [run.payload() for run in pending]
        if self.workers > 1 and len(payloads) > 1:
            failure: Optional[BaseException] = None
            with ProcessPoolExecutor(max_workers=min(self.workers, len(payloads))) as pool:
                futures = []
                for payload in payloads:
                    # Submission = start for progress purposes: queued points
                    # age like running ones, so the straggler flag also
                    # catches a run starved behind a slow sibling.
                    if reporter is not None:
                        reporter.start(payload["run_id"])
                    futures.append(pool.submit(execute_payload, payload))
                for future in as_completed(futures):
                    # One failing run must not discard its siblings: the
                    # pool runs them to completion anyway, so collect and
                    # persist every success before re-raising the first
                    # failure (parity with serial interruption semantics).
                    try:
                        completed(future.result())
                    except Exception as exc:  # noqa: BLE001 - re-raised below
                        if failure is None:
                            failure = exc
            if failure is not None:
                raise failure
        else:
            for payload in payloads:
                if reporter is not None:
                    reporter.start(payload["run_id"])
                completed(execute_payload(payload))
        return results


def run_campaign(
    spec: ExperimentSpec,
    workers: int = 1,
    store: Optional[Union[ResultStore, str]] = None,
    force: bool = False,
    progress: Optional[Any] = None,
) -> CampaignResult:
    """Convenience wrapper: ``CampaignRunner(spec, ...).run()``."""
    return CampaignRunner(
        spec, workers=workers, store=store, force=force, progress=progress
    ).run()
