"""Campaigns: declarative experiment grids, parallel execution, persistence.

The campaign layer is how whole evaluation sections are run (the paper's
Table 2 and Figs. 8-15 are each one campaign):

* :class:`ExperimentSpec` — a JSON-round-trippable description of a grid of
  runs: base configuration + ``grid``/``zip``/``points`` axes + optional
  scenario + repetitions and seed policy (:mod:`repro.experiments.spec`);
* :class:`CampaignRunner` — executes the expanded runs serially or across N
  worker processes with bit-identical records either way
  (:mod:`repro.experiments.runner`);
* :class:`ResultStore` — one JSONL record per completed run, keyed by a
  content hash, so re-running a campaign skips finished points
  (:mod:`repro.experiments.store`);
* the ``python -m repro`` CLI (:mod:`repro.experiments.cli`).

See ``docs/EXPERIMENTS.md`` for the JSON schemas and CLI walkthrough.
"""

from repro.experiments.runner import (
    CampaignResult,
    CampaignRunner,
    execute_payload,
    run_campaign,
    timeline_mean,
)
from repro.experiments.spec import (
    DEFAULT_BUCKET,
    ExperimentSpec,
    RunSpec,
    SpecError,
    run_key,
)
from repro.experiments.store import (
    ResultStore,
    StoreError,
    TruncatedRecordWarning,
    encode_record,
)

__all__ = [
    "DEFAULT_BUCKET",
    "CampaignResult",
    "CampaignRunner",
    "ExperimentSpec",
    "ResultStore",
    "RunSpec",
    "SpecError",
    "StoreError",
    "TruncatedRecordWarning",
    "encode_record",
    "execute_payload",
    "run_campaign",
    "run_key",
    "timeline_mean",
]
