"""Persistent campaign results: one JSONL record per completed run.

A :class:`ResultStore` is a directory holding ``results.jsonl`` — one
JSON object per line, each a completed run's record (config + metrics +
consistency + sync stats, see :mod:`repro.experiments.runner`) keyed by the
run's content hash (:func:`repro.experiments.spec.run_key`).  The store is
what makes campaigns *resumable*: :class:`CampaignRunner` skips every
expanded point whose ``run_id`` is already present, so an interrupted
paper-scale grid picks up where it left off, and re-running a finished
campaign executes zero simulations.

Records are written by the parent process only (workers hand records back),
**as each run completes** — so an interrupted campaign keeps everything that
finished before the interruption.  Each record line uses canonical key
ordering, making per-record bytes identical however the campaign was
executed; line *order* is expansion order for serial runs and completion
order under workers, which resume never depends on (lookups are by
``run_id``).  Re-adding an existing ``run_id`` (a forced re-run) appends a
new line with last-write-wins semantics; :meth:`ResultStore.compact` — run
by the campaign runner after each campaign — rewrites the file back to one
record per run.  Opening a store never writes: superseded lines are folded
in memory and left on disk until the next compact.
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

RESULTS_FILENAME = "results.jsonl"


class StoreError(ValueError):
    """A result store file is malformed or a record is unusable."""


class TruncatedRecordWarning(UserWarning):
    """The store's final JSONL line was partial (an interrupted write).

    A worker killed mid-append leaves a half-written last line.  Loading
    skips it with this warning instead of refusing the whole store — every
    complete record stays usable, the skipped run re-executes on the next
    campaign (its run_id is simply absent), and the next :meth:`compact`
    rewrites the file without the partial line.  Corruption anywhere *but*
    the final line is not a crash signature and still raises
    :class:`StoreError`.
    """


def encode_record(record: Dict[str, Any]) -> str:
    """The canonical single-line JSON encoding of one run record."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class ResultStore:
    """A directory of campaign results, indexed by run content hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / RESULTS_FILENAME
        self._records: List[Dict[str, Any]] = []
        self._by_id: Dict[str, Dict[str, Any]] = {}
        #: run_id -> position in _records, for O(1) superseding writes.
        self._positions: Dict[str, int] = {}
        #: Lines currently in the file (> len(self._records) when a forced
        #: re-run appended superseding records that compact() would fold).
        self._file_lines = 0
        #: True when the file's tail is not newline-terminated (a killed
        #: writer): appending would fuse the new record with the remnant,
        #: so the first write rewrites the file from the complete records.
        self._rewrite_on_add = False
        # Opening is read-only: the directory is only created on the first
        # write, so e.g. listing a mistyped store path cannot scaffold it.
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        content = self.path.read_text()
        # A tail without its trailing newline (whatever survived of the last
        # write) must not be appended onto: the first add() rewrites the
        # file from the complete records instead (opening stays read-only).
        self._rewrite_on_add = bool(content) and not content.endswith("\n")
        lines = content.splitlines()
        for lineno, line in enumerate(lines, start=1):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == len(lines):
                    # A killed worker's partial final append: skip it (the
                    # run re-executes on resume) but count the line so the
                    # next compact() rewrites the file without it.
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping truncated final "
                        f"record ({exc}); the run will re-execute on resume",
                        TruncatedRecordWarning,
                        stacklevel=3,
                    )
                    self._file_lines += 1
                    # However the junk is terminated, never append after
                    # it: that would strand it mid-file for the next load.
                    self._rewrite_on_add = True
                    continue
                raise StoreError(f"{self.path}:{lineno}: not valid JSON: {exc}") from exc
            if "run_id" not in record:
                raise StoreError(f"{self.path}:{lineno}: record has no run_id")
            self._remember(record)
            self._file_lines += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __contains__(self, run_id: str) -> bool:
        return run_id in self._by_id

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self._records)

    def keys(self) -> List[str]:
        """Every stored run_id, in file order."""
        return [record["run_id"] for record in self._records]

    def get(self, run_id: str) -> Optional[Dict[str, Any]]:
        """The record stored under ``run_id``, or None."""
        return self._by_id.get(run_id)

    def records(self, campaign: Optional[str] = None) -> List[Dict[str, Any]]:
        """All records in file order, optionally filtered by campaign name."""
        if campaign is None:
            return list(self._records)
        return [r for r in self._records if r.get("campaign") == campaign]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def add(self, record: Dict[str, Any]) -> None:
        """Store one completed-run record (must carry a ``run_id``).

        Always a single O(1) append, so the runner can persist every run
        the moment it completes.  A ``run_id`` that is already stored is
        *superseded* (last write wins); :meth:`compact` folds superseded
        lines away, and the runner compacts once per campaign.
        """
        if "run_id" not in record:
            raise StoreError("record has no run_id")
        self.root.mkdir(parents=True, exist_ok=True)
        if self._rewrite_on_add:
            # Heal a truncated tail before the first append: rewriting from
            # the complete records drops the remnant, so a crash between now
            # and compact() cannot leave corruption mid-file.
            self._remember(record)
            self._rewrite_on_add = False
            self.path.write_text(
                "".join(encode_record(r) + "\n" for r in self._records)
            )
            self._file_lines = len(self._records)
            return
        with self.path.open("a") as handle:
            handle.write(encode_record(record) + "\n")
        self._file_lines += 1
        self._remember(record)

    def _remember(self, record: Dict[str, Any]) -> None:
        """Index one record, superseding any earlier one with its run_id
        (last write wins, keeping the first occurrence's position)."""
        run_id = record["run_id"]
        if run_id in self._positions:
            self._records[self._positions[run_id]] = record
        else:
            self._positions[run_id] = len(self._records)
            self._records.append(record)
        self._by_id[run_id] = record

    def compact(self) -> None:
        """Rewrite the file to exactly one record per ``run_id`` (no-op when
        nothing has been superseded)."""
        if self._file_lines == len(self._records):
            return
        self.path.write_text("".join(encode_record(r) + "\n" for r in self._records))
        self._file_lines = len(self._records)
