"""The ``python -m repro`` command line: run, campaign, analyze, list.

Every subcommand is driven by the same JSON files the library consumes::

    python -m repro run experiment.json            # one experiment (+scenario)
    python -m repro deploy --nodes 4 --runtime 3   # real asyncio TCP cluster
    python -m repro campaign grid.json -w 4 -s out # a parallel, resumable grid
    python -m repro fuzz --budget 50 --seed 0      # adversarial scenario fuzzing
    python -m repro sweep config.json --concurrency 8,32,128
    python -m repro report --store out             # aggregate: mean ± 95% CI
    python -m repro plot --store out -o figures    # render paper figures (SVG)
    python -m repro regress --store out -b base.json [--freeze]
    python -m repro trace trace.jsonl              # validate + summarize a trace
    python -m repro trace trace.jsonl -f perfetto  # convert for ui.perfetto.dev
    python -m repro list                           # extension points
    python -m repro list --store out               # stored campaign records

``run``, ``deploy``, and ``fuzz`` accept ``--trace`` / ``--trace-out PATH``
to record a protocol event trace of the run (see ``docs/OBSERVABILITY.md``).

``run`` accepts either a flat configuration object or
``{"config": {...}, "scenario": {...}}``; ``campaign`` accepts an
:class:`~repro.experiments.spec.ExperimentSpec` dict (optionally wrapped in
``{"spec": {...}}``).  ``report``/``plot``/``regress`` consume **stored
records only** — they never execute a simulation.  See
``docs/EXPERIMENTS.md`` for the schemas and the aggregate-and-plot
walkthrough.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

# Re-exported here for backwards compatibility: the canonical renderer
# lives in the analysis subsystem now.
from repro.analysis.report import format_cell, format_table  # noqa: F401
from repro.bench.config import Configuration, ConfigurationError
from repro.bench.runner import run_experiment
from repro.bench.sweeps import saturation_sweep
from repro.experiments.runner import CampaignRunner
from repro.experiments.spec import ExperimentSpec, SpecError
from repro.experiments.store import ResultStore, StoreError
from repro.plugins import RegistryError
from repro.scenario import Scenario, ScenarioRunner


def _load_json(path: str) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")


def _metrics_row(metrics: Dict[str, float]) -> Dict[str, Any]:
    return {
        "throughput_tps": metrics["throughput_tps"],
        "mean_latency_ms": metrics["mean_latency"] * 1e3,
        "p99_latency_ms": metrics["p99_latency"] * 1e3,
        "cgr": metrics["chain_growth_rate"],
        "block_interval": metrics["block_interval"],
        "committed_tx": metrics["committed_transactions"],
    }


def _params_label(params: Dict[str, Any]) -> str:
    if not params:
        return "-"
    return " ".join(f"{k.lstrip('_')}={v}" for k, v in params.items())


# ----------------------------------------------------------------------
# tracing flags (shared by run / deploy / fuzz)
# ----------------------------------------------------------------------
def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", action="store_true",
                        help="record a protocol event trace (JSONL)")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="trace output path (implies --trace; "
                             "default trace.jsonl)")


@contextmanager
def _traced(args: argparse.Namespace):
    """Install a process-global tracer around a command body when requested.

    On clean exit the trace is written as deterministic JSONL and a stable
    ``trace: <path> (<N> records)`` line is printed (the CI trace-smoke job
    greps for it).  Yields ``None`` when tracing was not requested.
    """
    out = getattr(args, "trace_out", None)
    if not (getattr(args, "trace", False) or out):
        yield None
        return
    from repro.obs import trace as obs_trace

    with obs_trace.tracing() as tracer:
        yield tracer
    records = tracer.records()
    path = obs_trace.write_trace(records, out or "trace.jsonl")
    print(f"trace: {path} ({len(records)} records)")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    data = _load_json(args.config)
    config = Configuration.from_dict(data.get("config", data))
    scenario_data = data.get("scenario")
    if args.scenario:
        scenario_data = _load_json(args.scenario)
        scenario_data = scenario_data.get("scenario", scenario_data)
    with _traced(args):
        if scenario_data is not None:
            result = ScenarioRunner(config, Scenario.from_dict(scenario_data)).run()
        else:
            result = run_experiment(config)
    if args.json:
        print(json.dumps(result.metrics.to_dict() | {"consistent": result.consistent}, indent=2))
    else:
        row = _metrics_row(result.metrics.to_dict()) | {"consistent": result.consistent}
        print(format_table([row], row.keys()))
    return 0


def _cmd_deploy(args: argparse.Namespace) -> int:
    """Run one real-transport deployment (see :mod:`repro.transport`)."""
    data = _load_json(args.config) if args.config else {}
    config = Configuration.from_dict(data.get("config", data))
    overrides: Dict[str, Any] = {"mode": "deploy"}
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.protocol is not None:
        overrides["protocol"] = args.protocol
    if args.runtime is not None:
        overrides["runtime"] = args.runtime
    if args.rate is not None:
        overrides["arrival_rate"] = args.rate
    if args.signing is not None:
        overrides["signing"] = args.signing
    if args.seed is not None:
        overrides["seed"] = args.seed
    config = config.replace(**overrides).validate()
    with _traced(args):
        result = run_experiment(config)
    metrics = result.metrics.to_dict()
    if args.json:
        print(json.dumps(metrics | {"consistent": result.consistent}, indent=2))
    else:
        print(
            f"deployed {config.num_nodes} replicas ({config.protocol}, "
            f"{config.resolved_signing()} signing) for "
            f"{config.total_duration:.1f}s wall time"
        )
        row = _metrics_row(metrics)
        print(format_table([row], row.keys()))
    # Stable one-per-line facts for scripts and the CI deploy-smoke grep.
    print(f"committed transactions: {result.metrics.committed_transactions}")
    print(f"consistent: {'true' if result.consistent else 'false'}")
    if args.store:
        from repro.experiments.spec import run_key

        store = ResultStore(args.store)
        store.add({
            "run_id": run_key(config),
            "campaign": args.campaign_name,
            "index": 0,
            "repetition": 0,
            "params": {
                "protocol": config.protocol,
                "arrival_rate": config.arrival_rate,
                "mode": config.mode,
            },
            "config": config.to_dict(),
            "metrics": metrics,
            "consistent": result.consistent,
            "highest_view": result.highest_view,
            "timeline": [[t, tps] for t, tps in result.timeline],
        })
        print(f"results: {store.path}")
    return 0 if result.consistent else 1


def _cmd_campaign(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_dict(_load_json(args.spec))
    store = ResultStore(args.store) if args.store else None
    runner = CampaignRunner(spec, workers=args.workers, store=store,
                            force=args.force, progress=args.progress or None)
    result = runner.run()
    if args.json:
        print(json.dumps(result.records, indent=2))
        return 0
    rows = [
        {"run": r["index"], "params": _params_label(r["params"]),
         "consistent": r["consistent"], **_metrics_row(r["metrics"])}
        for r in result.records
    ]
    parts = [f"{result.executed} executed"]
    if result.deduplicated:
        parts.append(f"{result.deduplicated} duplicate points folded")
    parts.append(f"{result.skipped} already stored")
    print(f"campaign {spec.name!r}: {len(result.records)} runs ({', '.join(parts)})")
    if store is not None:
        print(f"results: {store.path}")
    print(format_table(rows, ["run", "params", "throughput_tps", "mean_latency_ms",
                               "cgr", "block_interval", "consistent"]))
    return 0


def _cmd_fuzz(args: argparse.Namespace) -> int:
    """Run a fuzz campaign (or replay one violation artifact)."""
    from repro.fuzz import replay, run_fuzz

    if args.replay:
        outcome = replay(args.replay)
        print(f"replayed {args.replay} (run {outcome.case.run_id})")
        for violation in outcome.violations:
            print(f"violation [{violation.oracle}]: {violation.detail}")
        print(f"violations: {len(outcome.violations)}")
        # A replayed artifact is *expected* to violate: exit 0 when the bug
        # still fires, 1 when it no longer reproduces (e.g. after a fix).
        return 0 if outcome.violations else 1

    def progress(outcome) -> None:
        status = "ok" if outcome.ok else "VIOLATION"
        case = outcome.case
        print(
            f"case {case.index:>3} {case.config.protocol:<12} "
            f"n={case.config.num_nodes} byz={case.config.byzantine_nodes} "
            f"events={len(case.scenario.events)} "
            f"run={case.run_id} {status}"
        )
        for violation in outcome.violations:
            print(f"  [{violation.oracle}] {violation.detail}")

    with _traced(args):
        report = run_fuzz(
            budget=args.budget,
            seed=args.seed,
            store=args.store,
            artifacts=args.artifacts,
            shrink=not args.no_shrink,
            progress=progress if not args.json else None,
        )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
        return 0 if report.ok else 1
    coverage = ", ".join(f"{k}:{v}" for k, v in sorted(report.protocols.items()))
    print(f"fuzz seed {report.seed}: {report.budget} cases "
          f"({report.executed} executed, {report.skipped} already stored)")
    print(f"protocols: {coverage}")
    # Stable one-per-line facts for scripts and the CI fuzz-smoke grep.
    print(f"violations: {len(report.violations)}")
    for outcome in report.failures:
        for artifact in (outcome.artifact, outcome.shrunk_artifact):
            if artifact:
                print(f"artifact: {artifact}")
        if outcome.trace_artifact:
            print(f"trace artifact: {outcome.trace_artifact}")
    return 0 if report.ok else 1


def _parse_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    if bool(args.concurrency) == bool(args.arrival_rates):
        raise SystemExit("error: give exactly one of --concurrency or --arrival-rates")
    data = _load_json(args.config)
    config = Configuration.from_dict(data.get("config", data))
    if args.concurrency:
        points = saturation_sweep(
            config,
            concurrency_levels=[int(v) for v in _parse_floats(args.concurrency)],
            workers=args.workers,
        )
    else:
        points = saturation_sweep(
            config, arrival_rates=_parse_floats(args.arrival_rates), workers=args.workers
        )
    if args.json:
        print(json.dumps([p.to_dict() for p in points], indent=2))
    else:
        rows = [
            {"load": p.load, "throughput_tps": p.throughput_tps,
             "latency_ms": p.latency_ms, "p99_ms": p.p99_latency * 1e3,
             "cgr": p.chain_growth_rate, "block_interval": p.block_interval}
            for p in points
        ]
        print(format_table(rows, ["load", "throughput_tps", "latency_ms", "p99_ms",
                                   "cgr", "block_interval"]))
    return 0


def _open_store(path: str) -> ResultStore:
    if not Path(path).is_dir():
        raise SystemExit(f"error: no such result store: {path}")
    return ResultStore(path)


def _store_records(args: argparse.Namespace) -> List[Dict[str, Any]]:
    store = _open_store(args.store)
    records = store.records(campaign=args.campaign or None)
    if not records:
        which = f"campaign {args.campaign!r}" if args.campaign else "records"
        raise SystemExit(f"error: no {which} in {store.path}")
    return records


def _parse_metrics(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _parse_tolerances(values: Optional[List[str]]) -> tuple:
    """Split repeated ``--tolerance`` flags into (global, per-metric dict).

    Each occurrence is either a bare float (the global relative slack) or
    ``metric=value`` (an override for that metric only).
    """
    global_tol = 0.0
    per_metric: Dict[str, float] = {}
    for raw in values or []:
        name, sep, number = raw.partition("=")
        try:
            if sep:
                per_metric[name.strip()] = float(number)
            else:
                global_tol = float(raw)
        except ValueError:
            raise SystemExit(
                f"error: bad --tolerance {raw!r} (expected FLOAT or METRIC=FLOAT)"
            )
    return global_tol, per_metric


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis import aggregate_records, comparison_table

    metrics = _parse_metrics(args.metrics)
    summaries = aggregate_records(_store_records(args), metrics=metrics)
    if args.json:
        print(json.dumps([s.to_dict() for s in summaries], indent=2))
        return 0
    print(comparison_table(summaries, metrics=metrics, fmt=args.format))
    return 0


def _cmd_plot(args: argparse.Namespace) -> int:
    from repro.analysis import FigureDef, FigureError, render_store
    from repro.analysis.figures import figure_for_campaign

    store = _open_store(args.store)
    figure = None
    if args.x or args.y:
        if not (args.x and args.y):
            raise SystemExit("error: --x and --y must be given together")
        if args.figure:
            raise SystemExit("error: --figure conflicts with --x/--y "
                             "(a registered figure already fixes its axes)")
        figure = FigureDef(key="custom", title=args.campaign[0] if args.campaign else "campaign",
                           xlabel=args.x, ylabel=args.y, x=args.x, y=args.y)
    elif args.figure:
        figure = args.figure
    try:
        written = render_store(store, args.out, campaigns=args.campaign or None,
                               figure=figure)
    except FigureError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    # Map output stems back to real campaign names (an unnamed campaign
    # renders as "campaign.svg" but its records live under "").
    stem_to_campaign: Dict[str, str] = {}
    for record in store:
        name = record.get("campaign", "")
        stem_to_campaign.setdefault(name or "campaign", name)
    for path in written:
        name = stem_to_campaign.get(path.stem, path.stem)
        records = store.records(campaign=name)
        resolved = figure or figure_for_campaign(name)
        key = resolved if isinstance(resolved, str) else (resolved.key if resolved else "generic")
        print(f"wrote {path} ({key}, {len(records)} stored records, "
              f"0 simulations executed)")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    from repro.analysis import (
        aggregate_records,
        compare,
        freeze,
        load_baseline,
        save_baseline,
    )
    from repro.analysis.regress import DEFAULT_REGRESS_METRICS, BaselineError

    metrics = _parse_metrics(args.metrics) or list(DEFAULT_REGRESS_METRICS)
    summaries = aggregate_records(_store_records(args))
    if args.freeze:
        path = save_baseline(args.baseline, freeze(summaries, metrics=metrics))
        print(f"baseline frozen: {path} ({len(summaries)} group(s), "
              f"{len(metrics)} metric(s))")
        return 0
    try:
        baseline = load_baseline(args.baseline)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    tolerance, tolerances = _parse_tolerances(args.tolerance)
    report = compare(baseline, summaries, metrics=_parse_metrics(args.metrics),
                     tolerance=tolerance, tolerances=tolerances)
    if args.json:
        print(json.dumps({
            "ok": report.ok,
            "regressions": [f.describe() for f in report.regressions],
            "missing": report.missing,
            "compared_groups": report.compared_groups,
        }, indent=2))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    """Validate, summarize, or convert a JSONL trace file."""
    from repro.obs.export import (
        TraceFormatError,
        summarize,
        to_text,
        validate_jsonl,
    )
    from repro.obs.trace import write_trace

    if not Path(args.trace).is_file():
        raise SystemExit(f"error: no such file: {args.trace}")
    try:
        _header, records = validate_jsonl(args.trace)
    except TraceFormatError as exc:
        print(f"error: invalid trace: {exc}", file=sys.stderr)
        return 1

    if args.format == "summary":
        summary = summarize(records)
        # Stable one-per-line facts for scripts and the CI trace-smoke grep.
        print(f"valid trace: {args.trace}")
        print(f"records: {summary['records']}")
        print(f"replicas: {', '.join(summary['replicas']) or '-'}")
        categories = summary["categories"]
        print("categories: " + (", ".join(
            f"{name}:{count}" for name, count in categories.items()) or "-"))
        print(f"span: {summary['t_min']:.6f}s .. {summary['t_max']:.6f}s")
        return 0

    sink = {"perfetto": "perfetto", "chrome": "perfetto",
            "text": "text", "svg": "svg", "jsonl": "jsonl"}[args.format]
    if args.out is None:
        if args.format == "text":
            print(to_text(records))
            return 0
        suffix = {"perfetto": ".perfetto.json", "chrome": ".perfetto.json",
                  "svg": ".svg", "jsonl": ".jsonl"}[args.format]
        args.out = str(Path(args.trace).with_suffix(suffix))
    path = write_trace(records, args.out, sink=sink)
    print(f"wrote {path} ({len(records)} records, {args.format})")
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.store:
        if not Path(args.store).is_dir():
            raise SystemExit(f"error: no such result store: {args.store}")
        store = ResultStore(args.store)
        records = store.records(campaign=args.kind)
        if args.json:
            print(json.dumps(records, indent=2))
            return 0
        rows = [
            {"run_id": r["run_id"], "campaign": r.get("campaign", "-"),
             "params": _params_label(r.get("params", {})),
             "throughput_tps": r["metrics"]["throughput_tps"],
             "consistent": r.get("consistent")}
            for r in records
        ]
        print(f"{store.path}: {len(records)} records")
        print(format_table(rows, ["run_id", "campaign", "params",
                                   "throughput_tps", "consistent"]))
        return 0
    from repro.api import available

    listings = available()
    if args.kind:
        if args.kind not in listings:
            raise SystemExit(
                f"error: unknown extension point {args.kind!r}; "
                f"available: {', '.join(listings)}"
            )
        listings = {args.kind: listings[args.kind]}
    if args.json:
        print(json.dumps(listings, indent=2))
    else:
        for kind, names in listings.items():
            print(f"{kind}: {', '.join(names)}")
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run chained-BFT experiments, campaigns, and sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment from a JSON config")
    run_p.add_argument("config", help="JSON file: a Configuration (optionally "
                                      "{'config': ..., 'scenario': ...})")
    run_p.add_argument("--scenario", help="JSON file with a fault schedule")
    run_p.add_argument("--json", action="store_true", help="print raw JSON metrics")
    _add_trace_flags(run_p)
    run_p.set_defaults(func=_cmd_run)

    deploy_p = sub.add_parser(
        "deploy",
        help="run the protocol stack over real asyncio TCP with real signing",
    )
    deploy_p.add_argument("config", nargs="?",
                          help="optional JSON Configuration (flags override it)")
    deploy_p.add_argument("-n", "--nodes", type=int, help="number of replicas")
    deploy_p.add_argument("-p", "--protocol", help="protocol name (default hotstuff)")
    deploy_p.add_argument("--runtime", type=float,
                          help="measured wall-clock seconds (default 5)")
    deploy_p.add_argument("--rate", type=float,
                          help="open-loop arrival rate in Tx/s (default: closed-loop)")
    deploy_p.add_argument("--signing", help="signing scheme (default ed25519 in deploy)")
    deploy_p.add_argument("--seed", type=int, help="deployment seed")
    deploy_p.add_argument("-s", "--store", help="append the record to this result store")
    deploy_p.add_argument("--campaign-name", default="fig8_deploy",
                          help="campaign name for stored records (default fig8_deploy)")
    deploy_p.add_argument("--json", action="store_true", help="print raw JSON metrics")
    _add_trace_flags(deploy_p)
    deploy_p.set_defaults(func=_cmd_deploy)

    camp_p = sub.add_parser("campaign", help="run a declarative experiment grid")
    camp_p.add_argument("spec", help="JSON file with an ExperimentSpec")
    camp_p.add_argument("-w", "--workers", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    camp_p.add_argument("-s", "--store", help="result store directory (enables resume)")
    camp_p.add_argument("--force", action="store_true",
                        help="re-run points already present in the store")
    camp_p.add_argument("--progress", action="store_true",
                        help="print live done/total, rate, ETA, and straggler "
                             "lines to stderr as runs complete")
    camp_p.add_argument("--json", action="store_true", help="print raw JSON records")
    camp_p.set_defaults(func=_cmd_campaign)

    fuzz_p = sub.add_parser(
        "fuzz",
        help="run randomized adversarial scenarios against the safety oracles",
    )
    fuzz_p.add_argument("-b", "--budget", type=int, default=50,
                        help="number of generated cases to run (default 50)")
    fuzz_p.add_argument("--seed", type=int, default=0,
                        help="campaign seed; same seed => same cases (default 0)")
    fuzz_p.add_argument("-s", "--store",
                        help="result store directory (passing cases are "
                             "recorded and skipped on re-runs)")
    fuzz_p.add_argument("--artifacts",
                        help="directory for replayable violation dumps "
                             "(default: <store>/artifacts)")
    fuzz_p.add_argument("--no-shrink", action="store_true",
                        help="skip minimizing violating cases")
    fuzz_p.add_argument("--replay", metavar="FILE",
                        help="re-execute a violation artifact instead of fuzzing")
    fuzz_p.add_argument("--json", action="store_true", help="print a JSON report")
    _add_trace_flags(fuzz_p)
    fuzz_p.set_defaults(func=_cmd_fuzz)

    sweep_p = sub.add_parser("sweep", help="latency/throughput saturation sweep")
    sweep_p.add_argument("config", help="JSON file with the base Configuration")
    sweep_p.add_argument("--concurrency", help="comma-separated closed-loop levels")
    sweep_p.add_argument("--arrival-rates", help="comma-separated open-loop Tx/s rates")
    sweep_p.add_argument("-w", "--workers", type=int, default=1,
                         help="worker processes (default 1 = serial)")
    sweep_p.add_argument("--json", action="store_true", help="print raw JSON points")
    sweep_p.set_defaults(func=_cmd_sweep)

    report_p = sub.add_parser(
        "report", help="aggregate stored records into a comparison table"
    )
    report_p.add_argument("campaign", nargs="?", help="restrict to one campaign")
    report_p.add_argument("-s", "--store", required=True, help="result store directory")
    report_p.add_argument("-f", "--format", choices=["text", "markdown", "csv"],
                          default="text", help="table format (default text)")
    report_p.add_argument("-m", "--metrics",
                          help="comma-separated metric names (default: headline set)")
    report_p.add_argument("--json", action="store_true",
                          help="print raw JSON group summaries")
    report_p.set_defaults(func=_cmd_report)

    plot_p = sub.add_parser(
        "plot", help="render stored campaigns as SVG figures (no simulations)"
    )
    plot_p.add_argument("campaign", nargs="*",
                        help="campaigns to render (default: every stored campaign)")
    plot_p.add_argument("-s", "--store", required=True, help="result store directory")
    plot_p.add_argument("-o", "--out", default="figures",
                        help="output directory for SVG files (default figures/)")
    plot_p.add_argument("--figure", help="force a registered figure key (e.g. fig9)")
    plot_p.add_argument("--x", help="params key for the x axis (custom figures)")
    plot_p.add_argument("--y", help="metric name for the y axis (custom figures)")
    plot_p.set_defaults(func=_cmd_plot)

    regress_p = sub.add_parser(
        "regress", help="freeze a baseline or compare stored records against one"
    )
    regress_p.add_argument("campaign", nargs="?", help="restrict to one campaign")
    regress_p.add_argument("-s", "--store", required=True, help="result store directory")
    regress_p.add_argument("-b", "--baseline", required=True,
                           help="baseline JSON file to write (--freeze) or compare against")
    regress_p.add_argument("--freeze", action="store_true",
                           help="write the baseline instead of comparing")
    regress_p.add_argument("-m", "--metrics",
                           help="comma-separated metric names (default: headline set)")
    regress_p.add_argument("-t", "--tolerance", action="append",
                           help="relative slack: FLOAT (global) or METRIC=FLOAT "
                                "(per-metric override); repeatable (default 0)")
    regress_p.add_argument("--json", action="store_true", help="print raw JSON verdicts")
    regress_p.set_defaults(func=_cmd_regress)

    trace_p = sub.add_parser(
        "trace", help="validate, summarize, or convert a JSONL event trace"
    )
    trace_p.add_argument("trace", help="JSONL trace file (from --trace-out)")
    trace_p.add_argument("-f", "--format",
                         choices=["summary", "perfetto", "chrome", "text",
                                  "svg", "jsonl"],
                         default="summary",
                         help="output: summary (default, validates and prints "
                              "counts), perfetto/chrome (trace-event JSON), "
                              "text (timeline), svg (view-timeline lane chart), "
                              "jsonl (re-serialize)")
    trace_p.add_argument("-o", "--out",
                         help="output path (default: derived from the input; "
                              "text prints to stdout)")
    trace_p.set_defaults(func=_cmd_trace)

    list_p = sub.add_parser("list", help="list extension points or stored results")
    list_p.add_argument("kind", nargs="?",
                        help="extension point (or campaign name with --store)")
    list_p.add_argument("-s", "--store", help="list this result store's records instead")
    list_p.add_argument("--json", action="store_true", help="print raw JSON")
    list_p.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigurationError, SpecError, StoreError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
