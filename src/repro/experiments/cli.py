"""The ``python -m repro`` command line: run, campaign, sweep, list.

Every subcommand is driven by the same JSON files the library consumes::

    python -m repro run experiment.json            # one experiment (+scenario)
    python -m repro campaign grid.json -w 4 -s out # a parallel, resumable grid
    python -m repro sweep config.json --concurrency 8,32,128
    python -m repro list                           # extension points
    python -m repro list --store out               # stored campaign records

``run`` accepts either a flat configuration object or
``{"config": {...}, "scenario": {...}}``; ``campaign`` accepts an
:class:`~repro.experiments.spec.ExperimentSpec` dict (optionally wrapped in
``{"spec": {...}}``).  See ``docs/EXPERIMENTS.md`` for the schemas.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.bench.config import Configuration, ConfigurationError
from repro.bench.runner import run_experiment
from repro.bench.sweeps import saturation_sweep
from repro.experiments.runner import CampaignRunner
from repro.experiments.spec import ExperimentSpec, SpecError
from repro.experiments.store import ResultStore, StoreError
from repro.plugins import RegistryError
from repro.scenario import Scenario, ScenarioRunner


def format_cell(value: Any) -> str:
    """Render one table cell (None as '-', floats at two decimals)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def format_table(rows: List[Dict[str, Any]], columns: Iterable[str]) -> str:
    """Render rows as a fixed-width text table (header + one line per row).

    This is the one table renderer; ``benchmarks/common.py`` delegates to it
    for the paper-style tables.
    """
    columns = list(columns)
    widths = {
        c: max(len(c), *(len(format_cell(r.get(c))) for r in rows)) if rows else len(c)
        for c in columns
    }
    lines = ["  ".join(c.ljust(widths[c]) for c in columns)]
    for row in rows:
        lines.append("  ".join(format_cell(row.get(c)).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def _load_json(path: str) -> Dict[str, Any]:
    try:
        return json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SystemExit(f"error: no such file: {path}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"error: {path} is not valid JSON: {exc}")


def _metrics_row(metrics: Dict[str, float]) -> Dict[str, Any]:
    return {
        "throughput_tps": metrics["throughput_tps"],
        "mean_latency_ms": metrics["mean_latency"] * 1e3,
        "p99_latency_ms": metrics["p99_latency"] * 1e3,
        "cgr": metrics["chain_growth_rate"],
        "block_interval": metrics["block_interval"],
        "committed_tx": metrics["committed_transactions"],
    }


def _params_label(params: Dict[str, Any]) -> str:
    if not params:
        return "-"
    return " ".join(f"{k.lstrip('_')}={v}" for k, v in params.items())


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    data = _load_json(args.config)
    config = Configuration.from_dict(data.get("config", data))
    scenario_data = data.get("scenario")
    if args.scenario:
        scenario_data = _load_json(args.scenario)
        scenario_data = scenario_data.get("scenario", scenario_data)
    if scenario_data is not None:
        result = ScenarioRunner(config, Scenario.from_dict(scenario_data)).run()
    else:
        result = run_experiment(config)
    if args.json:
        print(json.dumps(result.metrics.to_dict() | {"consistent": result.consistent}, indent=2))
    else:
        row = _metrics_row(result.metrics.to_dict()) | {"consistent": result.consistent}
        print(format_table([row], row.keys()))
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    spec = ExperimentSpec.from_dict(_load_json(args.spec))
    store = ResultStore(args.store) if args.store else None
    runner = CampaignRunner(spec, workers=args.workers, store=store, force=args.force)
    result = runner.run()
    if args.json:
        print(json.dumps(result.records, indent=2))
        return 0
    rows = [
        {"run": r["index"], "params": _params_label(r["params"]),
         "consistent": r["consistent"], **_metrics_row(r["metrics"])}
        for r in result.records
    ]
    parts = [f"{result.executed} executed"]
    if result.deduplicated:
        parts.append(f"{result.deduplicated} duplicate points folded")
    parts.append(f"{result.skipped} already stored")
    print(f"campaign {spec.name!r}: {len(result.records)} runs ({', '.join(parts)})")
    if store is not None:
        print(f"results: {store.path}")
    print(format_table(rows, ["run", "params", "throughput_tps", "mean_latency_ms",
                               "cgr", "block_interval", "consistent"]))
    return 0


def _parse_floats(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _cmd_sweep(args: argparse.Namespace) -> int:
    if bool(args.concurrency) == bool(args.arrival_rates):
        raise SystemExit("error: give exactly one of --concurrency or --arrival-rates")
    data = _load_json(args.config)
    config = Configuration.from_dict(data.get("config", data))
    if args.concurrency:
        points = saturation_sweep(
            config,
            concurrency_levels=[int(v) for v in _parse_floats(args.concurrency)],
            workers=args.workers,
        )
    else:
        points = saturation_sweep(
            config, arrival_rates=_parse_floats(args.arrival_rates), workers=args.workers
        )
    if args.json:
        print(json.dumps([p.to_dict() for p in points], indent=2))
    else:
        rows = [
            {"load": p.load, "throughput_tps": p.throughput_tps,
             "latency_ms": p.latency_ms, "p99_ms": p.p99_latency * 1e3,
             "cgr": p.chain_growth_rate, "block_interval": p.block_interval}
            for p in points
        ]
        print(format_table(rows, ["load", "throughput_tps", "latency_ms", "p99_ms",
                                   "cgr", "block_interval"]))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if args.store:
        if not Path(args.store).is_dir():
            raise SystemExit(f"error: no such result store: {args.store}")
        store = ResultStore(args.store)
        records = store.records(campaign=args.kind)
        if args.json:
            print(json.dumps(records, indent=2))
            return 0
        rows = [
            {"run_id": r["run_id"], "campaign": r.get("campaign", "-"),
             "params": _params_label(r.get("params", {})),
             "throughput_tps": r["metrics"]["throughput_tps"],
             "consistent": r.get("consistent")}
            for r in records
        ]
        print(f"{store.path}: {len(records)} records")
        print(format_table(rows, ["run_id", "campaign", "params",
                                   "throughput_tps", "consistent"]))
        return 0
    from repro.api import available

    listings = available()
    if args.kind:
        if args.kind not in listings:
            raise SystemExit(
                f"error: unknown extension point {args.kind!r}; "
                f"available: {', '.join(listings)}"
            )
        listings = {args.kind: listings[args.kind]}
    if args.json:
        print(json.dumps(listings, indent=2))
    else:
        for kind, names in listings.items():
            print(f"{kind}: {', '.join(names)}")
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run chained-BFT experiments, campaigns, and sweeps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="run one experiment from a JSON config")
    run_p.add_argument("config", help="JSON file: a Configuration (optionally "
                                      "{'config': ..., 'scenario': ...})")
    run_p.add_argument("--scenario", help="JSON file with a fault schedule")
    run_p.add_argument("--json", action="store_true", help="print raw JSON metrics")
    run_p.set_defaults(func=_cmd_run)

    camp_p = sub.add_parser("campaign", help="run a declarative experiment grid")
    camp_p.add_argument("spec", help="JSON file with an ExperimentSpec")
    camp_p.add_argument("-w", "--workers", type=int, default=1,
                        help="worker processes (default 1 = serial)")
    camp_p.add_argument("-s", "--store", help="result store directory (enables resume)")
    camp_p.add_argument("--force", action="store_true",
                        help="re-run points already present in the store")
    camp_p.add_argument("--json", action="store_true", help="print raw JSON records")
    camp_p.set_defaults(func=_cmd_campaign)

    sweep_p = sub.add_parser("sweep", help="latency/throughput saturation sweep")
    sweep_p.add_argument("config", help="JSON file with the base Configuration")
    sweep_p.add_argument("--concurrency", help="comma-separated closed-loop levels")
    sweep_p.add_argument("--arrival-rates", help="comma-separated open-loop Tx/s rates")
    sweep_p.add_argument("-w", "--workers", type=int, default=1,
                         help="worker processes (default 1 = serial)")
    sweep_p.add_argument("--json", action="store_true", help="print raw JSON points")
    sweep_p.set_defaults(func=_cmd_sweep)

    list_p = sub.add_parser("list", help="list extension points or stored results")
    list_p.add_argument("kind", nargs="?",
                        help="extension point (or campaign name with --store)")
    list_p.add_argument("-s", "--store", help="list this result store's records instead")
    list_p.add_argument("--json", action="store_true", help="print raw JSON")
    list_p.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigurationError, SpecError, StoreError, RegistryError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
