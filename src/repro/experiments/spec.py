"""Declarative experiment campaigns: a spec that expands into concrete runs.

An :class:`ExperimentSpec` is the JSON-round-trippable description of a whole
measurement campaign — the paper's Table 2 and Figs. 8-15 are each one spec:
a base :class:`~repro.bench.config.Configuration` plus parameter axes that
expand into the cross product of concrete runs.  Three axis mechanisms cover
every grid in the evaluation:

``grid``
    ``{"field": [values...]}`` — the Cartesian product over every listed
    field (Fig. 9's protocols × block sizes, Table 2's arrival rates).
``zip``
    ``{"field": [values...]}`` — parallel lists advanced together, for
    parameters that vary jointly (Fig. 15's ``(view_timeout,
    propose_wait_after_tc)`` settings).
``points``
    an explicit list of override dicts, for irregular grids the product
    cannot express (Fig. 12's per-protocol cluster sizes, Fig. 9's missing
    OHS-400 point).

The three compose: each explicit point is crossed with each zip row and each
grid combination.  Keys starting with ``_`` are *tags*: they are recorded in
each run's ``params`` (so report code can label series) but never touch the
configuration and never enter the run's content hash.

``repetitions`` replicates every expanded point; the ``seed_policy`` decides
how: ``"increment"`` (default) gives repetition *k* seed ``seed + k`` for
statistically independent repeats, ``"fixed"`` reuses the same seed (useful
to measure the simulator's own determinism).

Every concrete run carries a :func:`run_key` — a content hash over its
configuration (and scenario, if any) — which is how the
:class:`~repro.experiments.store.ResultStore` recognizes already-finished
points when a campaign is resumed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Dict, List, Optional, Union

from repro.bench.config import Configuration
from repro.scenario import Scenario

SEED_POLICIES = ("increment", "fixed")

#: Width (in simulated seconds) of the throughput-timeline buckets recorded
#: for scenario runs, matching :class:`repro.scenario.ScenarioRunner`.
DEFAULT_BUCKET = 0.5


class SpecError(ValueError):
    """An experiment spec is malformed (bad axis, unknown field, ...)."""


def _config_field_names() -> set:
    return {f.name for f in dataclasses.fields(Configuration)}


def run_key(config: Configuration, scenario: Optional[Scenario] = None,
            bucket: float = DEFAULT_BUCKET, salt: str = "") -> str:
    """Content hash identifying one concrete run (config + fault schedule).

    The key is a prefix of the SHA-256 of the canonical JSON serialization,
    so any field change produces a new key while labels/tags do not.  The
    timeline ``bucket`` participates only for scenario runs (it shapes the
    recorded timeline).  ``salt`` distinguishes deliberately identical runs
    — the ``"fixed"`` seed policy salts each repetition so same-seed repeats
    execute (and are stored) separately instead of deduplicating to one.
    """
    payload: Dict[str, Any] = {"config": config.to_dict()}
    if scenario is not None:
        payload["scenario"] = scenario.to_dict()
        payload["bucket"] = bucket
    if salt:
        payload["salt"] = salt
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class RunSpec:
    """One concrete run expanded from an :class:`ExperimentSpec`."""

    campaign: str
    index: int
    repetition: int
    #: The axis overrides that produced this run, including ``_`` tags.
    params: Dict[str, Any]
    config: Configuration
    scenario: Optional[Scenario] = None
    bucket: float = DEFAULT_BUCKET
    #: Distinguishes deliberately identical runs (fixed-seed repetitions).
    salt: str = ""

    @cached_property
    def run_id(self) -> str:
        """The content hash keying this run in a :class:`ResultStore`.

        Cached: the runner consults it several times per run (pending
        filter, payload, bookkeeping), and each computation serializes and
        hashes the whole config (and scenario).
        """
        return run_key(self.config, self.scenario, self.bucket, self.salt)

    def payload(self) -> Dict[str, Any]:
        """A picklable/JSON dict handed to campaign worker processes."""
        data: Dict[str, Any] = {
            "run_id": self.run_id,
            "campaign": self.campaign,
            "index": self.index,
            "repetition": self.repetition,
            "params": self.params,
            "config": self.config.to_dict(),
            "bucket": self.bucket,
        }
        if self.scenario is not None:
            data["scenario"] = self.scenario.to_dict()
        return data


@dataclass
class ExperimentSpec:
    """A declarative campaign: base configuration plus parameter axes."""

    name: str = "campaign"
    base: Configuration = field(default_factory=Configuration)
    grid: Dict[str, List[Any]] = field(default_factory=dict)
    zip_axes: Dict[str, List[Any]] = field(default_factory=dict)
    points: List[Dict[str, Any]] = field(default_factory=list)
    scenario: Optional[Scenario] = None
    repetitions: int = 1
    seed_policy: str = "increment"
    #: Timeline bucket width for scenario runs (simulated seconds).
    bucket: float = DEFAULT_BUCKET

    def __post_init__(self) -> None:
        if isinstance(self.base, dict):
            self.base = Configuration.from_dict(self.base)
        if isinstance(self.scenario, dict):
            self.scenario = Scenario.from_dict(self.scenario)
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        problems: List[str] = []
        if self.repetitions < 1:
            problems.append(f"repetitions: must be >= 1, got {self.repetitions}")
        if self.seed_policy not in SEED_POLICIES:
            problems.append(
                f"seed_policy: unknown policy {self.seed_policy!r}; "
                f"expected one of {', '.join(SEED_POLICIES)}"
            )
        if self.bucket <= 0:
            problems.append(f"bucket: must be positive, got {self.bucket}")

        known = _config_field_names()

        def check_keys(origin: str, keys) -> None:
            for key in keys:
                if not key.startswith("_") and key not in known:
                    problems.append(
                        f"{origin}: {key!r} is not a Configuration field "
                        f"(tags must start with '_')"
                    )

        check_keys("grid", self.grid)
        check_keys("zip", self.zip_axes)
        for i, point in enumerate(self.points):
            if not isinstance(point, dict):
                problems.append(f"points[{i}]: expected a dict of overrides")
                continue
            check_keys(f"points[{i}]", point)

        for origin, axes in (("grid", self.grid), ("zip", self.zip_axes)):
            for key, values in axes.items():
                if not isinstance(values, (list, tuple)) or not values:
                    problems.append(f"{origin}.{key}: expected a non-empty list")

        if self.zip_axes:
            lengths = {key: len(values) for key, values in self.zip_axes.items()}
            if len(set(lengths.values())) > 1:
                problems.append(f"zip: axes must have equal lengths, got {lengths}")

        overlap = set(self.grid) & set(self.zip_axes)
        if overlap:
            problems.append(
                f"grid/zip: the same field cannot be on both axes: {sorted(overlap)}"
            )
        point_keys = set().union(*(p.keys() for p in self.points if isinstance(p, dict))) if self.points else set()
        for origin, axis_keys in (("grid", set(self.grid)), ("zip", set(self.zip_axes))):
            clash = point_keys & axis_keys
            if clash:
                problems.append(
                    f"points/{origin}: the same field cannot be an axis and a "
                    f"point override: {sorted(clash)}"
                )

        if problems:
            raise SpecError(
                f"invalid experiment spec {self.name!r}:\n  - " + "\n  - ".join(problems)
            )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def expand(self) -> List[RunSpec]:
        """Expand the axes into the ordered list of concrete runs.

        Order is deterministic: explicit points (in list order) × zip rows
        (in list order) × grid combinations (itertools.product over the grid
        fields in insertion order) × repetitions.
        """
        points = self.points or [{}]
        if self.zip_axes:
            keys = list(self.zip_axes)
            length = len(self.zip_axes[keys[0]])
            zip_rows = [
                {key: self.zip_axes[key][i] for key in keys} for i in range(length)
            ]
        else:
            zip_rows = [{}]
        grid_keys = list(self.grid)
        if grid_keys:
            grid_combos = [
                dict(zip(grid_keys, values))
                for values in itertools.product(*(self.grid[k] for k in grid_keys))
            ]
        else:
            grid_combos = [{}]

        runs: List[RunSpec] = []
        index = 0
        for point in points:
            for zip_row in zip_rows:
                for combo in grid_combos:
                    overrides = {**point, **zip_row, **combo}
                    tags = {k: v for k, v in overrides.items() if k.startswith("_")}
                    fields = {k: v for k, v in overrides.items() if not k.startswith("_")}
                    config = self.base.replace(**fields) if fields else self.base
                    for rep in range(self.repetitions):
                        rep_config = config
                        salt = ""
                        if rep and self.seed_policy == "increment":
                            rep_config = config.replace(seed=config.seed + rep)
                        elif rep and self.seed_policy == "fixed":
                            # Same-seed repeats are content-identical; salt
                            # the key so each one executes and is stored.
                            salt = f"repetition-{rep}"
                        params = {**fields, **tags}
                        if self.repetitions > 1:
                            params["_repetition"] = rep
                        runs.append(
                            RunSpec(
                                campaign=self.name,
                                index=index,
                                repetition=rep,
                                params=params,
                                config=rep_config,
                                scenario=self.scenario,
                                bucket=self.bucket,
                                salt=salt,
                            )
                        )
                        index += 1
        return runs

    def __len__(self) -> int:
        points = len(self.points) if self.points else 1
        zipped = len(next(iter(self.zip_axes.values()))) if self.zip_axes else 1
        grid = 1
        for values in self.grid.values():
            grid *= len(values)
        return points * zipped * grid * self.repetitions

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialize to a JSON-compatible dict (omitting empty axes)."""
        data: Dict[str, Any] = {"name": self.name, "base": self.base.to_dict()}
        if self.grid:
            data["grid"] = {k: list(v) for k, v in self.grid.items()}
        if self.zip_axes:
            data["zip"] = {k: list(v) for k, v in self.zip_axes.items()}
        if self.points:
            data["points"] = [dict(p) for p in self.points]
        if self.scenario is not None:
            data["scenario"] = self.scenario.to_dict()
        if self.repetitions != 1:
            data["repetitions"] = self.repetitions
        if self.seed_policy != "increment":
            data["seed_policy"] = self.seed_policy
        if self.bucket != DEFAULT_BUCKET:
            data["bucket"] = self.bucket
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ExperimentSpec":
        """Rebuild a spec serialized with :meth:`to_dict` (``zip`` alias ok).

        Unknown top-level keys are rejected — a flat Configuration dict (or
        a misspelled field) would otherwise silently expand to the default
        configuration.
        """
        if "spec" in data and isinstance(data["spec"], dict):
            data = data["spec"]
        known = {"name", "base", "config", "grid", "zip", "zip_axes",
                 "points", "scenario", "repetitions", "seed_policy", "bucket"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise SpecError(
                f"unknown spec keys: {', '.join(unknown)} "
                f"(expected {', '.join(sorted(known - {'config', 'zip_axes'}))}; "
                f"Configuration fields belong under 'base')"
            )
        return cls(
            name=data.get("name", "campaign"),
            base=data.get("base", data.get("config", {})),
            grid=data.get("grid", {}),
            zip_axes=data.get("zip", data.get("zip_axes", {})),
            points=data.get("points", []),
            scenario=data.get("scenario"),
            repetitions=data.get("repetitions", 1),
            seed_policy=data.get("seed_policy", "increment"),
            bucket=data.get("bucket", DEFAULT_BUCKET),
        )

    def to_json(self, **kwargs: Any) -> str:
        """The spec as a JSON string (``indent=2`` by default)."""
        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Rebuild a spec from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))
