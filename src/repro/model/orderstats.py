"""Order statistics of normal samples: the quorum-collection delay t_Q.

A leader needs votes from a quorum of 2f+1 replicas.  It already holds its
own vote, so it must wait for the (2N/3 - 1)-th fastest of the N-1 remaining
replicas' responses, each of which takes a normally distributed round trip.
The expected value of that order statistic is t_Q (paper §V-B2).
"""

from __future__ import annotations

import numpy as np
from scipy import integrate, stats


def expected_order_statistic(k: int, n: int, mean: float = 0.0, stddev: float = 1.0) -> float:
    """E[X_(k)] — the k-th smallest of n i.i.d. Normal(mean, stddev) samples.

    Uses the standard integral representation

        E[X_(k)] = n * C(n-1, k-1) * ∫ x φ(x) Φ(x)^(k-1) (1-Φ(x))^(n-k) dx

    evaluated numerically.  ``k`` is 1-indexed (k=1 is the minimum).
    """
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    if stddev < 0:
        raise ValueError("stddev must be non-negative")
    if stddev == 0:
        return mean

    def integrand(x: float) -> float:
        phi = stats.norm.pdf(x)
        cdf = stats.norm.cdf(x)
        return x * phi * cdf ** (k - 1) * (1.0 - cdf) ** (n - k)

    coefficient = n * _binomial(n - 1, k - 1)
    value, _err = integrate.quad(integrand, -10.0, 10.0, limit=200)
    return mean + stddev * coefficient * value


def expected_order_statistic_mc(
    k: int, n: int, mean: float = 0.0, stddev: float = 1.0, samples: int = 20000, seed: int = 7
) -> float:
    """Monte-Carlo estimate of the same order statistic (cross-check)."""
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    rng = np.random.default_rng(seed)
    draws = rng.normal(mean, stddev, size=(samples, n))
    draws.sort(axis=1)
    return float(draws[:, k - 1].mean())


def quorum_delay(num_nodes: int, rtt_mean: float, rtt_stddev: float) -> float:
    """t_Q: expected time for a leader to gather a quorum of votes.

    The quorum needs ``2N/3`` votes; the leader's own vote is free, so the
    delay is the (2N/3 - 1)-th order statistic of the other N-1 replicas'
    round-trip times (paper §V-B2).
    """
    if num_nodes < 2:
        return 0.0
    needed = int(np.ceil(2 * num_nodes / 3)) - 1
    needed = max(1, min(needed, num_nodes - 1))
    return expected_order_statistic(needed, num_nodes - 1, rtt_mean, rtt_stddev)


def _binomial(n: int, k: int) -> float:
    from math import comb

    return float(comb(n, k))
