"""The end-to-end latency model of §V, parameterized like the simulator.

The model follows the paper's decomposition

    latency(λ) = t_L + t_s + t_commit + w_Q(λ)

with the t_CPU and t_NIC terms expanded using the same cost and size models
the simulator charges, so the model-vs-implementation comparison (Fig. 8) is
apples-to-apples: both sides describe the same "machine".  The structure of
each term follows the paper:

* ``t_L`` — client/replica round trip (a measured network parameter);
* ``t_s`` — the service time of one block: leader CPU to build the proposal,
  NIC serialization on both ends, replica CPU to validate and vote, the
  order-statistic wait t_Q for a quorum of votes, and the next leader's CPU
  to absorb that quorum;
* ``t_commit`` — 2·t_s for HotStuff's three-chain rule, t_s for two-chain
  HotStuff and Streamlet (paper §V-D);
* ``w_Q`` — M/D/1 waiting with per-replica block arrival rate λ/(n·N) and
  effective service rate 1/(N·t_s) (paper Eq. 5).

Streamlet's vote broadcasting and message echoing add CPU work that is not
on the critical path but does consume capacity; the model folds it into the
effective service time used for both t_s and the queueing term, which is the
"captured by measured system parameters" treatment the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.crypto.costs import CryptoCostModel
from repro.model.orderstats import quorum_delay
from repro.model.queuing import md1_waiting_time
from repro.quorum.quorum import quorum_size
from repro.types.sizes import SizeModel

#: t_commit as a multiple of t_s, per protocol (paper §V-C3 and §V-D).
COMMIT_MULTIPLIER = {
    "hotstuff": 2.0,
    "2chainhs": 1.0,
    "streamlet": 1.0,
    "fasthotstuff": 1.0,
    "lbft": 1.0,
}

#: Protocols whose votes are broadcast and echoed (extra CPU load per view).
_BROADCAST_PROTOCOLS = {"streamlet"}
_VOTE_BROADCAST_ONLY = {"lbft"}


@dataclass
class ModelParameters:
    """Machine and workload parameters shared with the simulator."""

    num_nodes: int = 4
    block_size: int = 400
    payload_size: int = 0
    costs: CryptoCostModel = None  # type: ignore[assignment]
    sizes: SizeModel = None  # type: ignore[assignment]
    bandwidth_bps: float = 125_000_000.0
    one_way_delay_mean: float = 0.25e-3
    one_way_delay_stddev: float = 0.05e-3
    extra_one_way_delay: float = 0.0

    def __post_init__(self) -> None:
        if self.costs is None:
            self.costs = CryptoCostModel()
        if self.sizes is None:
            self.sizes = SizeModel()
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be at least 1")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    @property
    def rtt_mean(self) -> float:
        """Mean replica-to-replica round-trip time (the paper's µ)."""
        return 2.0 * (self.one_way_delay_mean + self.extra_one_way_delay)

    @property
    def rtt_stddev(self) -> float:
        """Standard deviation of the round-trip time (the paper's σ)."""
        return math.sqrt(2.0) * self.one_way_delay_stddev

    @classmethod
    def from_configuration(cls, config, costs: Optional[CryptoCostModel] = None) -> "ModelParameters":
        """Derive parameters from a benchmark :class:`Configuration`."""
        from repro.bench.profiles import cost_profile

        return cls(
            num_nodes=config.num_nodes,
            block_size=config.block_size,
            payload_size=config.payload_size,
            costs=costs if costs is not None else cost_profile(config.cost_profile),
            sizes=SizeModel(),
            bandwidth_bps=config.bandwidth_bps,
            one_way_delay_mean=config.base_delay_mean,
            one_way_delay_stddev=config.base_delay_stddev,
            extra_one_way_delay=config.extra_delay_mean,
        )


class AnalyticalModel:
    """Latency/throughput predictions for one protocol and parameter set."""

    def __init__(self, protocol: str, params: ModelParameters) -> None:
        key = protocol.lower().replace("-", "").replace("_", "")
        aliases = {"hs": "hotstuff", "2chs": "2chainhs", "twochain": "2chainhs", "sl": "streamlet", "fhs": "fasthotstuff"}
        key = aliases.get(key, key)
        if key not in COMMIT_MULTIPLIER:
            raise ValueError(f"no analytical model for protocol {protocol!r}")
        self.protocol = key
        self.params = params

    # ------------------------------------------------------------------
    # building blocks
    # ------------------------------------------------------------------
    def block_bytes(self) -> int:
        """Serialized size of a full block (the paper's m)."""
        p = self.params
        signers = quorum_size(p.num_nodes)
        return p.sizes.block_size(p.block_size, p.payload_size, signers)

    def nic_time(self) -> float:
        """t_NIC for a block: sender-side serialization of the quorum's copies
        plus one receiver-side copy (the paper's 2·m/b, broadcast-aware)."""
        p = self.params
        per_copy = self.block_bytes() / p.bandwidth_bps
        quorum_index = max(1, quorum_size(p.num_nodes) - 1)
        return quorum_index * per_copy + per_copy

    def quorum_wait(self) -> float:
        """t_Q: order-statistic wait for a quorum of votes (paper §V-B2)."""
        p = self.params
        return quorum_delay(p.num_nodes, p.rtt_mean, p.rtt_stddev)

    def client_round_trip(self) -> float:
        """t_L: the client/replica round trip."""
        return self.params.rtt_mean

    def _echo_overhead_per_view(self, batch_size: Optional[int] = None) -> float:
        """Extra CPU seconds per view from vote broadcasting and echoing."""
        p = self.params
        n = p.num_nodes
        block_fill = p.block_size if batch_size is None else batch_size
        if self.protocol in _BROADCAST_PROTOCOLS:
            # Every replica verifies the other replicas' broadcast votes plus
            # one echo of each vote and each proposal it did not originate.
            extra_votes = (n - 1) + (n - 1) * (n - 2)
            extra_proposals = n - 2
            return extra_votes * p.costs.vote_verify_cost() + extra_proposals * p.costs.proposal_verify_cost(block_fill)
        if self.protocol in _VOTE_BROADCAST_ONLY:
            return (n - 1) * p.costs.vote_verify_cost()
        return 0.0

    def service_time(self, batch_size: Optional[int] = None) -> float:
        """t_s: the time to serve (propose, replicate, certify) one block.

        ``batch_size`` defaults to the full block size (the paper's
        assumption that every block is full); latency predictions at light
        load evaluate it at the expected batch size instead, because blocks
        are only as full as the arrival rate makes them.

        Echo/broadcast overhead counts at half weight here: verifying echoed
        copies overlaps with the next view's pipeline, so only part of it
        extends the critical path (the rest is pure utilization and enters
        :meth:`effective_service_rate`).
        """
        p = self.params
        n = p.block_size if batch_size is None else max(1, min(p.block_size, batch_size))
        quorum_index = max(1, quorum_size(p.num_nodes) - 1)
        vote_transfer = 2.0 * p.sizes.vote_size() / p.bandwidth_bps
        leader_build = p.costs.proposal_build_cost(n)
        replica_validate = p.costs.proposal_verify_cost(n)
        replica_vote = p.costs.vote_build_cost()
        leader_absorb_votes = quorum_index * p.costs.vote_verify_cost()
        nic = self.nic_time() * (p.sizes.block_size(n, p.payload_size, quorum_size(p.num_nodes)) / self.block_bytes())
        return (
            leader_build
            + nic
            + replica_validate
            + replica_vote
            + vote_transfer
            + self.quorum_wait()
            + leader_absorb_votes
            + 0.5 * self._echo_overhead_per_view(n)
        )

    def expected_batch_size(self, arrival_rate: float) -> int:
        """Expected transactions per block at a given total arrival rate.

        A proposer batches whatever arrived during the previous view, so the
        fill level is the fixed point of ``n = arrival_rate · t_s(n)``,
        capped at the configured block size.
        """
        if arrival_rate <= 0:
            return 1
        n = float(self.params.block_size)
        for _ in range(8):
            n = min(self.params.block_size, max(1.0, arrival_rate * self.service_time(int(n))))
        return int(round(n))

    def commit_time(self) -> float:
        """t_commit: how long a certified block waits for the commit rule."""
        return COMMIT_MULTIPLIER[self.protocol] * self.service_time()

    # ------------------------------------------------------------------
    # queueing and end-to-end latency
    # ------------------------------------------------------------------
    def block_arrival_rate(self, arrival_rate: float) -> float:
        """γ: per-replica block arrival rate for a total tx arrival rate λ."""
        p = self.params
        return arrival_rate / (p.block_size * p.num_nodes)

    def effective_service_rate(self) -> float:
        """u: per-replica effective service rate (a replica leads every N views).

        The full echo/broadcast overhead counts here: it keeps the CPU busy
        and therefore bounds how fast views can be served back to back.
        """
        busy_view_time = self.service_time() + 0.5 * self._echo_overhead_per_view()
        return 1.0 / (self.params.num_nodes * busy_view_time)

    def waiting_time(self, arrival_rate: float) -> float:
        """w_Q(λ): average queueing delay before a transaction's block is served."""
        if arrival_rate <= 0:
            return 0.0
        return md1_waiting_time(self.block_arrival_rate(arrival_rate), self.effective_service_rate())

    def saturation_rate(self) -> float:
        """The transaction arrival rate at which the queue saturates (ρ = 1)."""
        return self.params.block_size / self.service_time()

    def latency(self, arrival_rate: float = 0.0) -> float:
        """End-to-end latency prediction for a total arrival rate λ (Tx/s).

        The service and commit terms are evaluated at the expected block fill
        for this arrival rate: at light load blocks are small and views are
        correspondingly short.
        """
        waiting = self.waiting_time(arrival_rate)
        if waiting == float("inf"):
            return float("inf")
        fill = self.expected_batch_size(arrival_rate) if arrival_rate > 0 else 1
        effective_ts = self.service_time(fill)
        commit = COMMIT_MULTIPLIER[self.protocol] * effective_ts
        return self.client_round_trip() + effective_ts + commit + waiting

    def predict_curve(self, arrival_rates: Iterable[float]) -> List[Tuple[float, float]]:
        """(throughput, latency) pairs for the model line of Fig. 8."""
        curve = []
        for rate in arrival_rates:
            curve.append((float(rate), self.latency(float(rate))))
        return curve

    def summary(self) -> dict:
        """The model's building blocks, for reports and debugging."""
        return {
            "protocol": self.protocol,
            "block_bytes": self.block_bytes(),
            "t_nic": self.nic_time(),
            "t_q": self.quorum_wait(),
            "t_s": self.service_time(),
            "t_commit": self.commit_time(),
            "t_l": self.client_round_trip(),
            "saturation_tps": self.saturation_rate(),
        }
