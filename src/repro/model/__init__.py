"""Analytical performance model (paper §V).

The model estimates the latency of a transaction as

    latency = t_L + t_s + t_commit + w_Q

where ``t_L`` is the client round-trip, ``t_s`` the service time of the block
carrying the transaction, ``t_commit`` the time until the commit rule is met
(protocol dependent: 2·t_s for HotStuff, t_s for two-chain HotStuff and
Streamlet), and ``w_Q`` the M/D/1 waiting time induced by the transaction
arrival rate.  It is used to cross-validate the simulator (Fig. 8) and to
give back-of-the-envelope forecasts.
"""

from repro.model.orderstats import expected_order_statistic, quorum_delay
from repro.model.predictions import AnalyticalModel, ModelParameters
from repro.model.queuing import md1_waiting_time, utilization

__all__ = [
    "AnalyticalModel",
    "ModelParameters",
    "expected_order_statistic",
    "md1_waiting_time",
    "quorum_delay",
    "utilization",
]
