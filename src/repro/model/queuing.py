"""Queueing building blocks: the M/D/1 waiting time of the paper's model."""

from __future__ import annotations


def utilization(arrival_rate: float, service_rate: float) -> float:
    """ρ = γ / u for a single-server queue."""
    if service_rate <= 0:
        raise ValueError("service rate must be positive")
    if arrival_rate < 0:
        raise ValueError("arrival rate must be non-negative")
    return arrival_rate / service_rate


def md1_waiting_time(arrival_rate: float, service_rate: float) -> float:
    """Average waiting time of an M/D/1 queue: w_Q = ρ / (2u(1-ρ)).

    Returns ``inf`` at or beyond saturation (ρ ≥ 1), which the caller can use
    to detect that a requested arrival rate exceeds the protocol's capacity.
    """
    rho = utilization(arrival_rate, service_rate)
    if rho >= 1.0:
        return float("inf")
    return rho / (2.0 * service_rate * (1.0 - rho))


def md1_sojourn_time(arrival_rate: float, service_rate: float) -> float:
    """Average time in system (waiting + service) of an M/D/1 queue."""
    waiting = md1_waiting_time(arrival_rate, service_rate)
    if waiting == float("inf"):
        return waiting
    return waiting + 1.0 / service_rate
