"""The checkpoint artifact: a committed-prefix snapshot of one replica.

A :class:`Checkpoint` captures everything a far-behind replica needs to skip
replaying the chain below a committed height, mirroring the committed-prefix
checkpoints of deployed LibraBFT-style systems:

* the **checkpoint block** itself (the committed main-chain block at the
  checkpoint height) and the **quorum certificate** for it, which is what
  lets a receiver trust the snapshot without replaying history;
* the **executor state** (:class:`~repro.executor.kvstore.KVSnapshot`) as of
  applying every committed transaction up to the checkpoint block;
* the **commit-log index** (main-chain block ids, genesis first) up to the
  checkpoint, which keeps cross-replica consistency hashes comparable after
  the blocks themselves are truncated away.

Checkpoints are immutable; the taker keeps its latest one in memory to serve
``SnapshotRequest`` traffic (a production system would persist it to disk).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.executor.kvstore import KVSnapshot
from repro.types.block import Block
from repro.types.certificates import QuorumCertificate


@dataclass(frozen=True)
class Checkpoint:
    """A committed-prefix checkpoint of one replica's state."""

    #: Main-chain height of the checkpoint block.
    height: int
    #: The committed block at ``height`` (the snapshot's trust anchor).
    block: Block
    #: Quorum certificate for ``block`` — a receiver validates this before
    #: installing; the executor state rides on the certificate's authority.
    qc: QuorumCertificate
    #: Commit-log index: main-chain block ids, genesis first, ending at
    #: ``block`` (so ``len(committed_ids) == height + 1``).
    committed_ids: Tuple[str, ...]
    #: Executor key-value state after applying the committed prefix.
    state: KVSnapshot
    #: Simulated time at which the checkpoint was taken.
    taken_at: float

    def is_consistent(self) -> bool:
        """Structural self-checks a receiver runs before trusting the QC."""
        return (
            bool(self.committed_ids)
            and self.committed_ids[-1] == self.block.block_id
            and len(self.committed_ids) == self.height + 1
            and self.block.height == self.height
            and self.qc.block_id == self.block.block_id
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Checkpoint(height={self.height}, block={self.block.block_id[:10]}, "
            f"kv_items={len(self.state.items)}, taken_at={self.taken_at:.3f})"
        )
