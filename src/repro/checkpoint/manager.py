"""The per-replica checkpoint manager: periodic snapshots, log truncation,
and snapshot transfer for far-behind replicas.

One :class:`CheckpointManager` hangs off every replica (like the sync
manager) and owns the whole checkpoint lifecycle:

* **Taking** — every ``interval`` committed blocks (:meth:`on_commit`, called
  from the replica's commit path) the manager truncates the forest below the
  committed head: blocks below the watermark free their vertices and
  transactions, only the commit-log index (ids) survives, so a long run's
  forest holds O(interval) blocks instead of O(run length).  Taking a
  checkpoint schedules no events, consumes no randomness, and charges no
  CPU, so a checkpointed run's committed-throughput and latency metrics are
  bit-identical to a checkpointing-disabled run.  The snapshot artifact
  itself (:class:`~repro.checkpoint.snapshot.Checkpoint`) is *materialized
  lazily* when a peer actually asks: the executor state and the commit-log
  index are both append-only snapshots of committed history, so the state
  "as of the watermark" can be produced on demand instead of being copied on
  every interval — O(state) per snapshot transfer rather than per K commits.
* **Serving** — a :class:`~repro.checkpoint.messages.SnapshotRequest` is
  answered with a checkpoint of the responder's committed prefix when the
  requester's anchor lies below the truncation watermark (the blocks that
  would connect it no longer exist — the snapshot *is* the answer), and
  with an explicit ``checkpoint=None`` negative otherwise, so a requester
  within block-serving range falls back to the cheaper block fetch without
  burning retry rounds.  The sync manager likewise calls
  :meth:`offer_snapshot` for a ``BlockRequest`` anchored below the
  watermark.
* **Installing** — a received checkpoint is validated (structural
  consistency plus a quorum of valid signatures on its certificate, reusing
  the sync manager's QC check) and installed: the forest resets to the
  checkpoint block as its committed root, the executor state is restored,
  and the certificate flows through the ordinary state-updating rule so the
  protocol's hQC/lock and the pacemaker's view catch up.  Ordinary block
  fetching (:mod:`repro.sync`) then covers the remaining gap above the
  checkpoint — strictly fewer blocks than walking the whole chain.
* **Recovery** — :meth:`on_recover` runs before the sync manager's catch-up:
  snapshot rounds are retried on the sync cadence until a checkpoint
  installs or a negative arrives, after which block fetching takes over.

Both message kinds register their handlers with the replica's dispatch
registry (:mod:`repro.core.dispatch`), so snapshot transfer is wired in as a
plugin exactly like the block-fetch protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Optional

from repro.checkpoint.messages import SnapshotRequest, SnapshotResponse
from repro.checkpoint.snapshot import Checkpoint
from repro.forest.forest import ForestError
from repro.obs import trace as obs_trace
from repro.types.messages import Message


@dataclass
class CheckpointSettings:
    """Knobs of the checkpoint policy (per replica)."""

    #: Take a checkpoint every this many committed blocks; 0 disables
    #: checkpointing (and therefore truncation) entirely.
    interval: int = 0
    #: Whether snapshots are served to and installed from peers during sync;
    #: with it off, checkpoints still bound local memory but far-behind
    #: replicas are limited to block fetching (which truncated peers may no
    #: longer be able to serve below their watermark).
    snapshot_sync: bool = True


@dataclass
class CheckpointStats:
    """Counters describing one replica's checkpoint activity."""

    checkpoints_taken: int = 0
    snapshots_installed: int = 0
    snapshots_served: int = 0
    snapshot_requests_sent: int = 0
    snapshot_requests_received: int = 0
    snapshot_responses_received: int = 0
    snapshot_bytes_sent: int = 0
    snapshot_bytes_fetched: int = 0
    blocks_truncated: int = 0
    invalid_snapshots: int = 0
    stale_snapshots: int = 0
    #: Largest number of blocks the forest held at any commit, which is what
    #: the bounded-memory acceptance checks (O(interval), not O(run)).
    peak_forest_blocks: int = 0


class CheckpointManager:
    """Owns checkpointing, truncation, and snapshot transfer for one replica."""

    def __init__(self, replica, settings: Optional[CheckpointSettings] = None) -> None:
        self.replica = replica
        self.settings = settings if settings is not None else CheckpointSettings()
        self.stats = CheckpointStats()
        #: Optional MetricsCollector; wired by the cluster builder for every
        #: replica (like sync metrics, the interesting installers are the
        #: recovered replicas, which are rarely the observer).
        self.metrics = None

        self._catchup_pending = False
        self._catchup_rounds = 0

    @property
    def enabled(self) -> bool:
        """True when a positive checkpoint interval is configured."""
        return self.settings.interval > 0

    @property
    def snapshot_sync_enabled(self) -> bool:
        """True when this replica serves/installs snapshots during sync."""
        return (
            self.enabled
            and self.settings.snapshot_sync
            and self.replica.sync.settings.enabled
        )

    # ------------------------------------------------------------------
    # taking checkpoints (commit hook)
    # ------------------------------------------------------------------
    def on_commit(self) -> None:
        """Maybe take a checkpoint; called after every commit batch.

        A take is truncation plus bookkeeping — O(interval), independent of
        run length.  The shippable snapshot is materialized on demand by
        :meth:`current_checkpoint`, because the executor state and the
        commit-log index only ever *append* committed history: the state "as
        of the watermark" is recoverable from the live structures whenever a
        peer asks, without a copy per interval.
        """
        if not self.enabled:
            return
        forest = self.replica.forest
        self.stats.peak_forest_blocks = max(self.stats.peak_forest_blocks, len(forest))
        if self.metrics is not None:
            # Reported every commit, not just on takes, so a run whose
            # interval never completes still records its true peak.
            self.metrics.record_forest_size(
                self.replica.node_id, len(forest), self.replica.scheduler.now
            )
        height = forest.committed_height
        if height - forest.base_height < self.settings.interval:
            return
        if forest.last_committed().qc is None:
            # The head commit is not yet certified from this replica's view;
            # wait for a commit whose certificate a snapshot could ship.
            return
        removed = forest.truncate_below(height)
        self.stats.checkpoints_taken += 1
        self.stats.blocks_truncated += removed
        if self.metrics is not None:
            self.metrics.record_checkpoint(
                self.replica.node_id, height, removed, self.replica.scheduler.now
            )
        tr = self.replica.tracer
        if tr is not None:
            tr.emit(
                self.replica.scheduler.now, self.replica.node_id,
                obs_trace.CHECKPOINT, "checkpoint",
                self.replica.pacemaker.current_view,
                {"height": height, "truncated": removed},
            )

    def current_checkpoint(self) -> Optional[Checkpoint]:
        """Materialize a checkpoint of the committed prefix, or ``None``.

        Anchored at the newest committed block that carries a certificate
        (in every reachable state that is the committed head itself).  The
        executor snapshot reflects everything committed so far; if the
        anchor had to step back past an uncertified head, the extra applied
        transactions are harmless — installs are idempotent at the executor.
        """
        forest = self.replica.forest
        vertex = forest.last_committed()
        while vertex is not None and vertex.committed and vertex.qc is None:
            vertex = forest.maybe_get(vertex.block.parent_id)
        if vertex is None or not vertex.committed or vertex.qc is None:
            return None
        return Checkpoint(
            height=vertex.height,
            block=vertex.block,
            qc=vertex.qc,
            committed_ids=forest.committed_prefix(vertex.height),
            state=self.replica.kvstore.snapshot(),
            taken_at=self.replica.scheduler.now,
        )

    # ------------------------------------------------------------------
    # recovery catch-up (snapshot first, then blocks)
    # ------------------------------------------------------------------
    def on_recover(self) -> bool:
        """Start a snapshot catch-up; True if block fetching is deferred.

        When snapshot sync is off this is a no-op returning False and the
        replica falls straight through to the sync manager's block catch-up,
        preserving the pre-checkpoint recovery path exactly.
        """
        if not self.snapshot_sync_enabled:
            return False
        self._catchup_pending = True
        self._catchup_rounds = 0
        self._catchup_tick()
        return True

    def _catchup_tick(self) -> None:
        if not self._catchup_pending or self.replica._crashed:
            return
        sync = self.replica.sync
        if self._catchup_rounds >= sync.settings.max_rounds_per_target:
            # No peer answered with anything; fall back to block fetching.
            self._finish_catchup()
            return
        self._catchup_rounds += 1
        self._send_request()
        self.replica.scheduler.call_after(sync.request_delay(), self._catchup_tick)

    def _finish_catchup(self) -> None:
        """Hand the rest of the gap to the ordinary block-fetch catch-up."""
        if not self._catchup_pending:
            return
        self._catchup_pending = False
        self.replica.sync.on_recover()

    def _send_request(self) -> None:
        replica = self.replica
        peers = replica.sync._pick_peers()
        if not peers:
            return
        request = SnapshotRequest(
            sender=replica.node_id,
            size_bytes=replica.size_model.snapshot_request_size(),
            known_height=replica.forest.committed_height,
        )
        self.stats.snapshot_requests_sent += len(peers)
        for peer in peers:
            replica.network.send(replica.node_id, peer, request)

    # ------------------------------------------------------------------
    # serving snapshots (responder side)
    # ------------------------------------------------------------------
    def handle_request(self, message: SnapshotRequest) -> None:
        self.stats.snapshot_requests_received += 1
        self._respond(message.sender, message.known_height)

    def offer_snapshot(self, peer: str, known_height: int) -> bool:
        """Answer an unservable BlockRequest with a snapshot (sync delegate).

        Returns True if a checkpoint above ``known_height`` was offered;
        False when snapshot sync is off or nothing useful is held (the sync
        responder then stays silent, as for any unservable request).
        """
        checkpoint = self._usable_checkpoint(known_height)
        if checkpoint is None:
            return False
        self._send_response(peer, checkpoint)
        return True

    def _usable_checkpoint(self, known_height: int) -> Optional[Checkpoint]:
        """A checkpoint worth shipping to a peer anchored at ``known_height``.

        Only requesters below the truncation watermark get one — anyone
        anchored inside the retained window is served blocks (cheaper, and
        exactly what the pre-checkpoint protocol did).
        """
        if not self.snapshot_sync_enabled:
            return None
        if known_height >= self.replica.forest.base_height - 1:
            return None  # connecting blocks still exist; blocks win
        checkpoint = self.current_checkpoint()
        if checkpoint is None or checkpoint.height <= known_height:
            return None
        return checkpoint

    def _respond(self, peer: str, known_height: int) -> None:
        self._send_response(peer, self._usable_checkpoint(known_height))

    def _send_response(self, peer: str, checkpoint: Optional[Checkpoint]) -> None:
        replica = self.replica
        response = SnapshotResponse(
            sender=replica.node_id,
            size_bytes=replica.size_model.snapshot_response_size(checkpoint),
            checkpoint=checkpoint,
            responder_height=replica.forest.committed_height,
        )
        # Bytes count for every response (negatives are traffic too), so
        # sent and fetched totals reconcile across the cluster; served
        # counts only actual checkpoints shipped.
        self.stats.snapshot_bytes_sent += response.size_bytes
        if checkpoint is not None:
            self.stats.snapshots_served += 1
        cost = replica.cost_model.snapshot_build_cost(
            len(checkpoint.state.items) if checkpoint is not None else 0
        )
        replica.cpu.submit(
            cost, replica.network.send, replica.node_id, peer, response
        )

    # ------------------------------------------------------------------
    # installing snapshots (requester side)
    # ------------------------------------------------------------------
    def handle_response(self, message: SnapshotResponse) -> None:
        replica = self.replica
        self.stats.snapshot_responses_received += 1
        self.stats.snapshot_bytes_fetched += message.size_bytes
        if self.metrics is not None:
            self.metrics.record_snapshot_response(
                replica.node_id, message.size_bytes, replica.scheduler.now
            )
        checkpoint = message.checkpoint
        if checkpoint is None:
            # Explicit negative: no peer state ahead of us — blocks suffice.
            self._finish_catchup()
            return
        if checkpoint.height <= replica.forest.committed_height:
            # Stale or duplicate (e.g. the second fanout answer after the
            # first already installed); block fetching covers what remains.
            self.stats.stale_snapshots += 1
            self._finish_catchup()
            return
        if not checkpoint.is_consistent() or not replica.sync._qc_valid(checkpoint.qc):
            # A forged or corrupt certificate must not anchor local state;
            # the retry tick keeps asking other peers.  (The KV state itself
            # rides on the certificate's authority — blocks carry no state
            # root to check it against; see docs/ARCHITECTURE.md.)
            self.stats.invalid_snapshots += 1
            return
        self._install(checkpoint)
        self._finish_catchup()

    def _install(self, checkpoint: Checkpoint) -> None:
        """Adopt ``checkpoint`` as the new committed root."""
        replica = self.replica
        try:
            replica.forest.install_checkpoint(
                checkpoint.block, checkpoint.qc, list(checkpoint.committed_ids)
            )
        except ForestError:
            self.stats.invalid_snapshots += 1
            return
        replica.kvstore.restore(checkpoint.state)
        # The certificate flows through the ordinary state-updating rule:
        # hQC and the protocol lock re-derive from it, and the pacemaker
        # advances toward the live view.
        replica._note_synced_qc(checkpoint.qc)
        self.stats.snapshots_installed += 1
        if self.metrics is not None:
            self.metrics.record_snapshot_install(replica.node_id, replica.scheduler.now)
        tr = replica.tracer
        if tr is not None:
            tr.emit(
                replica.scheduler.now, replica.node_id, obs_trace.CHECKPOINT,
                "snapshot-install", replica.pacemaker.current_view,
                {"height": checkpoint.height},
            )
        # Proposals parked on the checkpoint block are live again.
        for child in replica.forest.pop_orphans(checkpoint.block.block_id):
            if child.block_id not in replica.forest:
                replica._accept_block(child)


# ----------------------------------------------------------------------
# dispatch wiring: the snapshot protocol's handlers and CPU costs
# ----------------------------------------------------------------------
# Imported here rather than at the top: repro.core's package init imports the
# replica, which imports this module for its settings — registering handlers
# after the classes are defined keeps that cycle harmless whichever side is
# imported first.
from repro.core.dispatch import register_message_handler  # noqa: E402


def _request_cost(replica, message: Message) -> float:
    return replica.cost_model.snapshot_request_cost()


def _response_cost(replica, message: Message) -> float:
    checkpoint = message.checkpoint
    if checkpoint is None:
        # A negative carries no certificate to verify: parse-only cost.
        return replica.cost_model.snapshot_request_cost()
    items = len(checkpoint.state.items) + len(checkpoint.committed_ids)
    return replica.cost_model.snapshot_install_cost(items)


@register_message_handler("SnapshotRequest", cost=_request_cost)
def _handle_snapshot_request(replica, message: Message) -> None:
    replica.checkpoint.handle_request(message)


@register_message_handler("SnapshotResponse", cost=_response_cost)
def _handle_snapshot_response(replica, message: Message) -> None:
    replica.checkpoint.handle_response(message)
