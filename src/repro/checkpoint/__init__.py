"""Checkpointing and log truncation: bounded-memory long runs.

The forest, the executor's KV log, and the sync protocol all paid
O(run-length) memory before this package existed.  A
:class:`~repro.checkpoint.manager.CheckpointManager` per replica snapshots
the committed prefix every ``interval`` commits, truncates the forest below
the checkpoint, and extends the sync protocol with snapshot transfer
(:class:`~repro.checkpoint.messages.SnapshotRequest` /
:class:`~repro.checkpoint.messages.SnapshotResponse`) so a recovered or
far-behind replica installs a checkpoint and fetches only the blocks above
it instead of walking the whole chain.

Configure through :class:`~repro.bench.config.Configuration`
(``checkpoint_interval``, ``snapshot_sync_enabled``) or directly via
:class:`~repro.checkpoint.manager.CheckpointSettings` on the replica.
"""

from repro.checkpoint.manager import (
    CheckpointManager,
    CheckpointSettings,
    CheckpointStats,
)
from repro.checkpoint.messages import SnapshotRequest, SnapshotResponse
from repro.checkpoint.snapshot import Checkpoint

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "CheckpointSettings",
    "CheckpointStats",
    "SnapshotRequest",
    "SnapshotResponse",
]
