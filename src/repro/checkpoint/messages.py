"""Wire messages of the snapshot-transfer protocol.

Two message kinds extending the block-fetch exchange of :mod:`repro.sync`
down to state level (LibraBFT's state-sync / ``EpochRetrieval`` analogue):

* :class:`SnapshotRequest` — "if you hold a checkpoint above my committed
  height, send it".  Sent by a recovered replica before walking blocks, so a
  deep gap is crossed in one transfer instead of many block batches.
* :class:`SnapshotResponse` — either a :class:`~repro.checkpoint.snapshot.Checkpoint`
  ahead of the requester, or ``checkpoint=None`` meaning "nothing ahead of
  you" — an explicit negative that lets the requester fall back to ordinary
  block fetching immediately instead of burning retry rounds.

Both carry ``size_bytes`` like every other message and flow through the same
NIC / propagation / partition pipeline; a snapshot transfer is real traffic
whose cost scales with the state it carries.
"""

from __future__ import annotations

from typing import Optional

from repro.checkpoint.snapshot import Checkpoint
from repro.types.messages import Message, UNASSIGNED_MESSAGE_ID


class SnapshotRequest(Message):
    """A replica's request for any checkpoint above its committed height."""

    __slots__ = ("known_height",)

    _compare_fields = ("sender", "size_bytes", "known_height")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        known_height: int = 0,
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.known_height = known_height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotRequest(known_height={self.known_height}, from={self.sender})"


class SnapshotResponse(Message):
    """A checkpoint answering a :class:`SnapshotRequest` (or a negative)."""

    __slots__ = ("checkpoint", "responder_height")

    _compare_fields = ("sender", "size_bytes", "checkpoint", "responder_height")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        checkpoint: Optional[Checkpoint] = None,
        responder_height: int = 0,
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        #: ``None`` means the responder holds nothing ahead of the requester's
        #: committed height; the requester falls back to block fetching.
        self.checkpoint = checkpoint
        #: The responder's committed height when it answered (diagnostics).
        self.responder_height = responder_height

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        held = f"height={self.checkpoint.height}" if self.checkpoint else "none"
        return f"SnapshotResponse({held}, from={self.sender})"
