"""Wire messages of the snapshot-transfer protocol.

Two message kinds extending the block-fetch exchange of :mod:`repro.sync`
down to state level (LibraBFT's state-sync / ``EpochRetrieval`` analogue):

* :class:`SnapshotRequest` — "if you hold a checkpoint above my committed
  height, send it".  Sent by a recovered replica before walking blocks, so a
  deep gap is crossed in one transfer instead of many block batches.
* :class:`SnapshotResponse` — either a :class:`~repro.checkpoint.snapshot.Checkpoint`
  ahead of the requester, or ``checkpoint=None`` meaning "nothing ahead of
  you" — an explicit negative that lets the requester fall back to ordinary
  block fetching immediately instead of burning retry rounds.

Both carry ``size_bytes`` like every other message and flow through the same
NIC / propagation / partition pipeline; a snapshot transfer is real traffic
whose cost scales with the state it carries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.checkpoint.snapshot import Checkpoint
from repro.types.messages import Message


@dataclass(frozen=True)
class SnapshotRequest(Message):
    """A replica's request for any checkpoint above its committed height."""

    known_height: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SnapshotRequest(known_height={self.known_height}, from={self.sender})"


@dataclass(frozen=True)
class SnapshotResponse(Message):
    """A checkpoint answering a :class:`SnapshotRequest` (or a negative)."""

    #: ``None`` means the responder holds nothing ahead of the requester's
    #: committed height; the requester falls back to block fetching.
    checkpoint: Optional[Checkpoint] = None
    #: The responder's committed height when it answered (diagnostics).
    responder_height: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        held = f"height={self.checkpoint.height}" if self.checkpoint else "none"
        return f"SnapshotResponse({held}, from={self.sender})"
