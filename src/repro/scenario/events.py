"""Typed timeline events: the vocabulary of declarative fault schedules.

Each event is a small dataclass with an ``at`` timestamp (simulated seconds)
and an ``apply(cluster)`` method; a :class:`~repro.scenario.runner.Scenario`
schedules every event on the cluster's event scheduler before the run
starts, so "crash r3 at t=20" is data, not imperative wiring inside an
experiment script.  Events serialize to JSON-compatible dicts tagged with a
``kind`` (mirroring Bamboo's JSON config file) and are themselves an
extension point: register new kinds with :func:`register_scenario_event`::

    @register_scenario_event("drop-messages")
    @dataclass
    class DropMessages(ScenarioEvent):
        fraction: float = 0.1
        def apply(self, cluster):
            ...

Replica references accept a concrete node id (``"r2"``) or the symbolic
names ``"first"`` / ``"last"`` (resolved against the cluster's node list;
``"last"`` is the conventional victim because r0 is the metrics observer).
"""

from __future__ import annotations

import dataclasses
from abc import abstractmethod
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Dict, List, Optional, Type

from repro.core.byzantine import STRATEGIES, convert_replica
from repro.network.delays import DELAY_MODELS, make_delay_model
from repro.network.fluctuation import FluctuationWindow
from repro.network.partition import Partition as NetworkPartition
from repro.obs import trace as obs_trace
from repro.plugins import Registry

#: The scenario-event extension point, keyed by each event's ``kind`` tag.
SCENARIO_EVENTS: Registry[Type["ScenarioEvent"]] = Registry("scenario event")


def register_scenario_event(name: str, *aliases: str, override: bool = False) -> Callable:
    """Class decorator registering a ScenarioEvent subclass under ``name``.

    Also stamps the class's ``kind`` attribute, which tags the event's JSON
    serialization.
    """

    def decorator(cls: Type["ScenarioEvent"]) -> Type["ScenarioEvent"]:
        cls.kind = name
        return SCENARIO_EVENTS.register(name, *aliases, override=override)(cls)

    return decorator


def available_scenario_events() -> List[str]:
    """Canonical names of the registered scenario event kinds."""
    return SCENARIO_EVENTS.available()


@dataclass
class ScenarioEvent:
    """Base class: something that happens to a cluster at a point in time."""

    kind: ClassVar[str] = ""

    #: When the event fires, in simulated seconds from the start of the run.
    at: float = 0.0

    def schedule(self, cluster) -> None:
        """Arrange for :meth:`apply` to run at ``self.at`` on ``cluster``."""
        cluster.scheduler.call_at(self.at, self._fire, cluster)

    def _fire(self, cluster) -> None:
        """Apply the event, emitting a fault-trace record when tracing is on.

        Same scheduler entry as calling ``apply`` directly (one ``call_at``,
        no extra events), so enabling tracing cannot perturb event order.
        """
        tracer = getattr(cluster, "tracer", None)
        if tracer is not None:
            payload = {
                key: value
                for key, value in self.to_dict().items()
                if key not in ("kind", "at") and value is not None
            }
            tracer.emit(
                self.at,
                str(getattr(self, "replica", "cluster")),
                obs_trace.FAULT,
                self.kind,
                0,
                payload or None,
            )
        self.apply(cluster)

    @abstractmethod
    def apply(self, cluster) -> None:
        """Mutate the cluster; runs at simulated time ``self.at``."""

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """JSON-compatible dict tagged with this event's ``kind``."""
        return {"kind": self.kind, **dataclasses.asdict(self)}

    @staticmethod
    def from_dict(data: Dict) -> "ScenarioEvent":
        """Rebuild an event from :meth:`to_dict` output via the registry."""
        params = dict(data)
        kind = params.pop("kind", None)
        if kind is None:
            raise ValueError(f"scenario event dict needs a 'kind' key: {data!r}")
        return SCENARIO_EVENTS.get(kind)(**params)


def resolve_replica(cluster, replica: str) -> str:
    """Resolve a replica reference (node id, "first", or "last") to an id."""
    node_ids = cluster.config.node_ids()
    if replica == "first":
        return node_ids[0]
    if replica == "last":
        return node_ids[-1]
    if replica not in cluster.replicas:
        raise ValueError(
            f"unknown replica {replica!r}; expected one of "
            f"{', '.join(node_ids)}, 'first', or 'last'"
        )
    return replica


@register_scenario_event("crash-replica", "crash")
@dataclass
class CrashReplica(ScenarioEvent):
    """Crash a replica: it stops participating and drops all traffic."""

    replica: str = "last"

    def apply(self, cluster) -> None:
        cluster.replicas[resolve_replica(cluster, self.replica)].crash()


@register_scenario_event("recover-replica", "recover")
@dataclass
class RecoverReplica(ScenarioEvent):
    """Recover a crashed replica; it rejoins with its pre-crash state.

    The replica rejoins view synchronization (timeouts, TCs) and its sync
    manager fetches the blocks certified while it was down from peers
    (:mod:`repro.sync`), so recovery restores *full* participation: the
    replica votes on — and can lead — chains extending blocks it missed.
    See :meth:`repro.core.replica.Replica.recover`, and ``docs/SCENARIOS.md``
    for a runnable crash → recover → catch-up schedule.
    """

    replica: str = "last"

    def apply(self, cluster) -> None:
        cluster.replicas[resolve_replica(cluster, self.replica)].recover()


@register_scenario_event("network-fluctuation", "fluctuation")
@dataclass
class NetworkFluctuation(ScenarioEvent):
    """A window of extra, highly variable delay on every replica link."""

    duration: float = 10.0
    min_delay: float = 5e-3
    max_delay: float = 50e-3

    def apply(self, cluster) -> None:
        cluster.network.add_fluctuation(
            FluctuationWindow(
                start=self.at,
                end=self.at + self.duration,
                min_delay=self.min_delay,
                max_delay=self.max_delay,
            )
        )


@register_scenario_event("partition", "split")
@dataclass
class Partition(ScenarioEvent):
    """Split the cluster into groups that cannot exchange messages.

    ``duration=None`` keeps the partition open until a :class:`Heal` event
    (or the end of the run).
    """

    groups: List[List[str]] = field(default_factory=list)
    duration: Optional[float] = None

    def apply(self, cluster) -> None:
        if not self.groups:
            raise ValueError("partition event needs at least one group")
        end = None if self.duration is None else self.at + self.duration
        cluster.network.add_partition(
            NetworkPartition(
                groups=tuple(frozenset(group) for group in self.groups),
                start=self.at,
                end=end,
            )
        )


@register_scenario_event("heal", "heal-partitions")
@dataclass
class Heal(ScenarioEvent):
    """Close every partition that is open at this point in time."""

    def apply(self, cluster) -> None:
        cluster.network.heal_partitions(self.at)


@register_scenario_event("set-delay-model", "set-delay")
@dataclass
class SetDelayModel(ScenarioEvent):
    """Swap the network's base or extra delay model mid-run.

    ``model`` is a JSON-style spec understood by
    :func:`repro.network.delays.make_delay_model`, e.g. ``{"kind": "normal",
    "mean_delay": 5e-3, "stddev": 1e-3}`` — this is how a scenario expresses
    "the WAN got slower at t=30".
    """

    model: Dict = field(default_factory=dict)
    #: Which delay the model replaces: "extra" (Table I's ``delay`` knob)
    #: or "base" (the LAN itself).
    target: str = "extra"

    def apply(self, cluster) -> None:
        if self.target not in ("base", "extra"):
            raise ValueError(f"delay target must be 'base' or 'extra', got {self.target!r}")
        model = make_delay_model(self.model)
        if self.target == "base":
            cluster.network.base_delay = model
        else:
            cluster.network.extra_delay = model


@register_scenario_event("set-byzantine", "turn-byzantine")
@dataclass
class SetByzantine(ScenarioEvent):
    """Convert a live replica to a Byzantine strategy (or back to honest).

    The replica keeps its protocol state; only its behaviour changes — the
    simulation analogue of an adversary corrupting a running node.
    """

    replica: str = "last"
    strategy: str = "silence"

    def apply(self, cluster) -> None:
        STRATEGIES.canonical(self.strategy)  # fail fast with the available list
        convert_replica(
            cluster.replicas[resolve_replica(cluster, self.replica)], self.strategy
        )


@register_scenario_event("set-arrival-rate", "set-rate")
@dataclass
class SetArrivalRate(ScenarioEvent):
    """Change the total open-loop arrival rate (Tx/s across all clients).

    Applies to clients with a ``rate`` attribute (the Poisson family);
    closed-loop clients have no rate and are left untouched.
    """

    rate: float = 0.0

    def apply(self, cluster) -> None:
        if self.rate <= 0:
            raise ValueError(f"arrival rate must be positive, got {self.rate}")
        open_loop = [c for c in cluster.clients if hasattr(c, "rate")]
        for client in open_loop:
            client.rate = self.rate / len(open_loop)
