"""Scenarios: named, serializable fault schedules, and the runner for them.

A :class:`Scenario` is a list of typed timeline events plus an optional
duration override — the declarative replacement for hand-wiring fault
injection into each experiment script.  ``Scenario.from_dict`` /
``to_dict`` round-trip through the same JSON configuration style as
:class:`~repro.bench.config.Configuration`, so a whole experiment (cluster +
fault schedule) can live in one config file::

    {
      "config":   {"protocol": "hotstuff", "num_nodes": 4, ...},
      "scenario": {"name": "responsiveness", "events": [
          {"kind": "network-fluctuation", "at": 5.0, "duration": 10.0,
           "min_delay": 0.005, "max_delay": 0.05},
          {"kind": "crash-replica", "at": 20.0, "replica": "last"}
      ]}
    }

:class:`ScenarioRunner` builds the cluster through the ordinary registry
wiring (:func:`repro.bench.runner.build_cluster`), schedules every event,
runs to the horizon, and returns a :class:`ScenarioResult` with the summary
metrics plus the throughput timeline the paper's Fig. 15 plots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.config import Configuration
from repro.bench.metrics import RunMetrics, timeline_mean
from repro.bench.runner import Cluster, attach_host_perf, build_cluster
from repro.scenario.events import ScenarioEvent


@dataclass
class Scenario:
    """A named schedule of timeline events applied to one run."""

    name: str = "scenario"
    events: List[ScenarioEvent] = field(default_factory=list)
    #: Simulated end time of the run; ``None`` uses the configuration's
    #: ``total_duration``.
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        self.events = [
            ScenarioEvent.from_dict(e) if isinstance(e, dict) else e
            for e in self.events
        ]

    def schedule(self, cluster: Cluster) -> None:
        """Install every event on the cluster's scheduler (before start)."""
        for event in self.events:
            event.schedule(cluster)

    def horizon(self, config: Configuration) -> float:
        """The simulated end time of the run."""
        return self.duration if self.duration is not None else config.total_duration

    # ------------------------------------------------------------------
    # (de)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        """Serialize to a JSON-compatible dict."""
        data: Dict = {"name": self.name, "events": [e.to_dict() for e in self.events]}
        if self.duration is not None:
            data["duration"] = self.duration
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "Scenario":
        """Rebuild a scenario serialized with :meth:`to_dict`."""
        return cls(
            name=data.get("name", "scenario"),
            events=[ScenarioEvent.from_dict(e) for e in data.get("events", [])],
            duration=data.get("duration"),
        )


@dataclass
class ScenarioResult:
    """Outcome of one scenario run: summary metrics plus the timeline."""

    config: Configuration
    scenario: Scenario
    metrics: RunMetrics
    timeline: List[Tuple[float, float]]
    consistent: bool
    highest_view: int

    def mean_throughput(self, start: float, end: float) -> float:
        """Average Tx/s of the timeline buckets within [start, end)."""
        return timeline_mean(self.timeline, start, end)


class ScenarioRunner:
    """Builds a cluster, schedules a scenario's events, and runs it."""

    def __init__(self, config: Configuration, scenario: Scenario, bucket: float = 0.5) -> None:
        if config.mode != "model":
            raise ValueError(
                "scenarios schedule events on the simulated clock; "
                f"mode={config.mode!r} configurations cannot run one "
                "(use mode='model')"
            )
        self.config = config
        self.scenario = scenario
        #: Width of the throughput-timeline buckets, in simulated seconds.
        self.bucket = bucket

    def build(self) -> Cluster:
        """Build the cluster with every scenario event already scheduled."""
        cluster = build_cluster(self.config)
        self.scenario.schedule(cluster)
        return cluster

    def run(self, cluster: Optional[Cluster] = None) -> ScenarioResult:
        """Run the scenario to its horizon and summarize the outcome.

        Pass the cluster from :meth:`build` to keep access to per-replica
        state (forests, stats, executors) after the run — the fuzz harness's
        invariant oracles audit exactly that.
        """
        if cluster is None:
            cluster = self.build()
        horizon = self.scenario.horizon(self.config)
        started = time.perf_counter()
        cluster.start()
        cluster.run(until=horizon)
        elapsed = time.perf_counter() - started
        observer = cluster.replicas[cluster.observer_id]
        return ScenarioResult(
            config=self.config,
            scenario=self.scenario,
            metrics=attach_host_perf(cluster.metrics.summarize(), cluster, elapsed),
            timeline=cluster.metrics.throughput_timeline(bucket=self.bucket, end=horizon),
            consistent=cluster.consistency_check(),
            highest_view=observer.pacemaker.stats.highest_view,
        )


def run_scenario(
    config: Configuration, scenario: Scenario, bucket: float = 0.5
) -> ScenarioResult:
    """Convenience wrapper: ``ScenarioRunner(config, scenario).run()``."""
    return ScenarioRunner(config, scenario, bucket=bucket).run()
