"""Declarative fault-schedule scenarios.

This package turns "what happens during the run" into data: a
:class:`Scenario` is a list of typed timeline events (crashes, recoveries,
fluctuation windows, partitions, delay/strategy/rate changes) that a
:class:`ScenarioRunner` applies to a cluster built by the ordinary registry
wiring.  Scenarios serialize to/from JSON-style dicts, and event kinds are
an extension point (:func:`register_scenario_event`).
"""

from repro.scenario.events import (
    SCENARIO_EVENTS,
    CrashReplica,
    Heal,
    NetworkFluctuation,
    Partition,
    RecoverReplica,
    ScenarioEvent,
    SetArrivalRate,
    SetByzantine,
    SetDelayModel,
    available_scenario_events,
    register_scenario_event,
)
from repro.scenario.runner import Scenario, ScenarioResult, ScenarioRunner, run_scenario

__all__ = [
    "SCENARIO_EVENTS",
    "CrashReplica",
    "Heal",
    "NetworkFluctuation",
    "Partition",
    "RecoverReplica",
    "Scenario",
    "ScenarioEvent",
    "ScenarioResult",
    "ScenarioRunner",
    "SetArrivalRate",
    "SetByzantine",
    "SetDelayModel",
    "available_scenario_events",
    "register_scenario_event",
    "run_scenario",
]
