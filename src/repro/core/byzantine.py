"""Byzantine replica strategies (paper §IV-A).

Both strategies are implemented the way Bamboo implements them: by modifying
the Proposing rule only.  The attackers never violate the voting rule of
honest replicas — their proposals remain "valid" from an outsider's view —
which is what makes the attacks hard to detect while still degrading
performance.

* **Forking attack** — the Byzantine leader proposes a block extending an
  older ancestor, abandoning (and eventually overwriting) the uncommitted
  tail of the chain.  How far back it can fork is bounded by the honest
  replicas' lock: two blocks in HotStuff, one in two-chain HotStuff, none in
  Streamlet (whose longest-chain voting rule makes the deepest acceptable
  fork target the chain tip itself, i.e. honest behaviour).
* **Silence attack** — the Byzantine leader simply does not propose during
  its views, forcing a timeout and (in the HotStuff variants) the loss of the
  quorum certificate for the previous block.
"""

from __future__ import annotations

from typing import Optional

from repro.core.replica import Replica
from repro.protocols.safety import ProposalPlan


class SilentReplica(Replica):
    """A replica that stays silent whenever it is the leader."""

    strategy = "silence"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.views_silenced = 0

    def _propose(self, view: int) -> None:
        # Remain silent for the whole view; honest replicas will time out.
        self.views_silenced += 1


class ForkingReplica(Replica):
    """A replica that forks the chain as deeply as the voting rule allows."""

    strategy = "forking"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.forks_attempted = 0

    def _proposal_plan(self) -> Optional[ProposalPlan]:
        honest_plan = self.safety.choose_extension()
        depth = self._fork_depth()
        if depth <= 0:
            return honest_plan
        # Honest replicas have seen certificates only up to the highest QC
        # that was embedded in a disseminated proposal; their lock trails it
        # by (depth - 1) blocks.  Building on that lock keeps the proposal
        # acceptable to them while abandoning everything above it.
        target = self.forest.maybe_get(self.safety.public_high_qc.block_id)
        if target is None:
            return honest_plan
        for _ in range(depth - 1):
            parent = self.forest.maybe_get(target.block.parent_id)
            if parent is None:
                break
            target = parent
        if not target.certified or target.qc is None:
            return honest_plan
        if target.block_id == honest_plan.parent_id:
            return honest_plan
        self.forks_attempted += 1
        return ProposalPlan(parent_id=target.block_id, qc=target.qc)

    def _fork_depth(self) -> int:
        """How many uncommitted blocks the attacker can overwrite."""
        if self.safety.votes_broadcast and self.safety.protocol_name == "streamlet":
            # Honest replicas only vote for extensions of the longest
            # notarized chain, so no fork target deeper than the tip exists.
            return 0
        return self.safety.commit_rule_depth - 1


_STRATEGIES = {
    "": Replica,
    "none": Replica,
    "honest": Replica,
    "silence": SilentReplica,
    "forking": ForkingReplica,
}


def make_replica(strategy: str, *args, **kwargs) -> Replica:
    """Instantiate a replica with the given Byzantine strategy ("" = honest)."""
    key = strategy.lower()
    if key not in _STRATEGIES:
        raise ValueError(
            f"unknown Byzantine strategy {strategy!r}; expected one of "
            f"{sorted(k for k in _STRATEGIES if k)}"
        )
    return _STRATEGIES[key](*args, **kwargs)
