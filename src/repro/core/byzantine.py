"""Byzantine replica strategies (paper §IV-A).

The built-in strategies are implemented the way Bamboo implements them: by
modifying the Proposing rule (or, for the omission family, the outbound send
seam) only.  The attackers never violate the voting rule of honest replicas —
their proposals remain "valid" from an outsider's view — which is what makes
the attacks hard to detect while still degrading performance.

* **Forking attack** — the Byzantine leader proposes a block extending an
  older ancestor, abandoning (and eventually overwriting) the uncommitted
  tail of the chain.  How far back it can fork is bounded by the honest
  replicas' lock: two blocks in HotStuff, one in two-chain HotStuff, none in
  Streamlet (whose longest-chain voting rule makes the deepest acceptable
  fork target the chain tip itself, i.e. honest behaviour).
* **Silence attack** — the Byzantine leader simply does not propose during
  its views, forcing a timeout and (in the HotStuff variants) the loss of the
  quorum certificate for the previous block.
* **Equivocation** — the leader proposes two conflicting blocks to disjoint
  replica halves; harmless under intersecting quorums, fatal without them.
* **Delayed proposal** — the leader withholds its (valid) proposal for most
  of the view timeout, burning latency budget while staying plausible.
* **Targeted omission / delay** — the replica drops (or jitters, per
  SNIPPETS snippet 2) every protocol message addressed to a fixed victim
  set, starving specific peers instead of the whole cluster.

Strategies are an extension point: subclass :class:`Replica`, override the
proposing hooks, and register with :func:`register_strategy`::

    @register_strategy("equivocate")
    class EquivocatingReplica(Replica):
        _strategy_defaults = {"equivocations": 0}
        ...

``Configuration(strategy="equivocate")`` then works everywhere.  Per-run
counters go in ``_strategy_defaults`` (applied both at construction and by
:func:`convert_replica`, which scenario events use to turn an honest replica
Byzantine mid-run).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple, Type

from repro.core.replica import Replica
from repro.crypto.digest import digest_fields
from repro.forest.vertex import Vertex
from repro.plugins import Registry
from repro.protocols.safety import ProposalPlan
from repro.quorum.quorum import max_faulty
from repro.types.block import Block, make_block
from repro.types.messages import Message, ProposalMessage
from repro.types.transaction import Transaction

#: The Byzantine-strategy extension point.  Values are Replica subclasses.
STRATEGIES: Registry[Type[Replica]] = Registry("Byzantine strategy")


def register_strategy(name: str, *aliases: str, override: bool = False) -> Callable:
    """Class decorator registering a Replica subclass as a Byzantine strategy."""
    return STRATEGIES.register(name, *aliases, override=override)


def available_strategies() -> List[str]:
    """Canonical names of the registered Byzantine strategies."""
    return STRATEGIES.available()


# The honest replica doubles as the "no strategy" strategy.
STRATEGIES.add("honest", Replica, "none")


@register_strategy("silence", "silent")
class SilentReplica(Replica):
    """A replica that stays silent whenever it is the leader."""

    strategy = "silence"
    _strategy_defaults = {"views_silenced": 0}

    def _propose(self, view: int) -> None:
        # Remain silent for the whole view; honest replicas will time out.
        self.views_silenced += 1


@register_strategy("forking", "fork")
class ForkingReplica(Replica):
    """A replica that forks the chain as deeply as the voting rule allows."""

    strategy = "forking"
    _strategy_defaults = {"forks_attempted": 0}

    def _proposal_plan(self) -> Optional[ProposalPlan]:
        honest_plan = self.safety.choose_extension()
        depth = self._fork_depth()
        if depth <= 0:
            return honest_plan
        # Honest replicas have seen certificates only up to the highest QC
        # that was embedded in a disseminated proposal; their lock trails it
        # by (depth - 1) blocks.  Building on that lock keeps the proposal
        # acceptable to them while abandoning everything above it.
        target = self.forest.maybe_get(self.safety.public_high_qc.block_id)
        if target is None:
            return honest_plan
        for _ in range(depth - 1):
            parent = self.forest.maybe_get(target.block.parent_id)
            if parent is None:
                break
            target = parent
        if not target.certified or target.qc is None:
            return honest_plan
        if target.block_id == honest_plan.parent_id:
            return honest_plan
        self.forks_attempted += 1
        return ProposalPlan(parent_id=target.block_id, qc=target.qc)

    def _fork_depth(self) -> int:
        """How many uncommitted blocks the attacker can overwrite."""
        if self.safety.votes_broadcast and self.safety.protocol_name == "streamlet":
            # Honest replicas only vote for extensions of the longest
            # notarized chain, so no fork target deeper than the tip exists.
            return 0
        return self.safety.commit_rule_depth - 1


@register_strategy("equivocate", "equivocating", "equiv")
class EquivocatingReplica(Replica):
    """A leader that proposes *conflicting* blocks to disjoint replica halves.

    Each led view, the attacker splits its batch in two and builds two
    different blocks (the block id hashes the transactions, so the halves are
    guaranteed distinct), sending one to each half of its peers.  It tracks
    the tip of each branch so later led views keep extending both forks.

    Against a correctly configured cluster this only wastes views: the two
    vote sets are each short of a quorum, so neither branch certifies during
    the attacker's view and honest leaders resume from the older tip.  It
    becomes a *safety* attack exactly when quorums stop intersecting — a
    static equivocating master with ``quorum_threshold`` below 2f + 1 drives
    the two halves to commit divergent chains, which is the fuzz harness's
    negative control.
    """

    strategy = "equivocate"
    _strategy_defaults = {"equivocations": 0, "honest_fallbacks": 0}

    def _split_peers(self) -> Tuple[List[str], List[str]]:
        others = [p for p in self.peers if p != self.node_id]
        half = (len(others) + 1) // 2
        return others[:half], others[half:]

    def _branch_tips(self) -> List[Optional[Vertex]]:
        tips = getattr(self, "_equiv_tips", None)
        if tips is None:
            tips = self._equiv_tips = [None, None]
        return [
            self.forest.maybe_get(tip) if tip is not None else None for tip in tips
        ]

    def _propose(self, view: int) -> None:
        if self._crashed:
            return
        if view != self.pacemaker.current_view or view <= self._last_proposed_view:
            return
        plan = self._proposal_plan()
        if plan is None or plan.parent_id not in self.forest:
            return
        groups = self._split_peers()
        vertices = self._branch_tips()
        branched = (
            all(v is not None for v in vertices)
            and self._equiv_tips[0] != self._equiv_tips[1]
        )
        if branched and not all(v.certified and v.qc is not None for v in vertices):
            # The forks only stay on consecutive views (and thus commit at
            # the victims, when the quorum threshold lets them) if each led
            # view extends *both* branch tips — so wait a beat for in-flight
            # votes before giving up on the fork.
            if getattr(self, "_equiv_deadline_view", 0) != view:
                self._equiv_deadline_view = view
                self._equiv_deadline = self.scheduler.now + 0.5 * self.settings.view_timeout
            if self.scheduler.now < self._equiv_deadline:
                poll = max(1e-4, 0.05 * self.settings.view_timeout)
                self.scheduler.call_after(poll, self._propose, view)
                return
            # The branch QCs never materialized (intersecting quorums do
            # exactly this); abandon the fork and start over.
            self._equiv_tips = [None, None]
            branched = False
            vertices = [None, None]
        batch = self.mempool.next_batch(self.settings.block_size)
        self._last_proposed_view = view
        cost = self.cost_model.proposal_build_cost(len(batch))
        if branched:
            plans = tuple(
                ProposalPlan(parent_id=v.block_id, qc=v.qc) for v in vertices
            )
        elif len(batch) >= 2 and groups[1]:
            # Bootstrap two branches off the common parent; distinct halves
            # of the batch make the two block ids distinct.
            plans = (plan, plan)
        else:
            self.honest_fallbacks += 1
            parent = self.forest.get_block(plan.parent_id)
            block = make_block(view, parent, plan.qc, self.node_id, batch)
            self.cpu.submit(cost, self._broadcast_proposal, block, view, batch)
            return
        mid = len(batch) // 2
        halves = (batch[:mid], batch[mid:])
        blocks = tuple(
            make_block(view, self.forest.get_block(p.parent_id), p.qc, self.node_id, half)
            for p, half in zip(plans, halves)
        )
        self._equiv_tips[0] = blocks[0].block_id
        self._equiv_tips[1] = blocks[1].block_id
        self.equivocations += 1
        self.cpu.submit(cost, self._send_equivocation, blocks, groups, view, batch)

    def _send_equivocation(
        self,
        blocks: Tuple[Block, ...],
        groups: Tuple[List[str], List[str]],
        view: int,
        batch: Tuple[Transaction, ...],
    ) -> None:
        if view != self.pacemaker.current_view:
            self.stats.stale_proposals_dropped += 1
            self.mempool.requeue_front(batch)
            return
        for block, group in zip(blocks, groups):
            qc_signers = len(block.qc.signers) if block.qc is not None else 0
            size = self.size_model.proposal_size(block, qc_signers)
            message = ProposalMessage(
                sender=self.node_id, size_bytes=size, block=block, view=view
            )
            self.stats.proposals_sent += 1
            for dst in group:
                self._send(dst, message)
        # Keep both branches locally (without voting for either) so later led
        # views can extend whichever branch gathers votes.
        for block in blocks:
            self._accept_block(block, vote=False)


@register_strategy("delayed-proposal", "delayed", "delay-proposal")
class DelayedProposalReplica(Replica):
    """A leader that withholds its proposal for most of the view timeout.

    The proposal is valid and eventually sent, so honest replicas cannot tell
    the leader from a slow one — but every led view burns ~80% of its timeout
    budget idling, inflating latency and (when the remaining budget is too
    tight for a full round) forcing view changes.
    """

    strategy = "delayed-proposal"
    _strategy_defaults = {"proposals_delayed": 0, "_delayed_view": 0}

    #: Fraction of the view timeout to sit on the proposal.
    delay_fraction = 0.8

    def _propose(self, view: int) -> None:
        if self._crashed:
            return
        if view != self.pacemaker.current_view or view <= self._last_proposed_view:
            return
        if self._delayed_view < view:
            self._delayed_view = view
            self.proposals_delayed += 1
            delay = self.delay_fraction * self.settings.view_timeout
            self.scheduler.call_after(delay, self._propose, view)
            return
        Replica._propose(self, view)


@register_strategy("omission", "targeted-omission", "omit")
class TargetedOmissionReplica(Replica):
    """A replica that drops every protocol message addressed to its victims.

    Victims are the first f peer ids (which includes the metrics observer
    r0): proposals, votes, timeouts, and echoes to them silently vanish at
    the sender, while traffic to everyone else flows normally.  The cluster
    stays live — quorums of n - f never need the victims — but the victims
    ride on block-fetch catch-up instead of first-class delivery.
    """

    strategy = "omission"
    _strategy_defaults = {"messages_omitted": 0, "messages_delayed": 0}

    #: Seconds to hold a victim's message back; 0 drops it outright.
    omission_delay = 0.0

    def _victims(self) -> List[str]:
        others = [p for p in self.peers if p != self.node_id]
        return others[: max(1, max_faulty(len(self.peers)))]

    def _send(self, dst: str, message: Message) -> None:
        if dst in self._victims():
            if self.omission_delay <= 0:
                self.messages_omitted += 1
                return
            self.messages_delayed += 1
            self.scheduler.call_after(
                self._jitter(dst, message), Replica._send, self, dst, message
            )
            return
        Replica._send(self, dst, message)

    def _jitter(self, dst: str, message: Message) -> float:
        # Deterministic "random" delay in [0.5, 1.5) x omission_delay: python's
        # hash() is salted per process, so derive the jitter from a digest to
        # keep runs byte-reproducible.
        token = digest_fields(
            "omit", self.node_id, dst, type(message).__name__, f"{self.scheduler.now:.9f}"
        )
        return self.omission_delay * (0.5 + int(token[:8], 16) / 0x100000000)


@register_strategy("omission-delay", "omit-delay", "delayed-omission")
class DelayedOmissionReplica(TargetedOmissionReplica):
    """Targeted omission softened into targeted *delay* (SNIPPETS snippet 2).

    Instead of vanishing, each message to a victim is held back by a random
    but reproducible 25–75 ms — long enough to straddle typical view
    timeouts, so the victims oscillate between keeping up and timing out.
    """

    strategy = "omission-delay"
    omission_delay = 0.05


def _strategy_class(strategy: str) -> Type[Replica]:
    return STRATEGIES.get(strategy) if strategy else Replica


def make_replica(strategy: str, *args, **kwargs) -> Replica:
    """Instantiate a replica with the given Byzantine strategy ("" = honest)."""
    return _strategy_class(strategy)(*args, **kwargs)


def convert_replica(replica: Replica, strategy: str) -> Replica:
    """Switch a live replica's behaviour to ``strategy`` (scenario events).

    The object keeps all protocol state (forest, mempool, pacemaker); only
    its behaviour class changes, and any per-strategy counters that do not
    exist yet are initialized from ``_strategy_defaults``.
    """
    cls = _strategy_class(strategy)
    replica.__class__ = cls
    for attr, default in cls._strategy_defaults.items():
        if not hasattr(replica, attr):
            setattr(replica, attr, default)
    return replica
