"""Byzantine replica strategies (paper §IV-A).

Both built-in strategies are implemented the way Bamboo implements them: by
modifying the Proposing rule only.  The attackers never violate the voting
rule of honest replicas — their proposals remain "valid" from an outsider's
view — which is what makes the attacks hard to detect while still degrading
performance.

* **Forking attack** — the Byzantine leader proposes a block extending an
  older ancestor, abandoning (and eventually overwriting) the uncommitted
  tail of the chain.  How far back it can fork is bounded by the honest
  replicas' lock: two blocks in HotStuff, one in two-chain HotStuff, none in
  Streamlet (whose longest-chain voting rule makes the deepest acceptable
  fork target the chain tip itself, i.e. honest behaviour).
* **Silence attack** — the Byzantine leader simply does not propose during
  its views, forcing a timeout and (in the HotStuff variants) the loss of the
  quorum certificate for the previous block.

Strategies are an extension point: subclass :class:`Replica`, override the
proposing hooks, and register with :func:`register_strategy`::

    @register_strategy("equivocate")
    class EquivocatingReplica(Replica):
        _strategy_defaults = {"equivocations": 0}
        ...

``Configuration(strategy="equivocate")`` then works everywhere.  Per-run
counters go in ``_strategy_defaults`` (applied both at construction and by
:func:`convert_replica`, which scenario events use to turn an honest replica
Byzantine mid-run).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Type

from repro.core.replica import Replica
from repro.plugins import Registry
from repro.protocols.safety import ProposalPlan

#: The Byzantine-strategy extension point.  Values are Replica subclasses.
STRATEGIES: Registry[Type[Replica]] = Registry("Byzantine strategy")


def register_strategy(name: str, *aliases: str, override: bool = False) -> Callable:
    """Class decorator registering a Replica subclass as a Byzantine strategy."""
    return STRATEGIES.register(name, *aliases, override=override)


def available_strategies() -> List[str]:
    """Canonical names of the registered Byzantine strategies."""
    return STRATEGIES.available()


# The honest replica doubles as the "no strategy" strategy.
STRATEGIES.add("honest", Replica, "none")


@register_strategy("silence", "silent")
class SilentReplica(Replica):
    """A replica that stays silent whenever it is the leader."""

    strategy = "silence"
    _strategy_defaults = {"views_silenced": 0}

    def _propose(self, view: int) -> None:
        # Remain silent for the whole view; honest replicas will time out.
        self.views_silenced += 1


@register_strategy("forking", "fork")
class ForkingReplica(Replica):
    """A replica that forks the chain as deeply as the voting rule allows."""

    strategy = "forking"
    _strategy_defaults = {"forks_attempted": 0}

    def _proposal_plan(self) -> Optional[ProposalPlan]:
        honest_plan = self.safety.choose_extension()
        depth = self._fork_depth()
        if depth <= 0:
            return honest_plan
        # Honest replicas have seen certificates only up to the highest QC
        # that was embedded in a disseminated proposal; their lock trails it
        # by (depth - 1) blocks.  Building on that lock keeps the proposal
        # acceptable to them while abandoning everything above it.
        target = self.forest.maybe_get(self.safety.public_high_qc.block_id)
        if target is None:
            return honest_plan
        for _ in range(depth - 1):
            parent = self.forest.maybe_get(target.block.parent_id)
            if parent is None:
                break
            target = parent
        if not target.certified or target.qc is None:
            return honest_plan
        if target.block_id == honest_plan.parent_id:
            return honest_plan
        self.forks_attempted += 1
        return ProposalPlan(parent_id=target.block_id, qc=target.qc)

    def _fork_depth(self) -> int:
        """How many uncommitted blocks the attacker can overwrite."""
        if self.safety.votes_broadcast and self.safety.protocol_name == "streamlet":
            # Honest replicas only vote for extensions of the longest
            # notarized chain, so no fork target deeper than the tip exists.
            return 0
        return self.safety.commit_rule_depth - 1


def _strategy_class(strategy: str) -> Type[Replica]:
    return STRATEGIES.get(strategy) if strategy else Replica


def make_replica(strategy: str, *args, **kwargs) -> Replica:
    """Instantiate a replica with the given Byzantine strategy ("" = honest)."""
    return _strategy_class(strategy)(*args, **kwargs)


def convert_replica(replica: Replica, strategy: str) -> Replica:
    """Switch a live replica's behaviour to ``strategy`` (scenario events).

    The object keeps all protocol state (forest, mempool, pacemaker); only
    its behaviour class changes, and any per-strategy counters that do not
    exist yet are initialized from ``_strategy_defaults``.
    """
    cls = _strategy_class(strategy)
    replica.__class__ = cls
    for attr, default in cls._strategy_defaults.items():
        if not hasattr(replica, attr):
            setattr(replica, attr, default)
    return replica
