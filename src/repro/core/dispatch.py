"""Message dispatch: the extension point for replica message handlers.

The replica's :meth:`~repro.core.replica.Replica.deliver` entry point used to
be a hard-coded ``if isinstance(...)`` chain, which meant a new message kind
(such as the sync subsystem's ``BlockRequest`` / ``BlockResponse``) required
editing the replica itself.  Dispatch is now a :class:`~repro.plugins.Registry`
keyed by the message *class name*: each entry pairs a handler with a CPU-cost
function, and the replica charges the cost to its FIFO CPU server before
invoking the handler — exactly the treatment the four built-in message kinds
receive.

Registering a handler for a new message type::

    @register_message_handler("HeartbeatMessage")
    def _handle_heartbeat(replica, message):
        replica.note_heartbeat(message)

Handlers receive ``(replica, message)`` and must look up replica behaviour
through the instance (``replica._process_proposal(...)``), so Byzantine
subclasses and :func:`~repro.core.byzantine.convert_replica` keep working: the
method resolution happens on the live object, not at registration time.

An optional ``cost`` callable ``(replica, message) -> seconds`` overrides the
default CPU charge (:meth:`Replica._processing_cost`, which models signature
and per-transaction verification work).  Messages with no registered handler
are silently ignored, preserving the old behaviour for e.g. ``ClientReply``
copies that reach a replica.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.plugins import Registry
from repro.types.messages import Message

#: Handler signature: (replica, message) -> None.
HandlerFn = Callable[["Replica", Message], None]  # noqa: F821 - documented type
#: Cost signature: (replica, message) -> CPU seconds to charge before handling.
CostFn = Callable[["Replica", Message], float]  # noqa: F821


@dataclass(frozen=True)
class MessageHandler:
    """A registered handler plus the CPU cost charged before it runs."""

    handle: HandlerFn
    cost: Optional[CostFn] = None

    def cost_for(self, replica, message: Message) -> float:
        """CPU service time for ``message`` (falls back to the replica default)."""
        if self.cost is not None:
            return self.cost(replica, message)
        return replica._processing_cost(message)


#: The message-handler extension point, keyed by message class name.
MESSAGE_HANDLERS: Registry[MessageHandler] = Registry("message handler")


def register_message_handler(
    message_type: str,
    *aliases: str,
    cost: Optional[CostFn] = None,
    override: bool = False,
) -> Callable[[HandlerFn], HandlerFn]:
    """Decorator registering a handler for messages of class ``message_type``.

    ``message_type`` is the message class's ``__name__`` (dispatch never
    imports the class, so plugin message types need no central declaration).
    """

    def decorator(fn: HandlerFn) -> HandlerFn:
        MESSAGE_HANDLERS.add(message_type, MessageHandler(handle=fn, cost=cost), *aliases,
                             override=override)
        return fn

    return decorator


def available_message_handlers() -> List[str]:
    """Canonical message type names with a registered handler."""
    # The sync and checkpoint handlers register at import time of their
    # packages; make sure a bare listing (e.g. api.available()) sees them
    # without requiring the caller to have built a replica first.
    import repro.checkpoint  # noqa: F401  (registers SnapshotRequest/SnapshotResponse)
    import repro.sync  # noqa: F401  (registers BlockRequest/BlockResponse)

    return MESSAGE_HANDLERS.available()


# Per-message-class resolution cache for dispatch().  Every delivered message
# pays a registry lookup (name normalization + two dict hops) without it; the
# registry's version counter detects (un)registrations, so plugin churn in
# tests invalidates the cache instead of leaking stale handlers.
_DISPATCH_CACHE: dict = {}
_DISPATCH_CACHE_VERSION = -1
_MISSING = object()


def dispatch(replica, message: Message) -> bool:
    """Charge CPU and run the registered handler for ``message``.

    Returns True if a handler was found; unknown message kinds are ignored
    (they are not addressed to replicas).
    """
    global _DISPATCH_CACHE_VERSION
    cache = _DISPATCH_CACHE
    if _DISPATCH_CACHE_VERSION != MESSAGE_HANDLERS.version:
        cache.clear()
        _DISPATCH_CACHE_VERSION = MESSAGE_HANDLERS.version
    cls = message.__class__
    entry = cache.get(cls, _MISSING)
    if entry is _MISSING:
        kind = cls.__name__
        entry = MESSAGE_HANDLERS.get(kind) if kind in MESSAGE_HANDLERS else None
        cache[cls] = entry
    if entry is None:
        return False
    replica.cpu.submit(entry.cost_for(replica, message), entry.handle, replica, message)
    return True


# ----------------------------------------------------------------------
# built-in handlers: the four message kinds of the consensus round
# ----------------------------------------------------------------------
@register_message_handler("ClientRequest")
def _handle_client_request(replica, message: Message) -> None:
    replica._process_client_request(message)


@register_message_handler("ProposalMessage")
def _handle_proposal(replica, message: Message) -> None:
    replica._process_proposal(message)


@register_message_handler("VoteMessage")
def _handle_vote(replica, message: Message) -> None:
    replica._process_vote(message)


@register_message_handler("TimeoutMessage")
def _handle_timeout(replica, message: Message) -> None:
    replica._process_timeout(message)
