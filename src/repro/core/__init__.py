"""The replica node: where the shared modules and the safety rules meet."""

from repro.core.byzantine import (
    STRATEGIES,
    ForkingReplica,
    SilentReplica,
    available_strategies,
    convert_replica,
    make_replica,
    register_strategy,
)
from repro.core.replica import Replica, ReplicaSettings

__all__ = [
    "STRATEGIES",
    "ForkingReplica",
    "Replica",
    "ReplicaSettings",
    "SilentReplica",
    "available_strategies",
    "convert_replica",
    "make_replica",
    "register_strategy",
]
