"""The replica node: where the shared modules and the safety rules meet."""

from repro.core.byzantine import ForkingReplica, SilentReplica, make_replica
from repro.core.replica import Replica, ReplicaSettings

__all__ = [
    "ForkingReplica",
    "Replica",
    "ReplicaSettings",
    "SilentReplica",
    "make_replica",
]
