"""The replica: the event loop tying every Bamboo module together.

A replica owns a block forest, a mempool, a safety module (the protocol's
four rules), a pacemaker, a quorum tracker, an execution layer, and a CPU
modelled as a FIFO server.  It reacts to messages delivered by the network:

* client requests are admitted to the mempool;
* proposals are validated, added to the forest, voted on per the voting
  rule, and (in Streamlet) echoed;
* votes are aggregated into quorum certificates, which update the protocol
  state, may satisfy the commit rule, and advance the view;
* timeout messages feed the pacemaker, which forms timeout certificates and
  advances the view when a quorum of replicas is stuck;
* block requests and responses feed the sync manager (:mod:`repro.sync`),
  which fetches chains the replica missed while crashed or partitioned.

Message dispatch goes through the handler registry in
:mod:`repro.core.dispatch`: each registered message kind carries a CPU-cost
function and a handler, so new subsystems (sync being the built-in example)
plug in without editing this event loop.

Whenever the replica enters a view it leads, it batches transactions from
its mempool and broadcasts a proposal.  Byzantine behaviours (paper §IV-A)
are expressed by overriding the proposing rule in subclasses — exactly how
Bamboo implements them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from collections import OrderedDict

from repro.checkpoint.manager import CheckpointManager, CheckpointSettings
from repro.core.dispatch import dispatch
from repro.crypto.costs import CryptoCostModel
from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import sign
from repro.election.election import LeaderElection
from repro.executor.kvstore import DEFAULT_DEDUP_WINDOW, KeyValueStore, TxidDedup
from repro.forest.forest import BlockForest, ForestError
from repro.mempool.mempool import Mempool
from repro.network.network import Network
from repro.obs import trace as obs_trace
from repro.pacemaker.pacemaker import Pacemaker, ViewChangeReason
from repro.protocols.registry import make_safety
from repro.protocols.safety import ProposalPlan
from repro.quorum.quorum import QuorumTracker, TimeoutTracker
from repro.sim.events import EventScheduler
from repro.sim.resources import FifoServer
from repro.sync.manager import SyncManager, SyncSettings
from repro.types.block import Block, make_block
from repro.types.certificates import (
    QuorumCertificate,
    Timeout,
    Vote,
    timeout_digest,
    vote_digest,
)
from repro.types.messages import (
    ClientReply,
    ClientRequest,
    Message,
    ProposalMessage,
    TimeoutMessage,
    VoteMessage,
)
from repro.types.sizes import SizeModel
from repro.types.transaction import Transaction

#: CPU time charged for admitting one client request to the mempool.
CLIENT_REQUEST_CPU_COST = 5e-6
#: CPU time charged for processing a loopback copy of the replica's own message.
LOOPBACK_CPU_COST = 1e-6
#: Bound on reply-routing entries (txid -> client) held per replica.  An
#: entry lives from request arrival to commit reply — the in-flight window —
#: so the bound only needs to exceed mempool capacity plus the uncommitted
#: tail; evicting beyond it merely skips a reply, and the client's timeout
#: path re-submits (exactly as it does for a reply lost to a crash).
ORIGIN_INDEX_CAPACITY = 8192


class OriginIndex:
    """Bounded txid -> client-id map for reply routing.

    The last unbounded replica-side structure after PR 5's ``TxidDedup``
    work: without a bound, one entry per distinct client request accumulates
    for the whole run.  FIFO eviction is the right policy because entries are
    only useful while their transaction is in flight; a committed
    transaction's entry is popped eagerly in ``Replica._reply``.
    """

    def __init__(self, capacity: int = ORIGIN_INDEX_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, str]" = OrderedDict()

    def __setitem__(self, txid: str, client: str) -> None:
        entries = self._entries
        if txid in entries:
            # A retry refreshes both the routing target and the entry's age.
            entries.pop(txid)
        entries[txid] = client
        while len(entries) > self.capacity:
            entries.popitem(last=False)

    def get(self, txid: str) -> Optional[str]:
        return self._entries.get(txid)

    def pop(self, txid: str, default: Optional[str] = None) -> Optional[str]:
        return self._entries.pop(txid, default)

    def __contains__(self, txid: str) -> bool:
        return txid in self._entries

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class ReplicaSettings:
    """Node-level configuration (a subset of Table I).

    Attributes
    ----------
    block_size:
        Maximum number of transactions per block (``bsize``).
    mempool_capacity:
        Maximum number of pending transactions held (``memsize``).
    view_timeout:
        Pacemaker timeout before a view is declared stuck (``timeout``).
    propose_wait_after_tc:
        Extra wait a leader observes before proposing when its view started
        with a timeout certificate.  Zero models the "propose as soon as
        2f+1 messages are received" behaviour of the responsiveness
        experiment's first setting; setting it to the view timeout models the
        second setting.
    prune_forks:
        Whether abandoned branches are pruned (and their transactions
        recycled into the mempool) after each commit.
    sync:
        Block-fetch configuration (see :class:`repro.sync.SyncSettings`);
        disable with ``sync=SyncSettings(enabled=False)`` to reproduce the
        pre-sync behaviour where recovered replicas never catch up.
    checkpoint:
        Checkpoint / log-truncation policy (see
        :class:`repro.checkpoint.CheckpointSettings`); disabled by default
        (``interval=0``), which keeps every block in memory as before.
    quorum_threshold:
        Votes required to form a QC; 0 (the default) means the safe
        ``quorum_size(n) = n - f``.  Explicit values model flexible quorums;
        anything below 2f + 1 is unsafe by construction (used by the fuzz
        harness's negative control).
    """

    block_size: int = 400
    mempool_capacity: int = 1000
    view_timeout: float = 0.1
    propose_wait_after_tc: float = 0.0
    prune_forks: bool = True
    sync: SyncSettings = field(default_factory=SyncSettings)
    checkpoint: CheckpointSettings = field(default_factory=CheckpointSettings)
    quorum_threshold: int = 0


@dataclass
class ReplicaStats:
    """Counters exposed for tests and benchmark reports."""

    proposals_sent: int = 0
    proposals_received: int = 0
    votes_sent: int = 0
    votes_received: int = 0
    timeouts_sent: int = 0
    timeouts_received: int = 0
    client_requests: int = 0
    client_rejections: int = 0
    qcs_formed: int = 0
    blocks_committed: int = 0
    transactions_committed: int = 0
    safety_violations: int = 0
    stale_proposals_dropped: int = 0


class Replica:
    """A correct (honest) replica.

    Byzantine behaviours subclass this, override the proposing hooks, and
    declare per-strategy counters in ``_strategy_defaults`` (see
    :mod:`repro.core.byzantine`); the defaults are applied both here and when
    a scenario event converts a live replica to a different strategy.
    """

    #: Strategy name for reporting; subclasses override.
    strategy = "honest"
    #: Per-strategy counters, initialized at construction and on conversion.
    _strategy_defaults: Dict[str, int] = {}

    def __init__(
        self,
        node_id: str,
        scheduler: EventScheduler,
        network: Network,
        election: LeaderElection,
        registry: KeyRegistry,
        peers: List[str],
        protocol: str = "hotstuff",
        settings: Optional[ReplicaSettings] = None,
        cost_model: Optional[CryptoCostModel] = None,
        size_model: Optional[SizeModel] = None,
        metrics=None,
    ) -> None:
        self.node_id = node_id
        self.scheduler = scheduler
        self.network = network
        self.election = election
        self.registry = registry
        self.peers = list(peers)
        self.settings = settings if settings is not None else ReplicaSettings()
        self.cost_model = cost_model if cost_model is not None else CryptoCostModel()
        self.size_model = size_model if size_model is not None else SizeModel()
        self.metrics = metrics

        self.keypair = registry.register(node_id)
        self.forest = BlockForest(orphan_capacity=self.settings.sync.orphan_capacity)
        self.safety = make_safety(protocol, self.forest)
        self.sync = SyncManager(self, self.settings.sync)
        self.checkpoint = CheckpointManager(self, self.settings.checkpoint)
        self.mempool = Mempool(capacity=self.settings.mempool_capacity)
        self.kvstore = KeyValueStore()
        self.cpu = FifoServer(scheduler, name=f"{node_id}.cpu")
        self.quorum = QuorumTracker(
            len(self.peers), registry, threshold=self.settings.quorum_threshold or None
        )
        self.timeouts = TimeoutTracker(len(self.peers), registry)
        self.pacemaker = Pacemaker(
            scheduler=scheduler,
            node_id=node_id,
            timeout_tracker=self.timeouts,
            view_timeout=self.settings.view_timeout,
            on_view_start=self._on_view_start,
            on_local_timeout=self._on_local_timeout,
        )
        self.stats = ReplicaStats()
        # Observability is off unless a tracer is attached; every hot-path
        # hook below guards on this falsy sentinel (see repro.obs.trace).
        self.tracer = None

        # Reply routing is bounded: the origin index FIFO-evicts beyond its
        # capacity and the replied-txid dedup keeps per-client floors plus a
        # recent window (same treatment as the executor's applied index).
        self._origin_clients = OriginIndex()
        self._pending_qcs: Dict[str, QuorumCertificate] = {}
        self._replied_txids = TxidDedup(window=DEFAULT_DEDUP_WINDOW)
        self._last_proposed_view = 0
        self._crashed = False
        for attr, default in self._strategy_defaults.items():
            setattr(self, attr, default)

        network.register(node_id, self.deliver)

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def attach_tracer(self, tracer) -> None:
        """Wire a :class:`repro.obs.Tracer` through this replica's modules.

        Called by the cluster builders when a tracer is installed
        (``repro.obs.trace.ACTIVE``); never called on the default path, so
        untraced replicas keep ``tracer = None`` everywhere and the hot-path
        checks stay single-``if`` no-ops.
        """
        self.tracer = tracer
        self.pacemaker.tracer = tracer
        self.quorum.bind_tracer(tracer, self.node_id, self.scheduler)
        self.timeouts.bind_tracer(tracer, self.node_id, self.scheduler)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, initial_view: int = 1) -> None:
        """Begin participating: enter the first view and arm the pacemaker."""
        self.pacemaker.start(initial_view)

    def crash(self) -> None:
        """Stop participating entirely (used by fault-injection experiments)."""
        self._crashed = True
        self.pacemaker.stop()
        self.network.crash(self.node_id)

    def recover(self) -> None:
        """Rejoin after a crash: reconnect, re-enter the current view, sync.

        Protocol state (forest, mempool, high QC) is retained, modelling a
        process restart from durable storage; the pacemaker timer is re-armed
        and the replica rejoins view synchronization (its timeouts count
        toward TCs, and it advances on the QCs/TCs it observes).

        The sync manager then starts a catch-up round: it fetches the blocks
        certified while the replica was down from its peers, re-validates
        their certificates, and drains any proposals that were parked on
        missing parents — restoring *full* participation (voting and
        leading), not just view synchronization.  With sync disabled the old
        behaviour returns: later proposals park forever on missing parents.

        When snapshot sync is enabled (see :mod:`repro.checkpoint`), the
        checkpoint manager runs first: a peer checkpoint above our committed
        height is installed in one transfer and block fetching covers only
        the gap above it — far cheaper than walking the whole missed chain.
        """
        if not self._crashed:
            return
        self._crashed = False
        self.network.recover(self.node_id)
        self.pacemaker.resume()
        if not self.checkpoint.on_recover():
            self.sync.on_recover()

    @property
    def current_view(self) -> int:
        """The replica's current view per its pacemaker."""
        return self.pacemaker.current_view

    def is_leader(self, view: int) -> bool:
        """True if this replica leads ``view``."""
        return self.election.leader(view) == self.node_id

    # ------------------------------------------------------------------
    # message entry point
    # ------------------------------------------------------------------
    def deliver(self, message: Message) -> None:
        """Network delivery callback: dispatch via the handler registry.

        The registry (:mod:`repro.core.dispatch`) charges each message kind's
        CPU cost and invokes its handler; kinds with no registered handler
        (e.g. client replies) are not addressed to replicas and are ignored.
        """
        if self._crashed:
            return
        dispatch(self, message)

    # ------------------------------------------------------------------
    # outbound seam
    # ------------------------------------------------------------------
    # Every protocol message this replica emits goes through these two
    # hooks.  Honest replicas pass straight through to the network; omission
    # strategies (repro.core.byzantine) override _send to drop or delay
    # messages addressed to their victims without touching the network layer.
    def _send(self, dst: str, message: Message) -> None:
        self.network.send(self.node_id, dst, message)

    def _broadcast(self, message: Message, include_self: bool = False) -> None:
        if type(self)._send is Replica._send:
            # No per-destination interception installed: hand the whole
            # fanout to the network's batched broadcast (identical delivery
            # timestamps to the loop below, a fraction of the bookkeeping).
            self.network.broadcast(
                self.node_id, self.peers, message, include_self=include_self
            )
            return
        for dst in self.peers:
            if dst == self.node_id and not include_self:
                continue
            self._send(dst, message)
        if include_self and self.node_id not in self.peers:
            self._send(self.node_id, message)

    def _processing_cost(self, message: Message) -> float:
        """CPU service time for validating an incoming message."""
        if message.sender == self.node_id:
            return LOOPBACK_CPU_COST
        # Exact-class checks first (message kinds are concrete classes on the
        # hot path, most frequent kind first); isinstance fallback keeps
        # subclassed plugin messages charged like their base kind.
        cls = message.__class__
        if cls is ClientRequest:
            return CLIENT_REQUEST_CPU_COST
        if cls is VoteMessage:
            return self.cost_model.vote_verify_cost()
        if cls is ProposalMessage:
            return self.cost_model.proposal_verify_cost(message.block.num_transactions)
        if isinstance(message, ClientRequest):
            return CLIENT_REQUEST_CPU_COST
        if isinstance(message, ProposalMessage):
            return self.cost_model.proposal_verify_cost(message.block.num_transactions)
        if isinstance(message, VoteMessage):
            return self.cost_model.vote_verify_cost()
        if isinstance(message, TimeoutMessage):
            return self.cost_model.timeout_verify_cost()
        return LOOPBACK_CPU_COST

    # ------------------------------------------------------------------
    # client requests
    # ------------------------------------------------------------------
    def _process_client_request(self, message: ClientRequest) -> None:
        transaction = message.transaction
        self.stats.client_requests += 1
        self._origin_clients[transaction.txid] = message.sender
        if self.kvstore.transaction_applied(transaction):
            self._reply(transaction, status="committed")
            return
        accepted = self.mempool.add(transaction)
        if not accepted:
            self.stats.client_rejections += 1
            self._reply(transaction, status="rejected")

    def _reply(self, transaction: Transaction, status: str) -> None:
        txid = transaction.txid
        client = self._origin_clients.get(txid)
        if client is None:
            return
        if status == "committed":
            # add_transaction doubles as the already-replied check: it
            # returns False when the id was recorded by an earlier reply.
            if not self._replied_txids.add_transaction(transaction):
                return
            # A committed transaction is done with reply routing; dropping
            # the entry eagerly keeps the origin index at in-flight size.
            self._origin_clients.pop(txid)
        elif self._replied_txids.contains_transaction(transaction):
            return
        reply = ClientReply(
            sender=self.node_id,
            size_bytes=self.size_model.client_reply_size,
            txid=txid,
            committed_at=self.scheduler.now,
            replica=self.node_id,
            status=status,
        )
        try:
            self._send(client, reply)
        except KeyError:
            # The client endpoint was not registered (fire-and-forget loads).
            pass

    # ------------------------------------------------------------------
    # proposals
    # ------------------------------------------------------------------
    def _process_proposal(self, message: ProposalMessage) -> None:
        block = message.block
        self.stats.proposals_received += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.scheduler.now, self.node_id, obs_trace.PROPOSAL, "receive",
                block.view, {"block": block.block_id, "from": message.sender},
            )
        if block.block_id in self.forest:
            return
        self._maybe_echo_proposal(message)
        if block.parent_id is not None and block.parent_id not in self.forest:
            # Park the proposal and let the sync manager fetch the gap.
            self.sync.note_missing_parent(block)
            return
        self._accept_block(block)

    def _accept_block(self, block: Block, vote: bool = True) -> None:
        """Insert a block, absorb its certificates, maybe vote, drain orphans.

        ``vote=False`` is the sync-ingestion path: blocks fetched from peers
        are historical, so the replica absorbs their certificates (advancing
        its view and committing as the chain connects) without casting stale
        votes; the orphaned *live* proposals drained afterwards are voted on
        normally, which is what resumes participation after a catch-up.
        """
        try:
            self.forest.add_block(block, added_at=self.scheduler.now)
        except ForestError:
            return
        if self.metrics is not None:
            self.metrics.record_block_added(self.node_id, block, self.scheduler.now)
        if block.qc is not None:
            self.safety.note_embedded_qc(block.qc)
            self._after_new_qc(block.qc)
        pending_qc = self._pending_qcs.pop(block.block_id, None)
        if pending_qc is not None:
            self.safety.update_qc(pending_qc)
            self._after_new_qc(pending_qc)
        if vote:
            self._maybe_vote(block)
        # Unblock any parked children now that their parent is known.
        for child in self.forest.pop_orphans(block.block_id):
            if child.block_id not in self.forest:
                self._accept_block(child)

    def _maybe_vote(self, block: Block) -> None:
        if not self.safety.should_vote(block):
            return
        self.safety.record_vote_sent(block)
        self.cpu.submit(self.cost_model.vote_build_cost(), self._send_vote, block)

    def _send_vote(self, block: Block) -> None:
        digest = vote_digest(block.block_id, block.view)
        vote = Vote(
            voter=self.node_id,
            block_id=block.block_id,
            view=block.view,
            signature=sign(self.keypair, digest),
        )
        message = VoteMessage(
            sender=self.node_id, size_bytes=self.size_model.vote_size(), vote=vote
        )
        self.stats.votes_sent += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.scheduler.now, self.node_id, obs_trace.VOTE, "vote",
                block.view, {"block": block.block_id},
            )
        if self.safety.votes_broadcast:
            self._broadcast(message, include_self=True)
        else:
            next_leader = self.election.leader(block.view + 1)
            self._send(next_leader, message)

    def _maybe_echo_proposal(self, message: ProposalMessage) -> None:
        if not self.safety.echo_messages:
            return
        if message.forwarded_by or message.sender == self.node_id:
            return
        echo = ProposalMessage(
            sender=self.node_id,
            size_bytes=message.size_bytes,
            block=message.block,
            view=message.view,
            forwarded_by=self.node_id,
        )
        self._broadcast(echo, include_self=False)

    # ------------------------------------------------------------------
    # votes and certificates
    # ------------------------------------------------------------------
    def _process_vote(self, message: VoteMessage) -> None:
        vote = message.vote
        self.stats.votes_received += 1
        self._maybe_echo_vote(message)
        qc = self.quorum.add_and_certify(vote)
        if qc is None:
            return
        self.stats.qcs_formed += 1
        if qc.block_id in self.forest:
            self.safety.update_qc(qc)
            self._after_new_qc(qc)
        else:
            self._pending_qcs[qc.block_id] = qc
            if qc.view > self.safety.high_qc.view:
                self.safety.high_qc = qc
            # A quorum certified a block we never received: fetch it.
            self.sync.note_missing_certified(qc)

    def _note_synced_qc(self, qc: QuorumCertificate) -> None:
        """Absorb a certificate learned through a sync response."""
        if qc.block_id not in self.forest:
            return
        self.safety.update_qc(qc)
        self._after_new_qc(qc)

    def _maybe_echo_vote(self, message: VoteMessage) -> None:
        if not self.safety.echo_messages:
            return
        if message.forwarded_by or message.sender == self.node_id:
            return
        echo = VoteMessage(
            sender=self.node_id,
            size_bytes=message.size_bytes,
            vote=message.vote,
            forwarded_by=self.node_id,
        )
        self._broadcast(echo, include_self=False)

    def _after_new_qc(self, qc: QuorumCertificate) -> None:
        # Advance the view before committing so that the commit view recorded
        # for the block-interval metric reflects the view in which the commit
        # becomes visible (the paper's BI starts at 3 for HotStuff and 2 for
        # two-chain HotStuff).
        self.pacemaker.advance_on_qc(qc.view)
        candidate = self.safety.commit_candidate(qc.block_id)
        if candidate is not None:
            self._commit(candidate)

    # ------------------------------------------------------------------
    # commitment
    # ------------------------------------------------------------------
    def _commit(self, block_id: str) -> None:
        try:
            newly = self.forest.commit(block_id, at_view=self.pacemaker.current_view)
        except ForestError:
            self.stats.safety_violations += 1
            if self.metrics is not None:
                self.metrics.record_safety_violation(self.node_id)
            if self.tracer is not None:
                self.tracer.emit(
                    self.scheduler.now, self.node_id, obs_trace.FAULT,
                    "safety-violation", self.pacemaker.current_view,
                    {"block": block_id},
                )
            return
        # Hot loop: every committed transaction on every replica passes
        # through here.  Only the replica that received the client request
        # holds an origin entry, so the membership test skips the _reply call
        # entirely on the other n-1 replicas.
        apply = self.kvstore.apply
        origin_entries = self._origin_clients._entries
        tr = self.tracer
        now = self.scheduler.now
        for vertex in newly:
            block = vertex.block
            self.stats.blocks_committed += 1
            self.stats.transactions_committed += block.num_transactions
            if tr is not None:
                tr.emit(
                    now, self.node_id, obs_trace.COMMIT, "commit", block.view,
                    {"block": block.block_id, "txs": block.num_transactions},
                )
            for transaction in block.transactions:
                apply(transaction)
                if transaction.txid in origin_entries:
                    self._reply(transaction, status="committed")
            self.mempool.mark_committed(block.transactions)
            if self.metrics is not None:
                self.metrics.record_block_committed(
                    self.node_id,
                    block,
                    commit_view=self.pacemaker.current_view,
                    now=self.scheduler.now,
                )
        if newly and self.settings.prune_forks:
            self._recycle_forks()
        if newly:
            self.checkpoint.on_commit()
            # Vote/timeout state below the committed view can never certify
            # anything again; dropping it bounds both trackers by the view
            # window in flight instead of the run length.
            committed_view = newly[-1].block.view
            self.quorum.prune_below(committed_view)
            self.pacemaker.timeout_tracker.prune_below(committed_view)

    def _recycle_forks(self) -> None:
        removed = self.forest.prune(self.forest.committed_height)
        if not removed:
            return
        recyclable: List[Transaction] = []
        for vertex in removed:
            for transaction in vertex.block.transactions:
                if self.kvstore.transaction_applied(transaction):
                    continue
                if transaction.txid not in self._origin_clients:
                    continue
                recyclable.append(transaction)
        if recyclable:
            self.mempool.requeue_front(recyclable)
        if self.metrics is not None:
            for vertex in removed:
                self.metrics.record_block_forked(self.node_id, vertex.block, self.scheduler.now)

    # ------------------------------------------------------------------
    # pacemaker callbacks
    # ------------------------------------------------------------------
    def _on_view_start(self, view: int, reason: ViewChangeReason) -> None:
        if self.metrics is not None:
            self.metrics.record_view_entered(self.node_id, view, self.scheduler.now)
        if not self.is_leader(view):
            return
        delay = 0.0
        if reason is ViewChangeReason.TC:
            delay = self.settings.propose_wait_after_tc
        if delay > 0:
            self.scheduler.call_after(delay, self._propose, view)
        else:
            self._propose(view)

    def _on_local_timeout(self, view: int) -> None:
        self.cpu.submit(self.cost_model.timeout_build_cost(), self._send_timeout, view)

    def _send_timeout(self, view: int) -> None:
        if view != self.pacemaker.current_view:
            return
        timeout = Timeout(
            voter=self.node_id,
            view=view,
            high_qc_view=self.safety.high_qc.view,
            signature=sign(self.keypair, timeout_digest(view)),
        )
        message = TimeoutMessage(
            sender=self.node_id,
            size_bytes=self.size_model.timeout_message_size,
            timeout=timeout,
        )
        self.stats.timeouts_sent += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.scheduler.now, self.node_id, obs_trace.TIMEOUT,
                "timeout-sent", view, {"high_qc_view": timeout.high_qc_view},
            )
        self._broadcast(message, include_self=True)

    def _process_timeout(self, message: TimeoutMessage) -> None:
        self.stats.timeouts_received += 1
        tc = self.pacemaker.process_remote_timeout(message.timeout)
        if tc is not None:
            self.pacemaker.advance_on_tc(tc)

    # ------------------------------------------------------------------
    # proposing
    # ------------------------------------------------------------------
    def _proposal_plan(self) -> Optional[ProposalPlan]:
        """The proposing rule; Byzantine subclasses override this."""
        return self.safety.choose_extension()

    def _propose(self, view: int) -> None:
        if self._crashed:
            return
        if view != self.pacemaker.current_view or view <= self._last_proposed_view:
            return
        plan = self._proposal_plan()
        if plan is None or plan.parent_id not in self.forest:
            return
        self._last_proposed_view = view
        parent = self.forest.get_block(plan.parent_id)
        if self.tracer is not None:
            # Leader-side queue depth, sampled once per proposal attempt:
            # low-frequency, so the histogram stays cheap.
            self.tracer.metrics.observe(
                self.node_id, "queue_depth", float(len(self.mempool))
            )
        batch = self.mempool.next_batch(self.settings.block_size)
        block = make_block(view, parent, plan.qc, self.node_id, batch)
        cost = self.cost_model.proposal_build_cost(len(batch))
        self.cpu.submit(cost, self._broadcast_proposal, block, view, batch)

    def _broadcast_proposal(self, block: Block, view: int, batch: Tuple[Transaction, ...]) -> None:
        if view != self.pacemaker.current_view:
            # The view moved on while the proposal was being built; recycle
            # the batched transactions so they are not lost.
            self.stats.stale_proposals_dropped += 1
            self.mempool.requeue_front(batch)
            return
        qc_signers = len(block.qc.signers) if block.qc is not None else 0
        size = self.size_model.proposal_size(block, qc_signers)
        message = ProposalMessage(
            sender=self.node_id, size_bytes=size, block=block, view=view
        )
        self.stats.proposals_sent += 1
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.scheduler.now, self.node_id, obs_trace.PROPOSAL, "propose",
                view, {"block": block.block_id, "txs": block.num_transactions},
            )
        self._broadcast(message, include_self=True)
