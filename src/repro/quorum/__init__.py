"""Quorum system: vote and timeout aggregation."""

from repro.quorum.quorum import QuorumTracker, TimeoutTracker, quorum_size, max_faulty

__all__ = ["QuorumTracker", "TimeoutTracker", "quorum_size", "max_faulty"]
