"""Vote and timeout aggregation into certificates.

This is Bamboo's quorum component (paper §III-E): ``voted()`` records a vote
and ``certified()`` asks whether a quorum has been reached.  The aggregators
deduplicate per signer, verify signatures, and emit a certificate exactly
once per (view, block).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional, Set, Tuple

from repro.crypto.keys import KeyRegistry
from repro.crypto.signatures import Signature, verify
from repro.obs import trace as obs_trace
from repro.types.certificates import (
    QuorumCertificate,
    Timeout,
    TimeoutCertificate,
    Vote,
)


def max_faulty(num_nodes: int) -> int:
    """Maximum number of Byzantine nodes tolerated by ``num_nodes`` replicas."""
    if num_nodes < 1:
        raise ValueError(f"need at least one node, got {num_nodes}")
    return (num_nodes - 1) // 3


def quorum_size(num_nodes: int) -> int:
    """Votes required for a certificate: n - f (i.e. "over two thirds").

    For clusters of the canonical size n = 3f + 1 this equals the familiar
    2f + 1.  For other sizes, n - f is the smallest quorum whose pairwise
    intersections still contain at least one honest node, which is what the
    certificates' safety argument needs.
    """
    return num_nodes - max_faulty(num_nodes)


class QuorumTracker:
    """Accumulates votes per (view, block) and forms QCs at the threshold.

    ``threshold`` defaults to the safe ``quorum_size(n) = n - f``.  Passing an
    explicit value models flexible-quorum deployments (SNIPPETS snippet 1's
    ``qc_threshold``); values below 2f + 1 are deliberately *unsafe* — quorums
    stop intersecting in an honest replica — which is exactly what the fuzz
    harness's negative-control test exploits to prove its oracles can fail.
    """

    def __init__(
        self,
        num_nodes: int,
        registry: Optional[KeyRegistry] = None,
        threshold: Optional[int] = None,
    ) -> None:
        self.num_nodes = num_nodes
        self.threshold = threshold if threshold else quorum_size(num_nodes)
        self.registry = registry
        self._votes: Dict[Tuple[int, str], Dict[str, Signature]] = defaultdict(dict)
        self._certified: Set[Tuple[int, str]] = set()
        self.duplicate_votes = 0
        self.invalid_votes = 0
        # Observability (repro.obs): bound by the owning replica when a
        # tracer is attached; None keeps certification untraced.
        self.tracer = None
        self._trace_owner = ""
        self._trace_clock = None

    def bind_tracer(self, tracer, owner: str, clock) -> None:
        """Attach a tracer; QC formation emits under ``owner``'s id."""
        self.tracer = tracer
        self._trace_owner = owner
        self._trace_clock = clock

    def voted(self, vote: Vote) -> bool:
        """Record a vote; returns True if it was new and valid.

        Validity requires the signature to verify, to have been produced by
        the claimed voter, and to cover this vote's (block, view) digest — a
        Byzantine peer must not be able to replay another replica's signature
        under its own name or against a different block.
        """
        key = (vote.view, vote.block_id)
        if key in self._certified:
            # The certificate already formed; late votes can never change it,
            # so skip verification (and the digest recompute it entails) and
            # leave the certified key's vote map alone.
            return False
        if self.registry is not None:
            if (
                vote.signature.signer != vote.voter
                or vote.signature.digest != vote.digest()
                or not verify(self.registry, vote.signature)
            ):
                self.invalid_votes += 1
                return False
        votes = self._votes[key]
        if vote.voter in votes:
            self.duplicate_votes += 1
            return False
        votes[vote.voter] = vote.signature
        return True

    def vote_count(self, view: int, block_id: str) -> int:
        """Number of distinct voters recorded for (view, block)."""
        return len(self._votes.get((view, block_id), {}))

    def certified(self, view: int, block_id: str) -> Optional[QuorumCertificate]:
        """Return a QC once the threshold is reached (only the first time)."""
        key = (view, block_id)
        if key in self._certified:
            return None
        votes = self._votes.get(key)
        if votes is None or len(votes) < self.threshold:
            return None
        self._certified.add(key)
        # The vote map is dead once the certificate forms: voted() rejects
        # late votes for certified keys, so drop it instead of letting it
        # accumulate for the rest of the run.
        del self._votes[key]
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self._trace_clock.now, self._trace_owner, obs_trace.QC, "qc",
                view, {"block": block_id, "signers": len(votes)},
            )
        return QuorumCertificate(
            block_id=block_id,
            view=view,
            signers=frozenset(votes),
            signatures=tuple(votes.values()),
        )

    def add_and_certify(self, vote: Vote) -> Optional[QuorumCertificate]:
        """Convenience: record a vote, then try to form a certificate."""
        if not self.voted(vote):
            # Duplicate, invalid, or late (already-certified) vote — nothing
            # to re-check, and certified() would be a no-op anyway.
            return None
        return self.certified(vote.view, vote.block_id)

    def prune_below(self, view: int) -> None:
        """Drop vote state for views below ``view`` (they can never certify).

        Called from the replica's commit path: once a block at ``view``
        commits, every correct replica has advanced past earlier views, so
        their pending vote maps are dead weight.  Bounds the tracker's
        footprint by the view window in flight instead of run length.
        """
        votes = self._votes
        stale = [key for key in votes if key[0] < view]
        for key in stale:
            del votes[key]
        certified = self._certified
        stale_certified = [key for key in certified if key[0] < view]
        for key in stale_certified:
            certified.discard(key)


class TimeoutTracker:
    """Accumulates TIMEOUT messages per view and forms TCs at the threshold."""

    def __init__(self, num_nodes: int, registry: Optional[KeyRegistry] = None) -> None:
        self.num_nodes = num_nodes
        self.threshold = quorum_size(num_nodes)
        self.registry = registry
        self._timeouts: Dict[int, Dict[str, Timeout]] = defaultdict(dict)
        self._certified: Set[int] = set()
        self.invalid_timeouts = 0
        self.tracer = None
        self._trace_owner = ""
        self._trace_clock = None

    def bind_tracer(self, tracer, owner: str, clock) -> None:
        """Attach a tracer; TC formation emits under ``owner``'s id."""
        self.tracer = tracer
        self._trace_owner = owner
        self._trace_clock = clock

    def record(self, timeout: Timeout) -> bool:
        """Record a timeout message; returns True if it was new and valid."""
        if timeout.view in self._certified:
            # The TC already formed; late timeouts cannot change it.
            return False
        if self.registry is not None:
            if (
                timeout.signature.signer != timeout.voter
                or timeout.signature.digest != timeout.digest()
                or not verify(self.registry, timeout.signature)
            ):
                self.invalid_timeouts += 1
                return False
        timeouts = self._timeouts[timeout.view]
        if timeout.voter in timeouts:
            return False
        timeouts[timeout.voter] = timeout
        return True

    def timeout_count(self, view: int) -> int:
        """Number of distinct replicas that timed out of ``view``."""
        return len(self._timeouts.get(view, {}))

    def certified(self, view: int) -> Optional[TimeoutCertificate]:
        """Return a TC once the threshold is reached (only the first time)."""
        if view in self._certified:
            return None
        timeouts = self._timeouts.get(view)
        if timeouts is None or len(timeouts) < self.threshold:
            return None
        self._certified.add(view)
        # Dead once the TC forms (record() rejects late timeouts for it).
        del self._timeouts[view]
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self._trace_clock.now, self._trace_owner, obs_trace.QC, "tc",
                view, {"signers": len(timeouts)},
            )
        return TimeoutCertificate(
            view=view,
            signers=frozenset(timeouts),
            signatures=tuple(t.signature for t in timeouts.values()),
            high_qc_view=max(t.high_qc_view for t in timeouts.values()),
        )

    def add_and_certify(self, timeout: Timeout) -> Optional[TimeoutCertificate]:
        """Convenience: record a timeout, then try to form a certificate."""
        if not self.record(timeout):
            return None
        return self.certified(timeout.view)

    def prune_below(self, view: int) -> None:
        """Drop timeout state for views below ``view`` (they can never certify)."""
        timeouts = self._timeouts
        stale = [v for v in timeouts if v < view]
        for v in stale:
            del timeouts[v]
        certified = self._certified
        stale_certified = [v for v in certified if v < view]
        for v in stale_certified:
            certified.discard(v)
