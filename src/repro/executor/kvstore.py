"""In-memory key-value execution layer.

The paper's evaluation focuses on protocol-level performance and uses an
in-memory key-value store as the execution layer (§III-D).  The store applies
committed transactions in commit order and remembers which transaction ids
have been applied, which lets the replica avoid re-proposing transactions
that already committed via another branch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Set, Tuple

from repro.types.transaction import Transaction


@dataclass(frozen=True)
class KVSnapshot:
    """An immutable copy of the executor state at a committed height.

    Taken by the checkpoint subsystem (:mod:`repro.checkpoint`) and shipped
    inside ``SnapshotResponse`` messages; ``items`` is sorted so two replicas
    with equal state produce byte-identical snapshots.
    """

    items: Tuple[Tuple[str, str], ...]
    applied_txids: FrozenSet[str]
    operations_applied: int

    @property
    def payload_bytes(self) -> int:
        """Raw key/value bytes carried by the snapshot (for size accounting)."""
        return sum(len(key) + len(value) for key, value in self.items)


class KeyValueStore:
    """Deterministic key-value state machine."""

    def __init__(self) -> None:
        self._data: Dict[str, str] = {}
        self._applied: Set[str] = set()
        self.operations_applied = 0

    def apply(self, transaction: Transaction) -> Optional[str]:
        """Apply one committed transaction; returns the read result for gets.

        Re-applying a transaction id is a no-op: commits are idempotent so a
        transaction that appears both in a forked block and in the main chain
        only takes effect once.
        """
        if transaction.txid in self._applied:
            return None
        self._applied.add(transaction.txid)
        self.operations_applied += 1
        if transaction.operation == "put":
            self._data[transaction.key] = transaction.value
            return None
        if transaction.operation == "get":
            return self._data.get(transaction.key)
        if transaction.operation == "delete":
            self._data.pop(transaction.key, None)
            return None
        raise ValueError(f"unknown operation {transaction.operation!r}")

    def get(self, key: str) -> Optional[str]:
        """Read a key directly (used by tests and examples)."""
        return self._data.get(key)

    def was_applied(self, txid: str) -> bool:
        """True if the transaction id has already been executed."""
        return txid in self._applied

    def snapshot(self) -> KVSnapshot:
        """Copy the current state into an immutable :class:`KVSnapshot`."""
        return KVSnapshot(
            items=tuple(sorted(self._data.items())),
            applied_txids=frozenset(self._applied),
            operations_applied=self.operations_applied,
        )

    def restore(self, snapshot: KVSnapshot) -> None:
        """Replace the store's state with ``snapshot`` (checkpoint install)."""
        self._data = dict(snapshot.items)
        self._applied = set(snapshot.applied_txids)
        self.operations_applied = snapshot.operations_applied

    def state_digest(self) -> int:
        """A cheap state fingerprint for cross-replica consistency checks."""
        return hash(frozenset(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)
