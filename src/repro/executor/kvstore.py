"""In-memory key-value execution layer.

The paper's evaluation focuses on protocol-level performance and uses an
in-memory key-value store as the execution layer (§III-D).  The store applies
committed transactions in commit order and remembers which transaction ids
have been applied, which lets the replica avoid re-proposing transactions
that already committed via another branch.

Bounded dedup memory
--------------------
Remembering *every* applied txid forever is O(committed transactions) even
after checkpointing bounded the forest.  :class:`TxidDedup` replaces the
executor's unbounded set with
per-client session tracking: a txid of the canonical ``tx-<client>-<seq>``
shape is recorded as a sequence number in its client's session, and each
session keeps only a bounded window of recent sequences plus a *floor* —
every sequence at or below the floor is conservatively treated as already
applied.  Duplicates always arrive close together (a transaction re-proposed
from a forked block, or a client retry within its timeout), so dedup remains
exact within the window; only a transaction committing more than a whole
window of its client's later transactions *after* them could be mistaken —
and the mistake is refusal to double-apply, never a double apply.  Because
floors advance purely as a function of the applied history, which commit
order makes identical on every honest replica, the state machine stays
deterministic.  Txids outside the canonical shape (tests, custom clients)
fall back to a bounded FIFO of raw ids.

The index holds O(clients × window) entries, independent of run length —
and snapshots (:class:`KVSnapshot`, shipped in ``SnapshotResponse``) shrink
accordingly.  The replica's reply-routing state gets the same treatment:
``_replied_txids`` reuses :class:`TxidDedup` directly and ``_origin_clients``
is a bounded FIFO (:class:`repro.core.replica.OriginIndex`), so no
per-transaction structure grows with run length anymore
(``tools/memory_smoke.py`` asserts all of these bounds).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple

from repro.types.transaction import Transaction

#: Per-session (and extras) dedup window.  Duplicate applies can only arise
#: within the uncommitted fork window plus client retry horizon — a few
#: hundred transactions at the simulated scales — so 4096 is generous.
DEFAULT_DEDUP_WINDOW = 4096


def _parse_txid(txid: str) -> Optional[Tuple[str, int]]:
    """Split a canonical ``tx-<client>-<seq>`` id into (client, seq)."""
    if txid.startswith("tx-"):
        head, _, tail = txid.rpartition("-")
        if tail.isdigit() and len(head) > 3:
            return head[3:], int(tail)
    return None


class _Session:
    """One client's applied-sequence history: a floor plus recent window."""

    __slots__ = ("floor", "pending")

    def __init__(self, floor: int = -1, pending: Optional[Set[int]] = None) -> None:
        #: Every sequence <= floor counts as applied (conservative).
        self.floor = floor
        #: Applied sequences above the floor (the exact recent window).
        self.pending: Set[int] = pending if pending is not None else set()

    def __contains__(self, seq: int) -> bool:
        return seq <= self.floor or seq in self.pending

    def add(self, seq: int, window: int) -> bool:
        """Record one applied sequence; False if it already counted as applied."""
        if seq <= self.floor or seq in self.pending:
            return False
        self.pending.add(seq)
        if len(self.pending) > window:
            # Keep the most recent half exactly; everything at or below the
            # new floor becomes "applied" by fiat.  Amortized O(1) per add.
            ordered = sorted(self.pending)
            dropped = ordered[: len(ordered) - window // 2]
            self.floor = dropped[-1]
            self.pending = set(ordered[len(dropped):])
        return True


@dataclass(frozen=True)
class DedupState:
    """Immutable, serialization-friendly copy of a :class:`TxidDedup`.

    ``sessions`` holds ``(client, floor, sorted pending sequences)`` rows in
    client order; ``extras`` the non-canonical txids in insertion order.
    Two replicas with equal applied history produce byte-identical states.
    """

    sessions: Tuple[Tuple[str, int, Tuple[int, ...]], ...]
    extras: Tuple[str, ...]

    @property
    def entry_count(self) -> int:
        """Entries a serialized snapshot ships (for wire-size accounting):
        one per tracked sequence, one floor per session, one per extra id."""
        return len(self.extras) + sum(1 + len(pending) for _, _, pending in self.sessions)


class TxidDedup:
    """Bounded-memory applied-transaction index (see module docstring)."""

    def __init__(self, window: int = DEFAULT_DEDUP_WINDOW) -> None:
        if window < 2:
            raise ValueError(f"dedup window must be >= 2, got {window}")
        self.window = window
        self._sessions: Dict[str, _Session] = {}
        #: FIFO of non-canonical txids; ids older than the window are
        #: *forgotten* (they would re-apply), which only affects synthetic
        #: ids — canonical client traffic always takes the session path.
        self._extras: "OrderedDict[str, None]" = OrderedDict()

    def __contains__(self, txid: str) -> bool:
        parsed = _parse_txid(txid)
        if parsed is not None:
            client, seq = parsed
            session = self._sessions.get(client)
            return session is not None and seq in session
        return txid in self._extras

    def add(self, txid: str) -> bool:
        """Record one applied txid; False if it already counted as applied."""
        parsed = _parse_txid(txid)
        if parsed is not None:
            client, seq = parsed
            session = self._sessions.get(client)
            if session is None:
                session = self._sessions[client] = _Session()
            return session.add(seq, self.window)
        if txid in self._extras:
            return False
        self._extras[txid] = None
        while len(self._extras) > self.window:
            self._extras.popitem(last=False)
        return True

    def contains_transaction(self, transaction: Transaction) -> bool:
        """Parse-free :meth:`__contains__` for a live :class:`Transaction`.

        Uses the transaction's own ``(client_id, sequence)`` pair when its
        txid is canonical (validated once per object via
        :attr:`Transaction.canonical_session`) instead of re-parsing the id
        string at every replica.
        """
        session_key = transaction.canonical_session
        if session_key is None:
            return transaction.txid in self._extras
        session = self._sessions.get(session_key[0])
        return session is not None and session_key[1] in session

    def add_transaction(self, transaction: Transaction) -> bool:
        """Parse-free :meth:`add` for a live :class:`Transaction`.

        The session update is inlined (rather than delegated to
        :meth:`_Session.add`) because this runs once per committed
        transaction per replica — the single hottest state-machine call.
        """
        session_key = transaction.canonical_session
        if session_key is None:
            return self.add(transaction.txid)
        client, seq = session_key
        session = self._sessions.get(client)
        if session is None:
            session = self._sessions[client] = _Session()
        if seq <= session.floor or seq in session.pending:
            return False
        pending = session.pending
        pending.add(seq)
        if len(pending) > self.window:
            self._shrink(session)
        return True

    def _shrink(self, session: _Session) -> None:
        """Halve an overflowing session window (rare: amortized O(1) per add).

        Keeps the most recent half exactly; everything at or below the new
        floor becomes "applied" by fiat.
        """
        ordered = sorted(session.pending)
        dropped = ordered[: len(ordered) - self.window // 2]
        session.floor = dropped[-1]
        session.pending = set(ordered[len(dropped):])

    def entry_count(self) -> int:
        """Sequences + floors + extras currently held (the memory bound)."""
        return len(self._extras) + sum(
            1 + len(s.pending) for s in self._sessions.values()
        )

    def state(self) -> DedupState:
        """Freeze into an immutable :class:`DedupState` (canonical order)."""
        return DedupState(
            sessions=tuple(
                (client, session.floor, tuple(sorted(session.pending)))
                for client, session in sorted(self._sessions.items())
            ),
            extras=tuple(self._extras),
        )

    def restore(self, state: DedupState) -> None:
        """Replace the index's content with a frozen state."""
        self._sessions = {
            client: _Session(floor=floor, pending=set(pending))
            for client, floor, pending in state.sessions
        }
        self._extras = OrderedDict((txid, None) for txid in state.extras)


@dataclass(frozen=True)
class KVSnapshot:
    """An immutable copy of the executor state at a committed height.

    Taken by the checkpoint subsystem (:mod:`repro.checkpoint`) and shipped
    inside ``SnapshotResponse`` messages; ``items`` is sorted and ``dedup``
    canonically ordered, so two replicas with equal state produce
    byte-identical snapshots.
    """

    items: Tuple[Tuple[str, str], ...]
    dedup: DedupState
    operations_applied: int

    @property
    def payload_bytes(self) -> int:
        """Raw key/value bytes carried by the snapshot (for size accounting)."""
        return sum(len(key) + len(value) for key, value in self.items)


class KeyValueStore:
    """Deterministic key-value state machine."""

    def __init__(self, dedup_window: int = DEFAULT_DEDUP_WINDOW) -> None:
        self._data: Dict[str, str] = {}
        self._applied = TxidDedup(window=dedup_window)
        self.operations_applied = 0

    def apply(self, transaction: Transaction) -> Optional[str]:
        """Apply one committed transaction; returns the read result for gets.

        Re-applying a transaction id is a no-op: commits are idempotent so a
        transaction that appears both in a forked block and in the main chain
        only takes effect once.

        The canonical-id dedup update is inlined from
        :meth:`TxidDedup.add_transaction` — apply runs once per committed
        transaction per replica, the hottest state-machine call.
        """
        applied = self._applied
        session_key = transaction.canonical_session
        if session_key is not None:
            client, seq = session_key
            session = applied._sessions.get(client)
            if session is None:
                session = applied._sessions[client] = _Session()
            if seq <= session.floor or seq in session.pending:
                return None
            pending = session.pending
            pending.add(seq)
            if len(pending) > applied.window:
                applied._shrink(session)
        elif not applied.add(transaction.txid):
            return None
        self.operations_applied += 1
        operation = transaction.operation
        if operation == "put":
            self._data[transaction.key] = transaction.value
            return None
        if operation == "get":
            return self._data.get(transaction.key)
        if operation == "delete":
            self._data.pop(transaction.key, None)
            return None
        raise ValueError(f"unknown operation {transaction.operation!r}")

    def get(self, key: str) -> Optional[str]:
        """Read a key directly (used by tests and examples)."""
        return self._data.get(key)

    def was_applied(self, txid: str) -> bool:
        """True if the transaction id has already been executed."""
        return txid in self._applied

    def transaction_applied(self, transaction: Transaction) -> bool:
        """Parse-free :meth:`was_applied` for a live :class:`Transaction`."""
        return self._applied.contains_transaction(transaction)

    def dedup_entries(self) -> int:
        """Dedup-index entries currently held (bounded, see module docs)."""
        return self._applied.entry_count()

    def snapshot(self) -> KVSnapshot:
        """Copy the current state into an immutable :class:`KVSnapshot`."""
        return KVSnapshot(
            items=tuple(sorted(self._data.items())),
            dedup=self._applied.state(),
            operations_applied=self.operations_applied,
        )

    def restore(self, snapshot: KVSnapshot) -> None:
        """Replace the store's state with ``snapshot`` (checkpoint install)."""
        self._data = dict(snapshot.items)
        self._applied.restore(snapshot.dedup)
        self.operations_applied = snapshot.operations_applied

    def state_digest(self) -> int:
        """A cheap state fingerprint for cross-replica consistency checks."""
        return hash(frozenset(self._data.items()))

    def __len__(self) -> int:
        return len(self._data)
