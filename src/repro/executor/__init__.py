"""Execution layer: the in-memory key-value store applied on commit."""

from repro.executor.kvstore import KeyValueStore

__all__ = ["KeyValueStore"]
