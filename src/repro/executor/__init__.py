"""Execution layer: the in-memory key-value store applied on commit."""

from repro.executor.kvstore import (
    DEFAULT_DEDUP_WINDOW,
    DedupState,
    KeyValueStore,
    KVSnapshot,
    TxidDedup,
)

__all__ = [
    "DEFAULT_DEDUP_WINDOW",
    "DedupState",
    "KVSnapshot",
    "KeyValueStore",
    "TxidDedup",
]
