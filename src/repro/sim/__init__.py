"""Deterministic discrete-event simulation engine.

This package is the substrate that replaces the paper's cloud testbed.  All
protocol, network, and client code in :mod:`repro` runs on top of a single
:class:`~repro.sim.events.EventScheduler` which owns the virtual clock.

The engine is intentionally small and explicit:

* :class:`~repro.sim.events.EventScheduler` — a priority queue of timestamped
  callbacks with a deterministic tie-break order.
* :class:`~repro.sim.events.Event` — a handle that allows cancelling a
  scheduled callback (used for pacemaker timeouts).
* :class:`~repro.sim.resources.FifoServer` — a serial resource with explicit
  service times.  Replica CPUs and NICs are modelled as ``FifoServer``
  instances, which is what produces queueing (and therefore the L-shaped
  latency/throughput curves of the paper).
* :class:`~repro.sim.random.RandomStreams` — named, independently seeded
  random streams so that simulations are reproducible and statistically
  well-behaved.
"""

from repro.sim.events import Event, EventScheduler
from repro.sim.random import RandomStreams
from repro.sim.resources import FifoServer

__all__ = [
    "Event",
    "EventScheduler",
    "FifoServer",
    "RandomStreams",
]
