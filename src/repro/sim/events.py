"""Event scheduler and virtual clock for the discrete-event simulation.

The scheduler is a classic calendar queue built on :mod:`heapq`.  Time is a
``float`` measured in **seconds** of simulated time.  Events scheduled for the
same instant execute in the order they were scheduled (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.

The API has two tiers:

* :meth:`EventScheduler.call_at` / :meth:`EventScheduler.call_after` return a
  cancellable :class:`Event` handle and accept keyword arguments — use these
  for timers (view timeouts, client request timeouts) that may be cancelled.
* :meth:`EventScheduler.post_at` / :meth:`EventScheduler.post_after` are the
  fast path: no handle, no kwargs, no :class:`Event` allocation.  The vast
  majority of simulated events are message hops that nobody ever cancels;
  posting them costs one plain tuple in the heap and nothing else.

Internally every heap entry is a ``(time, sequence, callback_or_event, args)``
tuple so heap sift comparisons run at C speed on the leading ``(time,
sequence)`` pair (``sequence`` is unique, so the third element is never
compared).  ``args is None`` marks a cancellable :class:`Event` entry —
posted entries always carry a (possibly empty) argument tuple.
"""

from __future__ import annotations

import heapq
import sys
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the event scheduler."""


class Event:
    """A handle to a scheduled callback.

    Events are created via :meth:`EventScheduler.call_at` or
    :meth:`EventScheduler.call_after`.  They can be cancelled before they
    fire; cancelled events stay in the heap (skipped when popped) until the
    scheduler's lazy compaction rebuilds the heap without them.
    """

    __slots__ = ("time", "callback", "args", "kwargs", "cancelled", "fired", "_scheduler")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        scheduler: Optional["EventScheduler"] = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancelled()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class EventScheduler:
    """A deterministic discrete-event scheduler with a virtual clock.

    Typical usage::

        sched = EventScheduler()
        sched.call_after(0.5, handler, message)
        sched.run_until(10.0)

    The scheduler never advances past the time horizon given to
    :meth:`run_until`, and :attr:`now` always reflects the timestamp of the
    event currently being processed (or the last processed event).
    """

    #: Heaps smaller than this are never compacted (rebuilding is not worth it).
    compaction_min_size = 64
    #: Compact when cancelled entries exceed this fraction of the heap.
    compaction_threshold = 0.5

    def __init__(self, start_time: float = 0.0) -> None:
        #: Current simulated time in seconds.  A plain attribute (not a
        #: property): it is the single most-read value in the simulator.
        #: Treat it as read-only outside this class.
        self.now = float(start_time)
        # Heap of (time, sequence, callback_or_event, args) tuples; see the
        # module docstring for the entry encoding.
        self._heap: list = []
        self._sequence = 0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0
        self._running = False

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (awaiting compaction)."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of lazy heap compactions performed so far."""
        return self._compactions

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    # ------------------------------------------------------------------
    # tier 1: cancellable timers
    # ------------------------------------------------------------------
    def call_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.6f} < now {self.now:.6f}"
            )
        event = Event(time, callback, args, kwargs, scheduler=self)
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, event, None))
        return event

    def call_after(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self.now + delay, callback, *args, **kwargs)

    # ------------------------------------------------------------------
    # tier 2: fire-and-forget posts (the message-hop fast path)
    # ------------------------------------------------------------------
    def post_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute ``time`` with no handle.

        Identical execution-order and clock semantics to :meth:`call_at`
        (same heap, same (time, sequence) ordering), but the entry cannot be
        cancelled and allocates nothing beyond its heap tuple.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.6f} < now {self.now:.6f}"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (time, self._sequence, callback, args))

    def post_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Schedule ``callback(*args)`` ``delay`` seconds from now, no handle."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        self._sequence += 1
        heapq.heappush(self._heap, (self.now + delay, self._sequence, callback, args))

    # ------------------------------------------------------------------
    # cancelled-entry bookkeeping and lazy compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts once cancelled entries dominate.

        Long runs cancel one timer per view change (see the pacemaker), so
        without compaction the heap grows with the number of views rather
        than the number of live timers.  Compaction preserves the (time,
        sequence) order of the surviving entries, so event execution order —
        and therefore simulation determinism — is unaffected.
        """
        self._cancelled += 1
        if (
            len(self._heap) >= self.compaction_min_size
            and self._cancelled > self.compaction_threshold * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without the cancelled entries.

        In place: the run loops hold a local alias to the heap list, so the
        list object must stay stable across a compaction triggered from
        inside a callback.
        """
        heap = self._heap
        heap[:] = [
            entry for entry in heap
            if entry[3] is not None or not entry[2].cancelled
        ]
        heapq.heapify(heap)
        self._cancelled = 0
        self._compactions += 1

    def _drop_cancelled_head(self) -> None:
        """Pop cancelled entries off the heap top (they will never run)."""
        heap = self._heap
        while heap and heap[0][3] is None and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events in timestamp order until ``horizon`` (inclusive).

        Returns the number of events executed by this call.  Events scheduled
        beyond the horizon remain queued.  ``max_events`` is a safety valve
        for tests.

        The clock only fast-forwards to the horizon when no pending event at
        or before it remains queued; if ``max_events`` stops the loop early,
        ``now`` stays at the last executed event so a later run resumes
        without ever moving the clock backwards.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run_until)")
        self._running = True
        executed = 0
        limit = sys.maxsize if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > horizon:
                    break
                pop(heap)
                args = entry[3]
                if args is None:
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    self.now = time
                    event.fired = True
                    event.callback(*event.args, **event.kwargs)
                else:
                    self.now = time
                    entry[2](*args)
                executed += 1
                if executed >= limit:
                    break
        finally:
            self._running = False
            # Batched outside the loop: one counter update per run, not per
            # event (the count is only read between runs).
            self._processed += executed
        self._drop_cancelled_head()
        if self.now < horizon and (not heap or heap[0][0] > horizon):
            self.now = horizon
        return executed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is hit)."""
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        executed = 0
        limit = sys.maxsize if max_events is None else max_events
        heap = self._heap
        pop = heapq.heappop
        try:
            while heap:
                entry = pop(heap)
                args = entry[3]
                if args is None:
                    event = entry[2]
                    if event.cancelled:
                        self._cancelled -= 1
                        continue
                    self.now = entry[0]
                    event.fired = True
                    event.callback(*event.args, **event.kwargs)
                else:
                    self.now = entry[0]
                    entry[2](*args)
                executed += 1
                if executed >= limit:
                    break
        finally:
            self._running = False
            self._processed += executed
        return executed
