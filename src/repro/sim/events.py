"""Event scheduler and virtual clock for the discrete-event simulation.

The scheduler is a classic calendar queue built on :mod:`heapq`.  Time is a
``float`` measured in **seconds** of simulated time.  Events scheduled for the
same instant execute in the order they were scheduled (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the event scheduler."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.  Ordered by (time, sequence)."""

    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A handle to a scheduled callback.

    Events are created via :meth:`EventScheduler.call_at` or
    :meth:`EventScheduler.call_after`.  They can be cancelled before they
    fire; cancelled events stay in the heap but are skipped when popped.
    """

    __slots__ = ("time", "callback", "args", "kwargs", "cancelled", "fired")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class EventScheduler:
    """A deterministic discrete-event scheduler with a virtual clock.

    Typical usage::

        sched = EventScheduler()
        sched.call_after(0.5, handler, message)
        sched.run_until(10.0)

    The scheduler never advances past the time horizon given to
    :meth:`run_until`, and :attr:`now` always reflects the timestamp of the
    event currently being processed (or the last processed event).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_QueueEntry] = []
        self._sequence = 0
        self._processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.6f} < now {self._now:.6f}"
            )
        event = Event(time, callback, args, kwargs)
        self._sequence += 1
        heapq.heappush(self._heap, _QueueEntry(time, self._sequence, event))
        return event

    def call_after(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args, **kwargs)

    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events in timestamp order until ``horizon`` (inclusive).

        Returns the number of events executed by this call.  Events scheduled
        beyond the horizon remain queued.  ``max_events`` is a safety valve
        for tests.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run_until)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.time > horizon:
                    break
                heapq.heappop(self._heap)
                event = entry.event
                if event.cancelled:
                    continue
                self._now = entry.time
                event.fired = True
                event.callback(*event.args, **event.kwargs)
                executed += 1
                self._processed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        if self._now < horizon:
            self._now = horizon
        return executed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is hit)."""
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                entry = heapq.heappop(self._heap)
                event = entry.event
                if event.cancelled:
                    continue
                self._now = entry.time
                event.fired = True
                event.callback(*event.args, **event.kwargs)
                executed += 1
                self._processed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        return executed
