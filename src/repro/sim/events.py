"""Event scheduler and virtual clock for the discrete-event simulation.

The scheduler is a classic calendar queue built on :mod:`heapq`.  Time is a
``float`` measured in **seconds** of simulated time.  Events scheduled for the
same instant execute in the order they were scheduled (a monotonically
increasing sequence number breaks ties), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for invalid interactions with the event scheduler."""


@dataclass(order=True)
class _QueueEntry:
    """Internal heap entry.  Ordered by (time, sequence)."""

    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A handle to a scheduled callback.

    Events are created via :meth:`EventScheduler.call_at` or
    :meth:`EventScheduler.call_after`.  They can be cancelled before they
    fire; cancelled events stay in the heap (skipped when popped) until the
    scheduler's lazy compaction rebuilds the heap without them.
    """

    __slots__ = ("time", "callback", "args", "kwargs", "cancelled", "fired", "_scheduler")

    def __init__(
        self,
        time: float,
        callback: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        scheduler: Optional["EventScheduler"] = None,
    ) -> None:
        self.time = time
        self.callback = callback
        self.args = args
        self.kwargs = kwargs
        self.cancelled = False
        self.fired = False
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the callback from running when its time arrives."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._scheduler is not None:
            self._scheduler._note_cancelled()

    @property
    def pending(self) -> bool:
        """True if the event has neither fired nor been cancelled."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"Event(t={self.time:.6f}, {name}, {state})"


class EventScheduler:
    """A deterministic discrete-event scheduler with a virtual clock.

    Typical usage::

        sched = EventScheduler()
        sched.call_after(0.5, handler, message)
        sched.run_until(10.0)

    The scheduler never advances past the time horizon given to
    :meth:`run_until`, and :attr:`now` always reflects the timestamp of the
    event currently being processed (or the last processed event).
    """

    #: Heaps smaller than this are never compacted (rebuilding is not worth it).
    compaction_min_size = 64
    #: Compact when cancelled entries exceed this fraction of the heap.
    compaction_threshold = 0.5

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: list[_QueueEntry] = []
        self._sequence = 0
        self._processed = 0
        self._cancelled = 0
        self._compactions = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._heap)

    @property
    def cancelled_pending(self) -> int:
        """Cancelled events still occupying heap slots (awaiting compaction)."""
        return self._cancelled

    @property
    def compactions(self) -> int:
        """Number of lazy heap compactions performed so far."""
        return self._compactions

    @property
    def processed_events(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event in the past: {time:.6f} < now {self._now:.6f}"
            )
        event = Event(time, callback, args, kwargs, scheduler=self)
        self._sequence += 1
        heapq.heappush(self._heap, _QueueEntry(time, self._sequence, event))
        return event

    # ------------------------------------------------------------------
    # cancelled-entry bookkeeping and lazy compaction
    # ------------------------------------------------------------------
    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; compacts once cancelled entries dominate.

        Long runs cancel one timer per view change (see the pacemaker), so
        without compaction the heap grows with the number of views rather
        than the number of live timers.  Compaction preserves the (time,
        sequence) order of the surviving entries, so event execution order —
        and therefore simulation determinism — is unaffected.
        """
        self._cancelled += 1
        if (
            len(self._heap) >= self.compaction_min_size
            and self._cancelled > self.compaction_threshold * len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without the cancelled entries."""
        self._heap = [entry for entry in self._heap if not entry.event.cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0
        self._compactions += 1

    def call_after(self, delay: float, callback: Callable[..., Any], *args: Any, **kwargs: Any) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.call_at(self._now + delay, callback, *args, **kwargs)

    def run_until(self, horizon: float, max_events: Optional[int] = None) -> int:
        """Run events in timestamp order until ``horizon`` (inclusive).

        Returns the number of events executed by this call.  Events scheduled
        beyond the horizon remain queued.  ``max_events`` is a safety valve
        for tests.

        The clock only fast-forwards to the horizon when no pending event at
        or before it remains queued; if ``max_events`` stops the loop early,
        ``now`` stays at the last executed event so a later run resumes
        without ever moving the clock backwards.
        """
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run_until)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if entry.time > horizon:
                    break
                heapq.heappop(self._heap)
                event = entry.event
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = entry.time
                event.fired = True
                event.callback(*event.args, **event.kwargs)
                executed += 1
                self._processed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        self._drop_cancelled_head()
        if self._now < horizon and (not self._heap or self._heap[0].time > horizon):
            self._now = horizon
        return executed

    def _drop_cancelled_head(self) -> None:
        """Pop cancelled entries off the heap top (they will never run)."""
        while self._heap and self._heap[0].event.cancelled:
            heapq.heappop(self._heap)
            self._cancelled -= 1

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until the event queue drains (or ``max_events`` is hit)."""
        if self._running:
            raise SimulationError("scheduler is already running (re-entrant run)")
        self._running = True
        executed = 0
        try:
            while self._heap:
                entry = heapq.heappop(self._heap)
                event = entry.event
                if event.cancelled:
                    self._cancelled -= 1
                    continue
                self._now = entry.time
                event.fired = True
                event.callback(*event.args, **event.kwargs)
                executed += 1
                self._processed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
        return executed
