"""Named, independently seeded random streams.

A simulation draws randomness for several unrelated purposes: network
propagation delays, client arrival processes, leader election, payload
contents.  Using one shared generator couples these — adding a client would
perturb network delays and break reproducibility of comparisons.  Instead,
each purpose gets its own :class:`random.Random` derived deterministically
from a master seed and a stream name.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RandomStreams:
    """Factory of named deterministic random generators.

    >>> streams = RandomStreams(seed=7)
    >>> a = streams.get("network")
    >>> b = streams.get("clients")
    >>> a is streams.get("network")
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, random.Random] = {}

    def get(self, name: str) -> random.Random:
        """Return the generator for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode("utf-8")).digest()
            stream_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = random.Random(stream_seed)
        return self._streams[name]

    def normal(self, name: str, mean: float, stddev: float, floor: float = 0.0) -> float:
        """Draw a normal sample from stream ``name``, clipped at ``floor``.

        Network delays must never be negative; the paper's model uses a
        normal RTT whose mean is far enough from zero that clipping is rare.
        """
        value = self.get(name).gauss(mean, stddev)
        if value < floor:
            return floor
        return value

    def exponential(self, name: str, rate: float) -> float:
        """Draw an exponential inter-arrival time (Poisson process)."""
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        return self.get(name).expovariate(rate)

    def uniform(self, name: str, low: float, high: float) -> float:
        """Draw a uniform sample from stream ``name``."""
        return self.get(name).uniform(low, high)

    def choice(self, name: str, options):
        """Pick a uniformly random element of ``options``."""
        return self.get(name).choice(options)

    def randint(self, name: str, low: int, high: int) -> int:
        """Draw a uniform integer in ``[low, high]`` from stream ``name``."""
        return self.get(name).randint(low, high)
