"""Serial resources with explicit service times.

The paper's performance model (§V) treats each machine as a queue made of a
CPU and a NIC.  :class:`FifoServer` is the simulation-side realization of
that queue: jobs are served one at a time in arrival order, each occupying
the server for a caller-supplied service time.  Utilization and queueing
statistics are tracked so benchmarks can report saturation.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Optional

from repro.sim.events import EventScheduler


@dataclass
class _Job:
    """A unit of work waiting for or occupying the server."""

    service_time: float
    callback: Callable[[], Any]
    enqueued_at: float


class FifoServer:
    """A single-server FIFO queue driven by the event scheduler.

    ``submit(service_time, callback)`` enqueues a job; when the job finishes
    service, ``callback()`` runs at the completion time.  The server is
    work-conserving: it is busy whenever at least one job is present.

    Statistics collected:

    * :attr:`busy_time` — total time the server spent serving jobs.
    * :attr:`jobs_served` — number of completed jobs.
    * :attr:`total_delay` — sum over completed jobs of (completion - arrival),
      i.e. queueing plus service time, used to report average sojourn times.
    """

    def __init__(self, scheduler: EventScheduler, name: str = "server") -> None:
        self.scheduler = scheduler
        self.name = name
        self._queue: Deque[_Job] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.jobs_served = 0
        self.total_delay = 0.0
        self._started_at = scheduler.now

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a job is in service."""
        return self._busy

    def submit(self, service_time: float, callback: Callable[[], Any]) -> None:
        """Enqueue a job requiring ``service_time`` seconds of service."""
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        job = _Job(service_time, callback, self.scheduler.now)
        self._queue.append(job)
        if not self._busy:
            self._start_next()

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of elapsed time the server has been busy."""
        current = self.scheduler.now if now is None else now
        elapsed = current - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def average_sojourn(self) -> float:
        """Mean time a completed job spent in the system (queue + service)."""
        if self.jobs_served == 0:
            return 0.0
        return self.total_delay / self.jobs_served

    def _start_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        job = self._queue.popleft()
        self.scheduler.call_after(job.service_time, self._finish, job)

    def _finish(self, job: _Job) -> None:
        self.busy_time += job.service_time
        self.jobs_served += 1
        self.total_delay += self.scheduler.now - job.enqueued_at
        job.callback()
        self._start_next()
