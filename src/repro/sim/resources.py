"""Serial resources with explicit service times.

The paper's performance model (§V) treats each machine as a queue made of a
CPU and a NIC.  :class:`FifoServer` is the simulation-side realization of
that queue: jobs are served one at a time in arrival order, each occupying
the server for a caller-supplied service time.  Utilization and queueing
statistics are tracked so benchmarks can report saturation.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional, Tuple

from repro.sim.events import EventScheduler


class FifoServer:
    """A single-server FIFO queue driven by the event scheduler.

    ``submit(service_time, callback, *args)`` enqueues a job; when the job
    finishes service, ``callback(*args)`` runs at the completion time.  The
    server is work-conserving: it is busy whenever at least one job is
    present.  Jobs are plain ``(service_time, callback, args, enqueued_at)``
    tuples and completions go through the scheduler's handle-free
    :meth:`~repro.sim.events.EventScheduler.post_after` tier — this server
    sits on the per-message CPU hot path, so a job costs no allocations
    beyond its tuple.

    Statistics collected:

    * :attr:`busy_time` — total time the server spent serving jobs.
    * :attr:`jobs_served` — number of completed jobs.
    * :attr:`total_delay` — sum over completed jobs of (completion - arrival),
      i.e. queueing plus service time, used to report average sojourn times.
    """

    def __init__(self, scheduler: EventScheduler, name: str = "server") -> None:
        self.scheduler = scheduler
        self.name = name
        self._queue: Deque[Tuple[float, Callable[..., Any], tuple, float]] = deque()
        self._busy = False
        self.busy_time = 0.0
        self.jobs_served = 0
        self.total_delay = 0.0
        self._started_at = scheduler.now

    @property
    def queue_length(self) -> int:
        """Jobs waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a job is in service."""
        return self._busy

    def submit(self, service_time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Enqueue a job requiring ``service_time`` seconds of service."""
        if service_time < 0:
            raise ValueError(f"negative service time: {service_time}")
        scheduler = self.scheduler
        if self._busy:
            self._queue.append((service_time, callback, args, scheduler.now))
            return
        # Idle server: start service directly, skipping the queue round trip
        # (the common case — most messages find the CPU free).
        self._busy = True
        scheduler.post_after(
            service_time, self._finish, (service_time, callback, args, scheduler.now)
        )

    def utilization(self, now: Optional[float] = None) -> float:
        """Fraction of elapsed time the server has been busy."""
        current = self.scheduler.now if now is None else now
        elapsed = current - self._started_at
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def average_sojourn(self) -> float:
        """Mean time a completed job spent in the system (queue + service)."""
        if self.jobs_served == 0:
            return 0.0
        return self.total_delay / self.jobs_served

    def _finish(self, job: Tuple[float, Callable[..., Any], tuple, float]) -> None:
        self.busy_time += job[0]
        self.jobs_served += 1
        self.total_delay += self.scheduler.now - job[3]
        job[1](*job[2])
        # Start the next queued job inline (one _finish per served job is
        # the hottest callback in the simulator).
        queue = self._queue
        if queue:
            next_job = queue.popleft()
            self.scheduler.post_after(next_job[0], self._finish, next_job)
        else:
            self._busy = False
