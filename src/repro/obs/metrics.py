"""Low-cardinality observability metrics: counters and log-bucket histograms.

This is the aggregate companion to :mod:`repro.obs.trace`: the same
instrumentation points that emit trace records also feed counters (one per
``replica × category``) and latency histograms (request→commit, network hop
delay, mempool queue depth) here, so a run can be summarised without
scanning the full event stream — and so the trace ring buffers can wrap
without losing the aggregate picture.

Histograms use power-of-two ("log2") buckets: ``observe(v)`` increments the
bucket holding ``v``'s binary exponent, which gives ~30 buckets across nine
decades of latency with a single ``math.frexp`` call per observation and no
configuration.  That is deliberately coarse — the histograms answer "what
order of magnitude, and how skewed" questions; exact quantiles come from
the trace itself.

:class:`CampaignProgress` reuses the histogram layer to drive the live
progress/ETA reporter on :class:`repro.experiments.runner.CampaignRunner`:
per-run durations feed a histogram whose median flags stragglers.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Dict, List, Optional, Tuple


class LogHistogram:
    """Histogram with power-of-two buckets, exact count/sum/min/max."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self) -> None:
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram values must be non-negative, got {value}")
        # frexp(v) = (m, e) with v = m * 2**e, 0.5 <= |m| < 1; the exponent
        # alone is the bucket index. Zero gets its own bucket below every
        # positive exponent.
        exponent = math.frexp(value)[1] if value > 0 else -1075
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "LogHistogram") -> None:
        for exponent, count in other.buckets.items():
            self.buckets[exponent] = self.buckets.get(exponent, 0) + count
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the q-quantile observation.

        Accurate to within a factor of two — enough for straggler detection
        and order-of-magnitude summaries.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        seen = 0
        for exponent in sorted(self.buckets):
            seen += self.buckets[exponent]
            if seen >= target:
                return math.ldexp(1.0, exponent)
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "buckets": {str(exp): self.buckets[exp] for exp in sorted(self.buckets)},
        }


class ObsMetrics:
    """Counters and histograms keyed ``(replica, name)``.

    Cardinality stays low by construction: names are the fixed category /
    histogram names from the instrumentation points, replicas number in the
    tens, and histogram buckets are log-bounded — so a full campaign's
    metrics serialise to a few KB regardless of run length.
    """

    __slots__ = ("counters", "histograms")

    def __init__(self) -> None:
        self.counters: Dict[Tuple[str, str], int] = {}
        self.histograms: Dict[Tuple[str, str], LogHistogram] = {}

    def inc(self, replica: str, name: str, delta: int = 1) -> None:
        key = (replica, name)
        self.counters[key] = self.counters.get(key, 0) + delta

    def observe(self, replica: str, name: str, value: float) -> None:
        key = (replica, name)
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = LogHistogram()
        histogram.observe(value)

    def counter(self, replica: str, name: str) -> int:
        return self.counters.get((replica, name), 0)

    def histogram(self, replica: str, name: str) -> Optional[LogHistogram]:
        return self.histograms.get((replica, name))

    def merged_histogram(self, name: str) -> LogHistogram:
        """Union of the named histogram across every replica."""
        merged = LogHistogram()
        for (_, hist_name), histogram in self.histograms.items():
            if hist_name == name:
                merged.merge(histogram)
        return merged

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic (sorted-key) snapshot for JSON serialisation."""
        return {
            "counters": {
                f"{replica}/{name}": self.counters[(replica, name)]
                for replica, name in sorted(self.counters)
            },
            "histograms": {
                f"{replica}/{name}": self.histograms[(replica, name)].to_dict()
                for replica, name in sorted(self.histograms)
            },
        }


class CampaignProgress:
    """Live progress/ETA reporter for :class:`CampaignRunner`.

    The runner calls :meth:`start` when a run is submitted and
    :meth:`finish` when it completes; each ``finish`` emits one status line
    (through ``emit``, default: print to stderr) with points done/total, the
    rolling completion rate over the last ``window`` finishes, the ETA it
    implies, and a straggler flag for any in-flight run older than
    ``straggler_factor`` × the median completed duration (from the shared
    :class:`LogHistogram` layer, so "median" is a log-bucket upper bound).
    """

    def __init__(
        self,
        total: int,
        emit: Optional[Callable[[str], None]] = None,
        window: int = 10,
        straggler_factor: float = 4.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if total < 0:
            raise ValueError(f"total must be non-negative, got {total}")
        if window < 1:
            raise ValueError(f"window must be positive, got {window}")
        self.total = total
        self.window = window
        self.straggler_factor = straggler_factor
        self.clock = clock
        self.emit = emit if emit is not None else self._default_emit
        self.metrics = ObsMetrics()
        self.done = 0
        self.in_flight: Dict[str, float] = {}
        self._recent: List[float] = []  # completion times, last `window` kept

    @staticmethod
    def _default_emit(line: str) -> None:
        import sys

        print(line, file=sys.stderr)

    def start(self, run_id: str) -> None:
        self.in_flight[run_id] = self.clock()

    def finish(self, run_id: str) -> None:
        now = self.clock()
        started = self.in_flight.pop(run_id, None)
        if started is not None:
            self.metrics.observe("campaign", "run_duration", now - started)
        self.done += 1
        self._recent.append(now)
        if len(self._recent) > self.window:
            del self._recent[0]
        self.emit(self.render(now))

    def rate(self, now: Optional[float] = None) -> float:
        """Completions/s over the rolling window (0.0 until two finishes)."""
        if len(self._recent) < 2:
            return 0.0
        span = self._recent[-1] - self._recent[0]
        if span <= 0:
            return 0.0
        return (len(self._recent) - 1) / span

    def eta_seconds(self, now: Optional[float] = None) -> Optional[float]:
        rate = self.rate(now)
        if rate <= 0:
            return None
        return (self.total - self.done) / rate

    def stragglers(self, now: Optional[float] = None) -> List[str]:
        """In-flight run ids older than factor × median completed duration."""
        histogram = self.metrics.histogram("campaign", "run_duration")
        if histogram is None or not histogram.count:
            return []
        if now is None:
            now = self.clock()
        threshold = self.straggler_factor * histogram.quantile(0.5)
        return sorted(
            run_id
            for run_id, started in self.in_flight.items()
            if now - started > threshold
        )

    def render(self, now: Optional[float] = None) -> str:
        if now is None:
            now = self.clock()
        parts = [f"campaign: {self.done}/{self.total} done"]
        rate = self.rate(now)
        if rate > 0:
            parts.append(f"{rate:.2f} runs/s")
            eta = self.eta_seconds(now)
            if eta is not None:
                parts.append(f"eta {eta:.0f}s")
        stragglers = self.stragglers(now)
        if stragglers:
            parts.append(f"stragglers: {','.join(stragglers)}")
        return " | ".join(parts)
