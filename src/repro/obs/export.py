"""Trace export: deterministic JSONL, Chrome/Perfetto JSON, plain text.

Three built-in serialisations of a :class:`repro.obs.trace.Tracer`'s
records, each registered as a trace sink (see :data:`repro.obs.trace.
TRACE_SINKS`):

``jsonl``
    One header object followed by one compact JSON array per record —
    ``[t, replica, category, kind, view, payload]``.  Output is
    byte-deterministic (sorted keys, fixed separators, no timestamps or
    environment data), which is what the same-seed determinism test and the
    fuzz violation artifacts rely on.  :func:`parse_jsonl` /
    :func:`validate_jsonl` read it back, rejecting unknown categories and
    malformed rows with :class:`TraceFormatError`.

``perfetto`` (alias ``chrome``)
    Chrome trace-event format JSON, loadable in Perfetto
    (https://ui.perfetto.dev) or ``chrome://tracing``: each replica is a
    process track, each view is a complete ("X") slice coloured by outcome,
    votes/commits/QCs are instant ("i") events on the replica's track, and
    scenario fault events are global instants.  Profiling records (folded
    in by ``tools/perf_smoke.py``) become slices on a dedicated track.

``text``
    A plain-text timeline, one line per record, for terminal reading.

``svg``
    The per-replica view-timeline lane chart from
    :func:`repro.analysis.figures.render_view_timeline` (imported lazily —
    figures also consumes :func:`view_spans` from here).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.obs.trace import (
    CATEGORY_BITS,
    TraceRecord,
    register_trace_sink,
)

#: Format version stamped into the JSONL header.
TRACE_FORMAT_VERSION = 1

#: json.dumps options shared by every serialisation: canonical key order and
#: no whitespace, so identical records always serialise to identical bytes.
_DUMPS = dict(sort_keys=True, separators=(",", ":"))


class TraceFormatError(ValueError):
    """A trace file (or record stream) violates the trace schema."""


def _prepare(path: Union[str, Path]) -> Path:
    """Resolve a sink's output path, creating missing parent directories."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def jsonl_lines(records: Sequence[TraceRecord]) -> List[str]:
    """The JSONL serialisation as a list of lines (no trailing newlines)."""
    replicas = sorted({record.replica for record in records})
    categories = sorted({record.category for record in records})
    header = {
        "repro_trace": TRACE_FORMAT_VERSION,
        "records": len(records),
        "replicas": replicas,
        "categories": categories,
    }
    lines = [json.dumps(header, **_DUMPS)]
    for record in records:
        lines.append(json.dumps(list(record), **_DUMPS))
    return lines


@register_trace_sink("jsonl")
def write_jsonl(records: Sequence[TraceRecord], path: Union[str, Path]) -> Path:
    """Write the deterministic JSONL dump; returns the path."""
    path = _prepare(path)
    path.write_text("\n".join(jsonl_lines(records)) + "\n", encoding="utf-8")
    return path


def parse_jsonl(
    text: str,
) -> Tuple[Dict[str, Any], List[TraceRecord]]:
    """Parse a JSONL trace back into ``(header, records)``.

    Raises :class:`TraceFormatError` on malformed JSON, a missing or
    mismatched header, unknown categories, or ill-typed record rows.
    """
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise TraceFormatError("empty trace file (missing header line)")
    try:
        header = json.loads(lines[0])
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict) or "repro_trace" not in header:
        raise TraceFormatError("first line is not a repro_trace header object")
    if header["repro_trace"] != TRACE_FORMAT_VERSION:
        raise TraceFormatError(
            f"unsupported trace format version {header['repro_trace']!r} "
            f"(this reader supports {TRACE_FORMAT_VERSION})"
        )
    records: List[TraceRecord] = []
    for lineno, line in enumerate(lines[1:], start=2):
        try:
            row = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(f"line {lineno}: not valid JSON: {exc}") from exc
        if not isinstance(row, list) or len(row) != 6:
            raise TraceFormatError(
                f"line {lineno}: expected a 6-element record array, got {row!r}"
            )
        t, replica, category, kind, view, payload = row
        if not isinstance(t, (int, float)) or isinstance(t, bool):
            raise TraceFormatError(f"line {lineno}: timestamp must be a number")
        if not isinstance(replica, str) or not isinstance(kind, str):
            raise TraceFormatError(f"line {lineno}: replica and kind must be strings")
        if category not in CATEGORY_BITS:
            raise TraceFormatError(
                f"line {lineno}: unknown trace category {category!r}"
            )
        if not isinstance(view, int) or isinstance(view, bool):
            raise TraceFormatError(f"line {lineno}: view must be an integer")
        if payload is not None and not isinstance(payload, dict):
            raise TraceFormatError(f"line {lineno}: payload must be an object or null")
        records.append(TraceRecord(float(t), replica, category, kind, view, payload))
    declared = header.get("records")
    if declared is not None and declared != len(records):
        raise TraceFormatError(
            f"header declares {declared} records but file contains {len(records)}"
        )
    return header, records


def validate_jsonl(path: Union[str, Path]) -> Tuple[Dict[str, Any], List[TraceRecord]]:
    """Parse-and-validate a JSONL trace file (the ``trace`` CLI's default)."""
    return parse_jsonl(Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# view spans (shared by the Perfetto export and the SVG timeline figure)
# ----------------------------------------------------------------------
def view_spans(records: Sequence[TraceRecord]) -> Dict[str, List[Dict[str, Any]]]:
    """Fold per-replica view-entry records into ``[start, end)`` spans.

    Each span is ``{"view", "start", "end", "outcome"}`` with outcome
    ``"committed"`` (the replica committed a block during the span),
    ``"timeout"`` (a local timeout fired in that view), or ``"idle"``.
    A span ends when the replica enters its next view; the last span ends
    at the trace's final timestamp.  Ring-buffer wraparound only drops the
    oldest records, so spans stay well-formed — a replica whose view entry
    was evicted simply starts its first span at its first surviving record.
    """
    if not records:
        return {}
    end_of_trace = max(record.t for record in records)
    spans: Dict[str, List[Dict[str, Any]]] = {}
    open_spans: Dict[str, Dict[str, Any]] = {}
    for record in records:
        replica = record.replica
        if record.category == "view" and record.kind == "enter":
            previous = open_spans.get(replica)
            if previous is not None:
                previous["end"] = record.t
            span = {
                "view": record.view,
                "start": record.t,
                "end": end_of_trace,
                "outcome": "idle",
            }
            open_spans[replica] = span
            spans.setdefault(replica, []).append(span)
            continue
        span = open_spans.get(replica)
        if span is None:
            # Wraparound (or a replica traced from mid-view): synthesise a
            # span from the first surviving record so markers still land on
            # a lane.
            span = {
                "view": record.view,
                "start": record.t,
                "end": end_of_trace,
                "outcome": "idle",
            }
            open_spans[replica] = span
            spans.setdefault(replica, []).append(span)
        if record.category == "commit":
            span["outcome"] = "committed"
        elif record.category == "timeout" and span["outcome"] != "committed":
            span["outcome"] = "timeout"
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event / Perfetto
# ----------------------------------------------------------------------
def _micros(t: float) -> float:
    return t * 1e6


def to_chrome_trace(records: Sequence[TraceRecord]) -> Dict[str, Any]:
    """Build a Chrome trace-event format document (Perfetto-loadable)."""
    events: List[Dict[str, Any]] = []
    replicas = sorted({record.replica for record in records})
    pids = {replica: pid for pid, replica in enumerate(replicas, start=1)}
    for replica in replicas:
        events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pids[replica],
                "tid": 0,
                "ts": 0,
                "args": {"name": replica},
            }
        )
    # Views as complete slices on each replica's track.
    for replica, spans in sorted(view_spans(records).items()):
        pid = pids[replica]
        for span in spans:
            events.append(
                {
                    "ph": "X",
                    "name": f"view {span['view']}",
                    "cat": "view",
                    "pid": pid,
                    "tid": 0,
                    "ts": _micros(span["start"]),
                    "dur": max(_micros(span["end"] - span["start"]), 1.0),
                    "args": {"view": span["view"], "outcome": span["outcome"]},
                }
            )
    profile_base = 0.0
    for record in records:
        category = record.category
        if category == "view":
            continue
        if category == "profile":
            # Hotspot spans from tools/perf_smoke.py: laid end to end on a
            # synthetic "profile" track, width = cumulative time.
            payload = record.payload or {}
            duration = _micros(float(payload.get("cumtime", 0.0))) or 1.0
            events.append(
                {
                    "ph": "X",
                    "name": record.kind,
                    "cat": "profile",
                    "pid": 0,
                    "tid": 0,
                    "ts": profile_base,
                    "dur": duration,
                    "args": payload,
                }
            )
            profile_base += duration
            continue
        event: Dict[str, Any] = {
            "ph": "i",
            "name": f"{category}:{record.kind}",
            "cat": category,
            "ts": _micros(record.t),
            "s": "t",
            "args": {"view": record.view},
        }
        if record.payload:
            event["args"].update(record.payload)
        if category == "fault":
            # Scenario events affect the whole cluster: global scope, drawn
            # across every track.
            event["s"] = "g"
            event["pid"] = pids.get(record.replica, 0)
            event["tid"] = 0
        else:
            event["pid"] = pids.get(record.replica, 0)
            event["tid"] = 0
        events.append(event)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


@register_trace_sink("perfetto", "chrome")
def write_chrome_trace(
    records: Sequence[TraceRecord], path: Union[str, Path]
) -> Path:
    path = _prepare(path)
    path.write_text(json.dumps(to_chrome_trace(records), **_DUMPS), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# plain-text timeline
# ----------------------------------------------------------------------
def to_text(records: Sequence[TraceRecord]) -> str:
    """One line per record: aligned columns, payload as compact JSON."""
    lines = []
    for record in records:
        payload = (
            " " + json.dumps(record.payload, **_DUMPS) if record.payload else ""
        )
        lines.append(
            f"{record.t:12.6f}  {record.replica:<10} "
            f"v{record.view:<5} {record.category:<10} {record.kind}{payload}"
        )
    return "\n".join(lines)


@register_trace_sink("text")
def write_text(records: Sequence[TraceRecord], path: Union[str, Path]) -> Path:
    path = _prepare(path)
    path.write_text(to_text(records) + ("\n" if records else ""), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# SVG view-timeline (delegates to the figures layer)
# ----------------------------------------------------------------------
@register_trace_sink("svg", "timeline")
def write_svg_timeline(
    records: Sequence[TraceRecord], path: Union[str, Path]
) -> Path:
    from repro.analysis.figures import render_view_timeline

    path = _prepare(path)
    path.write_text(render_view_timeline(records), encoding="utf-8")
    return path


# ----------------------------------------------------------------------
# summary (used by the `trace` CLI subcommand)
# ----------------------------------------------------------------------
def summarize(records: Sequence[TraceRecord]) -> Dict[str, Any]:
    """Deterministic per-category / per-replica record counts and time span."""
    by_category: Dict[str, int] = {}
    by_replica: Dict[str, int] = {}
    for record in records:
        by_category[record.category] = by_category.get(record.category, 0) + 1
        by_replica[record.replica] = by_replica.get(record.replica, 0) + 1
    return {
        "records": len(records),
        "replicas": {name: by_replica[name] for name in sorted(by_replica)},
        "categories": {name: by_category[name] for name in sorted(by_category)},
        "t_min": min((record.t for record in records), default=0.0),
        "t_max": max((record.t for record in records), default=0.0),
    }
