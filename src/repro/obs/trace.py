"""Protocol-aware tracing: per-replica ring buffers of compact event records.

A :class:`Tracer` collects ``(t, replica, category, kind, view, payload)``
tuples from instrumentation points threaded through the protocol stack
(view entry, proposal, vote, QC/TC formation, commit, timeout, sync round,
snapshot install, network hops, client commits, and scenario fault events).
Three properties make it safe to leave the hooks in the hot path:

* **A falsy no-op sentinel.**  Every instrumented component holds a
  ``tracer`` attribute that is ``None`` unless a tracer was installed; the
  hot-path check is a single ``if tr is not None`` (or ``if tr:``) on a
  local, so disabled tracing costs one attribute load per site — the PR 8
  events/s ratchet must not move.
* **Category bitmasks.**  Each record belongs to exactly one category bit
  (:data:`VIEW`, :data:`PROPOSAL`, ...); ``Tracer(categories=("view",
  "commit"))`` keeps only those, and :meth:`Tracer.emit` drops filtered
  categories before touching the buffers.  Unknown bits are rejected, both
  at construction and at emit time.
* **Bounded ring buffers.**  Records live in one ``deque(maxlen=capacity)``
  per replica; a long run evicts its oldest records instead of growing.

Installation is process-global and explicit: :func:`install` sets the
module-level :data:`ACTIVE` sentinel that the cluster builders
(:func:`repro.bench.runner.build_cluster`, the deployment runner) read when
wiring replicas, so the tracer never lives in a :class:`Configuration` —
run ids, stored records, and resume semantics are unchanged by tracing.
Prefer the :func:`tracing` context manager, which restores the previous
state on exit::

    from repro.obs import Tracer, tracing

    with tracing(Tracer(categories=("view", "commit"))) as tracer:
        result = api.run(config)
    records = tracer.records()

Export sinks (JSONL, Chrome/Perfetto, text, SVG timeline) live in
:mod:`repro.obs.export` and are an extension point: register new ones with
:func:`register_trace_sink`.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

from repro.obs.metrics import ObsMetrics
from repro.plugins import Registry

# ----------------------------------------------------------------------
# categories
# ----------------------------------------------------------------------
#: One bit per record category, in a stable declaration order (the order
#: fixes the bit values, the exported category list, and summary listings).
VIEW = 1 << 0         #: view entry (pacemaker ``_enter_view``)
PROPOSAL = 1 << 1     #: proposal broadcast / receipt
VOTE = 1 << 2         #: vote sent
QC = 1 << 3           #: quorum / timeout certificate formation
COMMIT = 1 << 4       #: block committed
TIMEOUT = 1 << 5      #: local timeout fired, TIMEOUT message broadcast
SYNC = 1 << 6         #: block-fetch round started / response ingested
CHECKPOINT = 1 << 7   #: checkpoint taken, snapshot installed
FAULT = 1 << 8        #: scenario events (crash/partition/heal/...) and safety violations
NET = 1 << 9          #: network-level drops (crashed/partitioned destinations)
CLIENT = 1 << 10      #: client request committed (request->commit latency)
PROFILE = 1 << 11     #: profiling spans folded in by tools/perf_smoke.py

#: category bit -> canonical name, in declaration order.
CATEGORY_NAMES: Dict[int, str] = {
    VIEW: "view",
    PROPOSAL: "proposal",
    VOTE: "vote",
    QC: "qc",
    COMMIT: "commit",
    TIMEOUT: "timeout",
    SYNC: "sync",
    CHECKPOINT: "checkpoint",
    FAULT: "fault",
    NET: "net",
    CLIENT: "client",
    PROFILE: "profile",
}

#: canonical name -> category bit.
CATEGORY_BITS: Dict[str, int] = {name: bit for bit, name in CATEGORY_NAMES.items()}

#: Every defined category bit set.
ALL_CATEGORIES: int = 0
for _bit in CATEGORY_NAMES:
    ALL_CATEGORIES |= _bit
del _bit

#: Default ring-buffer capacity per replica (records).
DEFAULT_CAPACITY = 1 << 16


def category_mask(categories: Union[int, str, Iterable[str], None]) -> int:
    """Resolve a category selection to a validated bitmask.

    Accepts ``None`` (everything), an int bitmask, one category name, or an
    iterable of names.  Unknown bits and names raise ``ValueError`` — a typo
    must not silently trace nothing.
    """
    if categories is None:
        return ALL_CATEGORIES
    if isinstance(categories, int):
        unknown = categories & ~ALL_CATEGORIES
        if unknown or categories == 0:
            raise ValueError(
                f"unknown trace category bits {unknown:#x} "
                f"(defined mask is {ALL_CATEGORIES:#x})"
                if unknown
                else "category mask must select at least one category"
            )
        return categories
    if isinstance(categories, str):
        categories = (categories,)
    mask = 0
    for name in categories:
        bit = CATEGORY_BITS.get(name)
        if bit is None:
            raise ValueError(
                f"unknown trace category {name!r}; "
                f"known: {', '.join(CATEGORY_BITS)}"
            )
        mask |= bit
    if mask == 0:
        raise ValueError("category mask must select at least one category")
    return mask


class TraceRecord(NamedTuple):
    """One exported trace record (category resolved to its name)."""

    t: float
    replica: str
    category: str
    kind: str
    view: int
    payload: Optional[Dict[str, Any]]


class Tracer:
    """Collects protocol events into per-replica bounded ring buffers."""

    __slots__ = (
        "mask",
        "capacity",
        "metrics",
        "buffers",
        "records_emitted",
        "records_evicted",
        "_seq",
    )

    def __init__(
        self,
        categories: Union[int, str, Iterable[str], None] = None,
        capacity: int = DEFAULT_CAPACITY,
        metrics: Optional[ObsMetrics] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"trace capacity must be positive, got {capacity}")
        self.mask = category_mask(categories)
        self.capacity = capacity
        #: Low-cardinality counters and latency histograms fed by the same
        #: instrumentation points (see :mod:`repro.obs.metrics`).
        self.metrics = metrics if metrics is not None else ObsMetrics()
        #: replica id -> ring of ``(seq, t, category_bit, kind, view, payload)``.
        self.buffers: Dict[str, Deque[Tuple]] = {}
        self.records_emitted = 0
        self.records_evicted = 0
        # Global emission sequence: the merge key of records(). Emission
        # order is deterministic (the simulation is), so sorting by seq
        # reproduces it exactly — including ties at equal timestamps.
        self._seq = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def emit(
        self,
        t: float,
        replica: str,
        category: int,
        kind: str,
        view: int,
        payload: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one event (dropped when its category is filtered out)."""
        if not (category & self.mask):
            if category & ~ALL_CATEGORIES or category == 0:
                raise ValueError(f"unknown trace category bits: {category:#x}")
            return
        if category not in CATEGORY_NAMES:
            # Inside the mask but not a single defined bit (e.g. VIEW|VOTE):
            # a record belongs to exactly one category.
            raise ValueError(f"unknown trace category bits: {category:#x}")
        buffer = self.buffers.get(replica)
        if buffer is None:
            buffer = self.buffers[replica] = deque(maxlen=self.capacity)
        elif len(buffer) == self.capacity:
            self.records_evicted += 1
        self._seq += 1
        buffer.append((self._seq, t, category, kind, view, payload))
        self.records_emitted += 1

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def records(self) -> List[TraceRecord]:
        """Every retained record, merged across replicas in emission order."""
        merged: List[Tuple] = []
        for replica, buffer in self.buffers.items():
            merged.extend(
                (seq, t, replica, category, kind, view, payload)
                for (seq, t, category, kind, view, payload) in buffer
            )
        merged.sort(key=lambda entry: entry[0])
        names = CATEGORY_NAMES
        return [
            TraceRecord(t, replica, names[category], kind, view, payload)
            for (_, t, replica, category, kind, view, payload) in merged
        ]

    def replicas(self) -> List[str]:
        """Replica ids with at least one retained record, sorted."""
        return sorted(self.buffers)

    def __len__(self) -> int:
        return sum(len(buffer) for buffer in self.buffers.values())

    def clear(self) -> None:
        """Drop every retained record (counters and metrics are kept)."""
        self.buffers.clear()


# ----------------------------------------------------------------------
# process-global installation (the no-op fast path)
# ----------------------------------------------------------------------
#: The installed tracer, or ``None`` (falsy) when tracing is disabled.
#: Cluster builders read this when wiring replicas; instrumented components
#: copy it into a ``tracer`` attribute checked with one ``if`` per site.
ACTIVE: Optional[Tracer] = None


def install(tracer: Optional[Tracer] = None, **kwargs: Any) -> Tracer:
    """Install ``tracer`` (or a fresh ``Tracer(**kwargs)``) as :data:`ACTIVE`.

    Clusters built *after* installation pick it up; already-built clusters
    are unaffected (attach via :meth:`repro.core.replica.Replica.attach_tracer`
    if needed).  Returns the installed tracer.
    """
    global ACTIVE
    if tracer is None:
        tracer = Tracer(**kwargs)
    ACTIVE = tracer
    return tracer


def uninstall() -> Optional[Tracer]:
    """Clear :data:`ACTIVE`; returns the tracer that was installed, if any."""
    global ACTIVE
    tracer, ACTIVE = ACTIVE, None
    return tracer


@contextmanager
def tracing(
    tracer: Optional[Tracer] = None, **kwargs: Any
) -> Iterator[Tracer]:
    """Context manager: install a tracer, restore the previous state on exit. ::

        with tracing(categories=("view", "commit")) as tracer:
            api.run(config)
        print(len(tracer.records()))
    """
    global ACTIVE
    previous = ACTIVE
    installed = install(tracer, **kwargs)
    try:
        yield installed
    finally:
        ACTIVE = previous


# ----------------------------------------------------------------------
# trace sinks: the export extension point
# ----------------------------------------------------------------------
#: Registry of export sinks.  A sink is a callable
#: ``(records: Sequence[TraceRecord], path) -> Path`` writing one trace to
#: one file; the built-ins (``jsonl``, ``perfetto``, ``text``, ``svg``)
#: register themselves in :mod:`repro.obs.export`.
TRACE_SINKS: Registry[Callable] = Registry("trace sink")


def register_trace_sink(name: str, *aliases: str, override: bool = False) -> Callable:
    """Decorator registering an export sink under ``name`` (and aliases)."""
    return TRACE_SINKS.register(name, *aliases, override=override)


def available_trace_sinks() -> List[str]:
    """Canonical names of the registered trace sinks (built-ins included)."""
    import repro.obs.export  # noqa: F401  — registers the built-in sinks

    return TRACE_SINKS.available()


def write_trace(records, path, sink: str = "jsonl"):
    """Write ``records`` to ``path`` through the named sink; returns the path."""
    import repro.obs.export  # noqa: F401  — registers the built-in sinks

    return TRACE_SINKS.get(sink)(records, path)
