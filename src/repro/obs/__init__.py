"""Observability: protocol-aware tracing, metrics, and trace export.

See ``docs/OBSERVABILITY.md`` for the guided tour.  The short version::

    from repro import api
    from repro.bench.config import Configuration

    traced = api.trace(Configuration(num_nodes=4, runtime=1.0, seed=7))
    traced.save("run.trace.jsonl")              # deterministic JSONL
    traced.save("run.perfetto.json", "perfetto")  # open in ui.perfetto.dev
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.obs.metrics import CampaignProgress, LogHistogram, ObsMetrics
from repro.obs.trace import (
    ACTIVE,
    ALL_CATEGORIES,
    CATEGORY_BITS,
    CATEGORY_NAMES,
    DEFAULT_CAPACITY,
    TRACE_SINKS,
    TraceRecord,
    Tracer,
    available_trace_sinks,
    category_mask,
    install,
    register_trace_sink,
    tracing,
    uninstall,
    write_trace,
)

__all__ = [
    "ALL_CATEGORIES",
    "CATEGORY_BITS",
    "CATEGORY_NAMES",
    "DEFAULT_CAPACITY",
    "TRACE_SINKS",
    "CampaignProgress",
    "LogHistogram",
    "ObsMetrics",
    "TraceRecord",
    "TracedRun",
    "Tracer",
    "available_trace_sinks",
    "category_mask",
    "install",
    "register_trace_sink",
    "tracing",
    "uninstall",
    "write_trace",
]


@dataclass
class TracedRun:
    """A run result bundled with the tracer that observed it.

    Returned by :func:`repro.api.trace`; ``result`` is whatever the
    underlying runner produced (an ``ExperimentResult``).
    """

    result: Any
    tracer: Tracer
    _records: Optional[List[TraceRecord]] = field(default=None, repr=False)

    def records(self) -> List[TraceRecord]:
        if self._records is None:
            self._records = self.tracer.records()
        return self._records

    def save(self, path: Union[str, Path], sink: str = "jsonl") -> Path:
        """Export the trace through a registered sink; returns the path."""
        return write_trace(self.records(), path, sink)

    @property
    def metrics(self) -> ObsMetrics:
        return self.tracer.metrics
