"""Wire messages exchanged between replicas and clients.

Every message carries ``sender`` (a node or client id) and ``size_bytes``
(used by the network's NIC model).  Replica-to-replica messages additionally
carry the view they pertain to so handlers can discard stale traffic.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.types.block import Block
from repro.types.certificates import Timeout, TimeoutCertificate, Vote
from repro.types.transaction import Transaction

_MESSAGE_COUNTER = itertools.count()


@dataclass(frozen=True)
class Message:
    """Base class for all wire messages."""

    sender: str
    size_bytes: int
    message_id: int = field(default_factory=lambda: next(_MESSAGE_COUNTER), compare=False)


@dataclass(frozen=True)
class ProposalMessage(Message):
    """A leader's block proposal for a view.

    ``forwarded_by`` is set when the message is an echo (Streamlet echoes all
    messages it receives); echoes are not re-echoed.
    """

    block: Block = None  # type: ignore[assignment]
    view: int = 0
    forwarded_by: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Proposal(view={self.view}, block={self.block.block_id[:10]}, from={self.sender})"


@dataclass(frozen=True)
class VoteMessage(Message):
    """A replica's vote, sent to the next leader (or broadcast in Streamlet)."""

    vote: Vote = None  # type: ignore[assignment]
    forwarded_by: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VoteMsg(view={self.vote.view}, block={self.vote.block_id[:10]}, from={self.sender})"


@dataclass(frozen=True)
class TimeoutMessage(Message):
    """A pacemaker TIMEOUT broadcast announcing the sender's local timeout."""

    timeout: Timeout = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeoutMsg(view={self.timeout.view}, from={self.sender})"


@dataclass(frozen=True)
class TimeoutCertificateMessage(Message):
    """A formed TC forwarded to the leader of the next view."""

    tc: TimeoutCertificate = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ClientRequest(Message):
    """A client transaction submitted to a replica."""

    transaction: Transaction = None  # type: ignore[assignment]


@dataclass(frozen=True)
class ClientReply(Message):
    """A replica's response to a client request.

    ``status`` is "committed" for a successful commit and "rejected" when the
    replica's mempool was full and the request was dropped (backpressure);
    clients only measure latency for committed replies.
    """

    txid: str = ""
    committed_at: float = 0.0
    replica: str = ""
    status: str = "committed"
