"""Wire messages exchanged between replicas and clients.

Every message carries ``sender`` (a node or client id) and ``size_bytes``
(used by the network's NIC model).  Replica-to-replica messages additionally
carry the view they pertain to so handlers can discard stale traffic.

Messages are ``__slots__`` classes rather than dataclasses: tens of thousands
are created per simulated second, so the per-instance ``__dict__`` and the
dataclass-generated ``__eq__`` machinery are measurable.  Equality and
hashing compare the fields named in ``_compare_fields`` (``message_id`` is
excluded — it is a transport-assigned tracking id, not message content).

``message_id`` starts at :data:`UNASSIGNED_MESSAGE_ID` and is stamped by the
runtime that first carries the message (the simulated :class:`Network` or an
:class:`AsyncioTransport`), each from its own counter.  Ids never travel the
wire, so repeated runs in one process assign identical ids — no
process-global counter leaks state across runs.
"""

from __future__ import annotations

from repro.types.block import Block
from repro.types.certificates import Timeout, TimeoutCertificate, Vote
from repro.types.transaction import Transaction

#: Sentinel ``message_id`` of a message no runtime has stamped yet.
UNASSIGNED_MESSAGE_ID = -1


class Message:
    """Base class for all wire messages."""

    __slots__ = ("sender", "size_bytes", "message_id")

    #: Fields compared by ``__eq__``/``__hash__`` (``message_id`` excluded).
    _compare_fields = ("sender", "size_bytes")

    def __init__(self, sender: str, size_bytes: int, message_id: int = UNASSIGNED_MESSAGE_ID) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not self.__class__:
            return NotImplemented
        for name in self._compare_fields:
            if getattr(self, name) != getattr(other, name):
                return False
        return True

    def __hash__(self) -> int:
        return hash((self.__class__,) + tuple(getattr(self, name) for name in self._compare_fields))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        fields = ", ".join(f"{name}={getattr(self, name)!r}" for name in self._compare_fields)
        return f"{self.__class__.__name__}({fields})"


class ProposalMessage(Message):
    """A leader's block proposal for a view.

    ``forwarded_by`` is set when the message is an echo (Streamlet echoes all
    messages it receives); echoes are not re-echoed.
    """

    __slots__ = ("block", "view", "forwarded_by")

    _compare_fields = ("sender", "size_bytes", "block", "view", "forwarded_by")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        block: Block = None,  # type: ignore[assignment]
        view: int = 0,
        forwarded_by: str = "",
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.block = block
        self.view = view
        self.forwarded_by = forwarded_by

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Proposal(view={self.view}, block={self.block.block_id[:10]}, from={self.sender})"


class VoteMessage(Message):
    """A replica's vote, sent to the next leader (or broadcast in Streamlet)."""

    __slots__ = ("vote", "forwarded_by")

    _compare_fields = ("sender", "size_bytes", "vote", "forwarded_by")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        vote: Vote = None,  # type: ignore[assignment]
        forwarded_by: str = "",
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.vote = vote
        self.forwarded_by = forwarded_by

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VoteMsg(view={self.vote.view}, block={self.vote.block_id[:10]}, from={self.sender})"


class TimeoutMessage(Message):
    """A pacemaker TIMEOUT broadcast announcing the sender's local timeout."""

    __slots__ = ("timeout",)

    _compare_fields = ("sender", "size_bytes", "timeout")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        timeout: Timeout = None,  # type: ignore[assignment]
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.timeout = timeout

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TimeoutMsg(view={self.timeout.view}, from={self.sender})"


class TimeoutCertificateMessage(Message):
    """A formed TC forwarded to the leader of the next view."""

    __slots__ = ("tc",)

    _compare_fields = ("sender", "size_bytes", "tc")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        tc: TimeoutCertificate = None,  # type: ignore[assignment]
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.tc = tc


class ClientRequest(Message):
    """A client transaction submitted to a replica."""

    __slots__ = ("transaction",)

    _compare_fields = ("sender", "size_bytes", "transaction")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        transaction: Transaction = None,  # type: ignore[assignment]
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.transaction = transaction


class ClientReply(Message):
    """A replica's response to a client request.

    ``status`` is "committed" for a successful commit and "rejected" when the
    replica's mempool was full and the request was dropped (backpressure);
    clients only measure latency for committed replies.
    """

    __slots__ = ("txid", "committed_at", "replica", "status")

    _compare_fields = ("sender", "size_bytes", "txid", "committed_at", "replica", "status")

    def __init__(
        self,
        sender: str,
        size_bytes: int,
        message_id: int = UNASSIGNED_MESSAGE_ID,
        txid: str = "",
        committed_at: float = 0.0,
        replica: str = "",
        status: str = "committed",
    ) -> None:
        self.sender = sender
        self.size_bytes = size_bytes
        self.message_id = message_id
        self.txid = txid
        self.committed_at = committed_at
        self.replica = replica
        self.status = status
