"""Wire-size accounting used by the NIC/bandwidth model.

The paper's t_NIC term is ``2 · m / b`` where ``m`` is the serialized block
size and ``b`` the machine bandwidth.  The simulation therefore needs a
consistent estimate of message sizes.  The constants approximate the secp256k1
signature, SHA-256 hash, and header sizes of the Go implementation; they only
need to be *relatively* correct (payload scaling, vote vs. block ratio) for
the evaluation shapes to hold.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class SizeModel:
    """Byte-size estimates for every message kind."""

    hash_size: int = 32
    signature_size: int = 65
    view_number_size: int = 8
    tx_header_size: int = 24
    block_header_size: int = 96
    client_request_overhead: int = 64
    client_reply_size: int = 96
    timeout_message_size: int = 120

    def __post_init__(self) -> None:
        # Per-kind constants are consulted on every simulated send, so the
        # fixed ones are folded once and qc_size is memoized per signer count
        # (a run only ever sees a handful of distinct quorum sizes).
        self._vote_size = self.hash_size + self.view_number_size + self.signature_size
        self._qc_header = self.hash_size + self.view_number_size
        self._qc_sizes: dict = {}

    def transaction_size(self, payload_size: int) -> int:
        """Serialized size of one transaction with ``payload_size`` extra bytes."""
        return self.tx_header_size + payload_size

    def qc_size(self, num_signers: int) -> int:
        """Serialized size of a quorum certificate with ``num_signers`` votes."""
        size = self._qc_sizes.get(num_signers)
        if size is None:
            size = self._qc_sizes[num_signers] = (
                self._qc_header + num_signers * self.signature_size
            )
        return size

    def block_size(self, num_transactions: int, payload_size: int, qc_signers: int) -> int:
        """Serialized size of a proposal carrying a block and its embedded QC."""
        return (
            self.block_header_size
            + self.qc_size(qc_signers)
            + num_transactions * self.transaction_size(payload_size)
        )

    def block_size_for(self, transactions, qc_signers: int) -> int:
        """Serialized size of a proposal for a concrete transaction batch."""
        return (
            self.block_header_size
            + self.qc_size(qc_signers)
            + sum(self.transaction_size(tx.payload_size) for tx in transactions)
        )

    def proposal_size(self, block, qc_signers: int) -> int:
        """Serialized size of a proposal carrying ``block`` (cached payload).

        Equivalent to ``block_size_for(block.transactions, qc_signers)`` but
        uses the block's cached payload total instead of re-summing the
        batch on every send.
        """
        return (
            self.block_header_size
            + self.qc_size(qc_signers)
            + block.num_transactions * self.tx_header_size
            + block.payload_bytes
        )

    def vote_size(self) -> int:
        """Serialized size of a vote message."""
        return self._vote_size

    def client_request_size(self, payload_size: int) -> int:
        """Serialized size of a client request."""
        return self.client_request_overhead + payload_size

    def block_request_size(self) -> int:
        """Serialized size of a sync BlockRequest (two hashes + a height)."""
        return 2 * self.hash_size + self.view_number_size

    def snapshot_request_size(self) -> int:
        """Serialized size of a SnapshotRequest (a height plus a header)."""
        return self.view_number_size + self.hash_size

    def snapshot_size(self, checkpoint) -> int:
        """Serialized size of a checkpoint (block, QC, id log, KV state)."""
        state = checkpoint.state
        return (
            self.block_header_size
            + self.qc_size(len(checkpoint.qc.signers))
            + len(checkpoint.committed_ids) * self.hash_size
            + len(state.items) * self.tx_header_size
            + state.payload_bytes
            + state.dedup.entry_count * self.hash_size
        )

    def snapshot_response_size(self, checkpoint=None) -> int:
        """Serialized size of a SnapshotResponse (header only for negatives)."""
        if checkpoint is None:
            return self.block_header_size
        return self.block_header_size + self.snapshot_size(checkpoint)

    def block_response_size(self, blocks, tip_qc_signers: int = 0) -> int:
        """Serialized size of a sync BlockResponse batch.

        Each block travels with its embedded certificate (as in a proposal);
        the tip's own certificate rides along so the requester can certify
        the newest block without waiting for a later proposal.
        """
        return (
            self.block_header_size
            + self.qc_size(tip_qc_signers)
            + sum(
                self.proposal_size(
                    block,
                    len(block.qc.signers) if block.qc is not None else 0,
                )
                for block in blocks
            )
        )
