"""Votes, timeouts, and the certificates aggregated from them."""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import FrozenSet, Tuple

from repro.crypto.digest import digest_fields
from repro.crypto.signatures import Signature


@dataclass(frozen=True)
class Vote:
    """A vote cast by a replica for a block in a given view."""

    voter: str
    block_id: str
    view: int
    signature: Signature

    def digest(self) -> str:
        """Digest over the vote's semantic content (what gets signed)."""
        return vote_digest(self.block_id, self.view)


@lru_cache(maxsize=4096)
def vote_digest(block_id: str, view: int) -> str:
    """The digest a replica signs when voting for ``block_id`` at ``view``.

    Memoized: every voter computes it once at signing time and every
    verifier again per vote, so one ``(block_id, view)`` pair is hashed
    O(n) times per view without the cache.  A pure function of its
    arguments, so the cache cannot affect determinism.
    """
    return digest_fields("vote", block_id, view)


@dataclass(frozen=True)
class QuorumCertificate:
    """Proof that a quorum (2f+1) of replicas voted for a block.

    The genesis certificate has ``view == 0`` and an empty signer set; it is
    the only certificate allowed to be unsigned.
    """

    block_id: str
    view: int
    signers: FrozenSet[str]
    signatures: Tuple[Signature, ...] = ()

    @property
    def is_genesis(self) -> bool:
        """True for the bootstrap certificate of the genesis block."""
        return self.view == 0 and not self.signers

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QC(view={self.view}, block={self.block_id[:10]}, signers={len(self.signers)})"


@dataclass(frozen=True)
class Timeout:
    """A replica's declaration that its view timer expired.

    ``high_qc_view`` advertises the highest QC the sender knows, letting the
    next leader synchronize its state when it assembles the TC (this mirrors
    the LibraBFT-style pacemaker the paper adopts).
    """

    voter: str
    view: int
    high_qc_view: int
    signature: Signature

    def digest(self) -> str:
        """Digest over the timeout's semantic content (what gets signed)."""
        return timeout_digest(self.view)


@lru_cache(maxsize=1024)
def timeout_digest(view: int) -> str:
    """The digest a replica signs when timing out of ``view`` (memoized)."""
    return digest_fields("timeout", view)


@dataclass(frozen=True)
class TimeoutCertificate:
    """Proof that a quorum of replicas timed out of the same view."""

    view: int
    signers: FrozenSet[str]
    signatures: Tuple[Signature, ...] = ()
    high_qc_view: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TC(view={self.view}, signers={len(self.signers)})"
