"""Client transactions (requests) replicated by the protocols."""

from __future__ import annotations

import itertools
from functools import cached_property
from typing import Optional, Tuple

_COUNTER = itertools.count()


class Transaction:
    """A client operation to be ordered by the blockchain.

    The execution layer is a simple key-value store (as in the paper), so a
    transaction carries an operation, a key, and a value.  ``payload_size``
    is the number of *extra* payload bytes attached to the request; it feeds
    the NIC/bandwidth model but its contents are irrelevant, so no actual
    byte string is materialized.

    A plain class rather than a frozen dataclass: transactions are created
    on the client hot path (one per request), and the frozen-dataclass
    ``object.__setattr__`` per field costs several times a direct slot
    write.  Treat instances as immutable all the same — they are shared
    between the mempool, blocks, and every replica that applies them.
    """

    _fields = (
        "txid", "client_id", "operation", "key", "value",
        "payload_size", "created_at", "sequence",
    )

    def __init__(
        self,
        txid: str,
        client_id: str,
        operation: str = "put",
        key: str = "",
        value: str = "",
        payload_size: int = 0,
        created_at: float = 0.0,
        sequence: Optional[int] = None,
    ) -> None:
        self.txid = txid
        self.client_id = client_id
        self.operation = operation
        self.key = key
        self.value = value
        self.payload_size = payload_size
        self.created_at = created_at
        self.sequence = next(_COUNTER) if sequence is None else sequence

    @classmethod
    def create(
        cls,
        client_id: str,
        created_at: float,
        payload_size: int = 0,
        operation: str = "put",
        key: Optional[str] = None,
        value: str = "",
        sequence: Optional[int] = None,
    ) -> "Transaction":
        """Build a transaction with a unique id.

        Pass an explicit per-client ``sequence`` for ids that are
        deterministic across repeated runs in one process (clients do: their
        ``(client_id, sequence)`` pair is unique cluster-wide); the default
        falls back to a process-global counter.
        """
        if sequence is None:
            sequence = next(_COUNTER)
        txid = f"tx-{client_id}-{sequence}"
        transaction = cls(
            txid=txid,
            client_id=client_id,
            operation=operation,
            key=key if key is not None else f"k{sequence % 1024}",
            value=value,
            payload_size=payload_size,
            created_at=created_at,
            sequence=sequence,
        )
        # Ids built here are canonical by construction: pre-seed the
        # cached_property so no consumer pays the lazy f-string check.
        transaction.__dict__["canonical_session"] = (client_id, sequence)
        return transaction

    @cached_property
    def canonical_session(self) -> Optional[Tuple[str, int]]:
        """``(client_id, sequence)`` when the txid has the canonical shape.

        Computed once per object (each transaction is shared across every
        replica that applies it), letting the dedup index skip re-parsing
        the txid string.  ``None`` for hand-built ids that do not match
        ``tx-<client>-<seq>`` — those fall back to the string paths.
        """
        if self.txid == f"tx-{self.client_id}-{self.sequence}":
            return (self.client_id, self.sequence)
        return None

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Transaction:
            return NotImplemented
        for name in self._fields:
            if getattr(self, name) != getattr(other, name):
                return False
        return True

    def __hash__(self) -> int:
        return hash(self.txid)

    def __repr__(self) -> str:
        parts = ", ".join(f"{name}={getattr(self, name)!r}" for name in self._fields)
        return f"Transaction({parts})"
