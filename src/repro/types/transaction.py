"""Client transactions (requests) replicated by the protocols."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

_COUNTER = itertools.count()


@dataclass(frozen=True)
class Transaction:
    """A client operation to be ordered by the blockchain.

    The execution layer is a simple key-value store (as in the paper), so a
    transaction carries an operation, a key, and a value.  ``payload_size``
    is the number of *extra* payload bytes attached to the request; it feeds
    the NIC/bandwidth model but its contents are irrelevant, so no actual
    byte string is materialized.
    """

    txid: str
    client_id: str
    operation: str = "put"
    key: str = ""
    value: str = ""
    payload_size: int = 0
    created_at: float = 0.0
    sequence: int = field(default_factory=lambda: next(_COUNTER))

    @classmethod
    def create(
        cls,
        client_id: str,
        created_at: float,
        payload_size: int = 0,
        operation: str = "put",
        key: Optional[str] = None,
        value: str = "",
        sequence: Optional[int] = None,
    ) -> "Transaction":
        """Build a transaction with a unique id.

        Pass an explicit per-client ``sequence`` for ids that are
        deterministic across repeated runs in one process (clients do: their
        ``(client_id, sequence)`` pair is unique cluster-wide); the default
        falls back to a process-global counter.
        """
        if sequence is None:
            sequence = next(_COUNTER)
        txid = f"tx-{client_id}-{sequence}"
        return cls(
            txid=txid,
            client_id=client_id,
            operation=operation,
            key=key if key is not None else f"k{sequence % 1024}",
            value=value,
            payload_size=payload_size,
            created_at=created_at,
            sequence=sequence,
        )

    def __hash__(self) -> int:
        return hash(self.txid)
