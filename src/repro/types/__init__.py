"""Core data types shared by every chained-BFT protocol in the framework.

The types mirror the entities described in §II of the paper: transactions,
blocks chained by parent hashes, quorum certificates (QCs) that certify
blocks, timeout certificates (TCs) used by the pacemaker, and the wire
messages exchanged between replicas and clients.
"""

from repro.types.block import Block, GENESIS_VIEW, make_genesis
from repro.types.certificates import QuorumCertificate, TimeoutCertificate, Timeout, Vote
from repro.types.messages import (
    ClientReply,
    ClientRequest,
    Message,
    ProposalMessage,
    TimeoutMessage,
    VoteMessage,
)
from repro.types.sizes import SizeModel
from repro.types.transaction import Transaction

__all__ = [
    "Block",
    "ClientReply",
    "ClientRequest",
    "GENESIS_VIEW",
    "Message",
    "ProposalMessage",
    "QuorumCertificate",
    "SizeModel",
    "Timeout",
    "TimeoutCertificate",
    "TimeoutMessage",
    "Transaction",
    "Vote",
    "VoteMessage",
    "make_genesis",
]
