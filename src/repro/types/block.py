"""Blocks: batches of transactions chained by parent hashes."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Optional, Tuple

from repro.crypto.digest import digest_fields, digest_strings
from repro.types.certificates import QuorumCertificate
from repro.types.transaction import Transaction

GENESIS_VIEW = 0
GENESIS_ID = "genesis"


@dataclass(frozen=True)
class Block:
    """A block proposed in a view.

    Attributes
    ----------
    block_id:
        Hash identifier computed over (view, parent, proposer, payload digest).
    view:
        The view in which the block was proposed.  Views increase along any
        chain but are not necessarily consecutive (a fork or a timeout leaves
        gaps).
    parent_id:
        Hash of the parent block this block extends.
    height:
        Chain length from genesis (genesis has height 0).  The proposer knows
        its parent's height, so the value is carried in the block; the block
        forest re-validates it on insertion.
    qc:
        The quorum certificate embedded by the proposer — per the chained
        propose-vote scheme this certifies an ancestor (normally the parent).
    proposer:
        Node id of the proposing replica.
    transactions:
        The batch of client transactions carried by the block.
    """

    block_id: str
    view: int
    parent_id: Optional[str]
    height: int
    qc: Optional[QuorumCertificate]
    proposer: str
    transactions: Tuple[Transaction, ...] = field(default_factory=tuple)

    @property
    def is_genesis(self) -> bool:
        """True only for the bootstrap block shared by every replica."""
        return self.block_id == GENESIS_ID

    @property
    def num_transactions(self) -> int:
        """Number of transactions batched in this block."""
        return len(self.transactions)

    @cached_property
    def payload_bytes(self) -> int:
        """Total extra payload bytes carried by the block's transactions.

        Cached on first access (``transactions`` is immutable): the size
        model consults this on every proposal send, so it must not re-sum
        the batch each time.
        """
        return sum(tx.payload_size for tx in self.transactions)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(id={self.block_id[:10]}, view={self.view}, height={self.height}, "
            f"txs={self.num_transactions}, proposer={self.proposer})"
        )


def compute_block_id(
    view: int,
    parent_id: Optional[str],
    proposer: str,
    transactions: Tuple[Transaction, ...],
) -> str:
    """Compute the hash identifier of a block."""
    tx_digest = digest_strings([tx.txid for tx in transactions])
    return digest_fields("block", view, parent_id, proposer, tx_digest)


def make_block(
    view: int,
    parent: Block,
    qc: Optional[QuorumCertificate],
    proposer: str,
    transactions: Tuple[Transaction, ...],
) -> Block:
    """Construct a block extending ``parent``."""
    block_id = compute_block_id(view, parent.block_id, proposer, transactions)
    return Block(
        block_id=block_id,
        view=view,
        parent_id=parent.block_id,
        height=parent.height + 1,
        qc=qc,
        proposer=proposer,
        transactions=transactions,
    )


def make_genesis() -> Tuple[Block, QuorumCertificate]:
    """Create the genesis block and its bootstrap certificate.

    Every replica starts with the same genesis so the first real proposal
    (view 1) has a parent and an embedded QC.
    """
    genesis = Block(
        block_id=GENESIS_ID,
        view=GENESIS_VIEW,
        parent_id=None,
        height=0,
        qc=None,
        proposer="genesis",
        transactions=(),
    )
    genesis_qc = QuorumCertificate(block_id=GENESIS_ID, view=GENESIS_VIEW, signers=frozenset())
    return genesis, genesis_qc
