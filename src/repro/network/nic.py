"""Bandwidth-limited network interfaces.

Every endpoint owns an egress NIC and an ingress NIC, each a serial FIFO
queue whose service time for a message is ``size_bytes / bandwidth``.  A
leader broadcasting a proposal to N-1 peers therefore serializes N-1 copies
through its egress NIC — which is exactly why leader bandwidth becomes the
bottleneck as block size or cluster size grows, reproducing the saturation
behaviour of the paper's figures.

The queue is *analytic* rather than event-driven: because every submission
to a NIC happens synchronously at a scheduler event (``send()`` for egress,
the arrival event for ingress), the FIFO completion time of a transfer is
simply ``max(now, free_at) + service_time`` — identical to what a
work-conserving single-server queue driven by per-job completion events
would produce, but without burning a heap entry per job on the server's own
bookkeeping.  Callers either take the completion timestamp from
:meth:`NetworkInterface.reserve` and fold it into their own single delivery
event, or use :meth:`NetworkInterface.transfer` which posts the completion
callback directly.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import EventScheduler

DEFAULT_BANDWIDTH_BPS = 125_000_000  # 1 Gbit/s expressed in bytes per second


class NetworkInterface:
    """One direction (egress or ingress) of an endpoint's NIC."""

    __slots__ = (
        "scheduler",
        "name",
        "bandwidth_bps",
        "fixed_overhead",
        "free_at",
        "busy_reserved",
        "bytes_transferred",
        "messages_transferred",
        "_started_at",
    )

    def __init__(
        self,
        scheduler: EventScheduler,
        name: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        fixed_overhead: float = 2e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.scheduler = scheduler
        self.name = name
        self.bandwidth_bps = bandwidth_bps
        self.fixed_overhead = fixed_overhead
        #: Time at which the interface finishes everything reserved so far.
        self.free_at = scheduler.now
        #: Total service time ever reserved (includes the in-flight tail).
        self.busy_reserved = 0.0
        self.bytes_transferred = 0
        self.messages_transferred = 0
        self._started_at = scheduler.now

    def reserve(self, size_bytes: int) -> float:
        """Claim the next FIFO slot for ``size_bytes``; return its completion time."""
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        service_time = self.fixed_overhead + size_bytes / self.bandwidth_bps
        self.bytes_transferred += size_bytes
        self.messages_transferred += 1
        self.busy_reserved += service_time
        now = self.scheduler.now
        free_at = self.free_at
        completion = (free_at if free_at > now else now) + service_time
        self.free_at = completion
        return completion

    def transfer(self, size_bytes: int, on_complete: Callable[..., Any], *args: Any) -> None:
        """Push ``size_bytes`` through the interface, then run ``on_complete(*args)``."""
        completion = self.reserve(size_bytes)
        self.scheduler.post_at(completion, on_complete, *args)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the interface has been busy."""
        now = self.scheduler.now
        elapsed = now - self._started_at
        if elapsed <= 0:
            return 0.0
        # Exclude the portion of the reservation tail that lies in the future.
        pending = self.free_at - now
        busy = self.busy_reserved - (pending if pending > 0 else 0.0)
        return min(1.0, busy / elapsed)
