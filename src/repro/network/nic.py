"""Bandwidth-limited network interfaces.

Every endpoint owns an egress NIC and an ingress NIC, each a serial FIFO
server whose service time for a message is ``size_bytes / bandwidth``.  A
leader broadcasting a proposal to N-1 peers therefore serializes N-1 copies
through its egress NIC — which is exactly why leader bandwidth becomes the
bottleneck as block size or cluster size grows, reproducing the saturation
behaviour of the paper's figures.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.events import EventScheduler
from repro.sim.resources import FifoServer

DEFAULT_BANDWIDTH_BPS = 125_000_000  # 1 Gbit/s expressed in bytes per second


class NetworkInterface:
    """One direction (egress or ingress) of an endpoint's NIC."""

    def __init__(
        self,
        scheduler: EventScheduler,
        name: str,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        fixed_overhead: float = 2e-6,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        self.bandwidth_bps = bandwidth_bps
        self.fixed_overhead = fixed_overhead
        self.server = FifoServer(scheduler, name=name)
        self.bytes_transferred = 0
        self.messages_transferred = 0

    def transfer(self, size_bytes: int, on_complete: Callable[[], None]) -> None:
        """Push ``size_bytes`` through the interface, then call ``on_complete``."""
        if size_bytes < 0:
            raise ValueError(f"negative message size: {size_bytes}")
        service_time = self.fixed_overhead + size_bytes / self.bandwidth_bps
        self.bytes_transferred += size_bytes
        self.messages_transferred += 1
        self.server.submit(service_time, on_complete)

    def utilization(self) -> float:
        """Fraction of elapsed simulated time the interface has been busy."""
        return self.server.utilization()
