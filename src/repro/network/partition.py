"""Network partitions.

A partition makes a set of node pairs mutually unreachable for an interval.
The paper does not evaluate partitions directly (it assumes measurements
after GST), but Bamboo supports simulating them, so the capability is kept:
fault-injection tests use it to check that the pacemaker recovers liveness
once a partition heals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Set


@dataclass
class Partition:
    """Splits the cluster into groups that cannot exchange messages."""

    groups: tuple
    start: float = 0.0
    end: Optional[float] = None
    _membership: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        for index, group in enumerate(self.groups):
            for node in group:
                self._membership[node] = index

    def active(self, now: float) -> bool:
        """True if the partition is in effect at time ``now``."""
        if now < self.start:
            return False
        if self.end is not None and now >= self.end:
            return False
        return True

    def blocks(self, src: str, dst: str, now: float) -> bool:
        """True if a message from ``src`` to ``dst`` must be dropped."""
        if not self.active(now):
            return False
        src_group = self._membership.get(src)
        dst_group = self._membership.get(dst)
        if src_group is None or dst_group is None:
            # Nodes outside every group (e.g. clients) are unaffected.
            return False
        return src_group != dst_group

    @classmethod
    def isolate(cls, nodes: Set[str], isolated: Set[str], start: float = 0.0, end: Optional[float] = None) -> "Partition":
        """Convenience constructor isolating ``isolated`` from the rest."""
        rest: FrozenSet[str] = frozenset(nodes - isolated)
        return cls(groups=(frozenset(isolated), rest), start=start, end=end)
