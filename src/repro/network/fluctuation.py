"""Run-time network fluctuation windows (paper §VI-D).

During the responsiveness experiment the paper manually injects 10 seconds of
network fluctuation in which inter-node delays vary between 10 and 100 ms.
A :class:`FluctuationWindow` describes such an interval; the network adds the
sampled extra delay to every replica-to-replica message sent while the window
is active.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass
class FluctuationWindow:
    """An interval of extra, highly variable network delay."""

    start: float
    end: float
    min_delay: float
    max_delay: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("window end precedes start")
        if self.min_delay < 0 or self.max_delay < self.min_delay:
            raise ValueError("invalid delay range")

    def active(self, now: float) -> bool:
        """True if the window covers simulated time ``now``."""
        return self.start <= now < self.end

    def sample(self, rng: random.Random) -> float:
        """Extra one-way delay to add while the window is active."""
        return rng.uniform(self.min_delay, self.max_delay)
