"""Simulated message-passing network.

This package replaces Bamboo's TCP/Go-channel transport with a simulated
transport built on the discrete-event scheduler.  It models the two
network-related quantities of the paper's performance model:

* **propagation delay** between machines — normally distributed, with
  optional additional delay (the ``delay`` configuration parameter),
  run-time fluctuation windows, per-node slow-downs, and partitions;
* **NIC serialization delay** — every byte sent passes through the sender's
  and the receiver's NIC, each modelled as a bandwidth-limited FIFO server
  (the ``2·m/b`` term).
"""

from repro.network.delays import (
    DELAY_MODELS,
    CompositeDelay,
    DelayModel,
    FixedDelay,
    NormalDelay,
    NoDelay,
    UniformDelay,
    available_delay_models,
    make_delay_model,
    register_delay_model,
)
from repro.network.fluctuation import FluctuationWindow
from repro.network.network import Network, NetworkStats
from repro.network.nic import NetworkInterface
from repro.network.partition import Partition

__all__ = [
    "DELAY_MODELS",
    "CompositeDelay",
    "DelayModel",
    "FixedDelay",
    "FluctuationWindow",
    "Network",
    "NetworkInterface",
    "NetworkStats",
    "NoDelay",
    "NormalDelay",
    "Partition",
    "UniformDelay",
    "available_delay_models",
    "make_delay_model",
    "register_delay_model",
]
