"""The simulated network connecting replicas and clients.

Message path (mirroring the paper's delay decomposition)::

    sender NIC  ->  propagation delay  ->  receiver NIC  ->  deliver()

The propagation delay is ``base_delay + extra_delay (+ fluctuation)`` where
``base_delay`` models the data-center LAN and ``extra_delay`` is the
configurable ``delay`` parameter of Table I.  Per-node slow-downs (the "slow"
run-time command) and partitions are applied before a message is accepted.

Two delivery pipelines implement the same model:

* The **fast path** runs whenever no fault condition is installed (no
  partitions, fluctuation windows, slow factors, or crashed nodes).  It
  reserves the egress NIC analytically, samples the propagation delay at
  send time, and posts a single arrival entry per destination; the arrival
  reserves the ingress NIC and posts the delivery.  Two handle-free heap
  tuples per message, no closures.
* The **fault path** keeps the full event chain (egress completion →
  propagate → arrive → deliver) so fluctuation windows and slow factors are
  evaluated at the moment the message leaves the sender's NIC, exactly as
  before.

Both paths draw base/extra delay samples from the same ``"network"``
stream; the fast path draws them at send time (the draw order is the send
order), the fault path at egress completion as before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.network.delays import DelayModel, NoDelay, NormalDelay
from repro.network.fluctuation import FluctuationWindow
from repro.network.nic import DEFAULT_BANDWIDTH_BPS, NetworkInterface
from repro.network.partition import Partition
from repro.obs import trace as obs_trace
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.types.messages import Message

DeliveryHandler = Callable[[Message], None]

# A LAN round-trip below one millisecond, as in the paper's testbed
# ("inter-VM latency below 1ms"): one-way mean 0.25 ms, stddev 0.05 ms.
DEFAULT_LAN_DELAY = NormalDelay(mean_delay=0.25e-3, stddev=0.05e-3)


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one simulation run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    per_type_counts: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        kind = message.__class__.__name__
        counts = self.per_type_counts
        counts[kind] = counts.get(kind, 0) + 1


class Network:
    """Connects named endpoints and moves messages between them."""

    def __init__(
        self,
        scheduler: EventScheduler,
        streams: RandomStreams,
        base_delay: Optional[DelayModel] = None,
        extra_delay: Optional[DelayModel] = None,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        local_delivery_delay: float = 5e-6,
    ) -> None:
        self.scheduler = scheduler
        self.streams = streams
        self.base_delay = base_delay if base_delay is not None else DEFAULT_LAN_DELAY
        self.extra_delay = extra_delay if extra_delay is not None else NoDelay()
        self.bandwidth_bps = bandwidth_bps
        self.local_delivery_delay = local_delivery_delay
        self.stats = NetworkStats()
        # Observability (repro.obs): set by the cluster builder when a tracer
        # is installed; None keeps every hot-path hook a single-if no-op.
        self.tracer = None

        self._rng = streams.get("network")
        self._handlers: Dict[str, DeliveryHandler] = {}
        self._egress: Dict[str, NetworkInterface] = {}
        self._ingress: Dict[str, NetworkInterface] = {}
        self._slow_factor: Dict[str, float] = {}
        self._fluctuations: List[FluctuationWindow] = []
        self._partitions: List[Partition] = []
        self._crashed: set[str] = set()
        # Per-network message-id counter: ids are stamped on first send so
        # repeated runs in one process assign identical ids (no process-global
        # state leaks across runs).
        self._message_seq = 0

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, node_id: str, handler: DeliveryHandler) -> None:
        """Attach an endpoint; ``handler`` receives its delivered messages."""
        if node_id in self._handlers:
            raise ValueError(f"endpoint {node_id!r} is already registered")
        self._handlers[node_id] = handler
        self._egress[node_id] = NetworkInterface(
            self.scheduler, name=f"{node_id}.egress", bandwidth_bps=self.bandwidth_bps
        )
        self._ingress[node_id] = NetworkInterface(
            self.scheduler, name=f"{node_id}.ingress", bandwidth_bps=self.bandwidth_bps
        )

    def endpoints(self) -> List[str]:
        """All registered endpoint ids."""
        return sorted(self._handlers)

    def egress_nic(self, node_id: str) -> NetworkInterface:
        """The egress interface of ``node_id`` (for utilization reporting)."""
        return self._egress[node_id]

    def ingress_nic(self, node_id: str) -> NetworkInterface:
        """The ingress interface of ``node_id``."""
        return self._ingress[node_id]

    # ------------------------------------------------------------------
    # fault / condition injection
    # ------------------------------------------------------------------
    def set_slow(self, node_id: str, factor: float) -> None:
        """Multiply propagation delays to and from ``node_id`` (run-time "slow")."""
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1, got {factor}")
        self._slow_factor[node_id] = factor

    def clear_slow(self, node_id: str) -> None:
        """Remove a previously configured slow-down."""
        self._slow_factor.pop(node_id, None)

    def add_fluctuation(self, window: FluctuationWindow) -> None:
        """Install a fluctuation window (extra random delay while active)."""
        self._fluctuations.append(window)

    def add_partition(self, partition: Partition) -> None:
        """Install a partition (messages across groups are dropped)."""
        self._partitions.append(partition)

    def heal_partitions(self, now: Optional[float] = None) -> int:
        """Close every partition active at ``now`` (default: current time).

        Returns the number of partitions healed.  Healed partitions are
        pruned from the scan list (along with any that already expired), so
        subsequent sends stop consulting them.
        """
        if now is None:
            now = self.scheduler.now
        healed = 0
        for partition in self._partitions:
            if partition.active(now):
                partition.end = now
                healed += 1
        self._prune_expired(now)
        return healed

    def _prune_expired(self, now: float) -> None:
        """Drop partitions and fluctuation windows that can never act again.

        Both lists are scanned on every fault-path send, so long fuzz
        campaigns would otherwise pay O(total fault history) per message.
        Pruning also re-arms the fast path once every fault has expired.
        """
        partitions = self._partitions
        if partitions:
            live = [p for p in partitions if p.end is None or now < p.end]
            if len(live) != len(partitions):
                self._partitions = live
        fluctuations = self._fluctuations
        if fluctuations:
            live_windows = [w for w in fluctuations if now < w.end]
            if len(live_windows) != len(fluctuations):
                self._fluctuations = live_windows

    def crash(self, node_id: str) -> None:
        """Crash an endpoint: all traffic to and from it is dropped."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        """Recover a crashed endpoint."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        """True if ``node_id`` has been crashed via :meth:`crash`."""
        return node_id in self._crashed

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` through NICs and the wire."""
        handlers = self._handlers
        if src not in handlers:
            raise KeyError(f"unknown sender {src!r}")
        if dst not in handlers:
            raise KeyError(f"unknown destination {dst!r}")
        stats = self.stats
        stats.messages_sent += 1
        stats.bytes_sent += message.size_bytes
        counts = stats.per_type_counts
        kind = message.__class__.__name__
        counts[kind] = counts.get(kind, 0) + 1
        if message.message_id < 0:
            self._message_seq += 1
            message.message_id = self._message_seq
        if self._partitions or self._fluctuations or self._slow_factor or self._crashed:
            self._send_faulty(src, dst, message)
            return
        if src == dst:
            # Loopback skips the NICs; a replica talking to itself (e.g. the
            # leader "sending" its own vote) costs only a context switch.
            self.scheduler.post_after(self.local_delivery_delay, self._deliver, dst, message)
            return
        rng = self._rng
        delay = self.base_delay.sample(rng)
        extra = self.extra_delay
        if type(extra) is not NoDelay:
            delay += extra.sample(rng)
        # Egress reservation inlined from NetworkInterface.reserve — this is
        # the single busiest line in the simulator (one per unicast message).
        egress = self._egress[src]
        size = message.size_bytes
        service_time = egress.fixed_overhead + size / egress.bandwidth_bps
        egress.bytes_transferred += size
        egress.messages_transferred += 1
        egress.busy_reserved += service_time
        free_at = egress.free_at
        now = self.scheduler.now
        completion = (free_at if free_at > now else now) + service_time
        egress.free_at = completion
        tr = self.tracer
        if tr is not None:
            # Hop delay as experienced on the wire: egress serialization
            # (including queueing behind earlier copies) plus propagation.
            tr.metrics.observe(src, "hop_delay", (completion - now) + delay)
        self.scheduler.post_at(completion + delay, self._arrive_fast, dst, message)

    def broadcast(self, src: str, targets: List[str], message: Message, include_self: bool = False) -> None:
        """Send ``message`` to every node in ``targets`` (and optionally ``src``).

        On the fault-free path the whole batch is processed in one pass: the
        egress NIC is reserved once per destination (the copies still
        serialize) and each destination gets a single arrival entry, with
        delay samples drawn in destination order — byte-identical delivery
        timestamps to looping :meth:`send`, at a fraction of the per-message
        bookkeeping.  Any installed fault condition falls back to the full
        per-message pipeline.
        """
        if self._partitions or self._fluctuations or self._slow_factor or self._crashed:
            for dst in targets:
                if dst == src and not include_self:
                    continue
                self.send(src, dst, message)
            if include_self and src not in targets:
                self.send(src, src, message)
            return
        handlers = self._handlers
        if src not in handlers:
            raise KeyError(f"unknown sender {src!r}")
        if message.message_id < 0:
            self._message_seq += 1
            message.message_id = self._message_seq
        egress = self._egress[src]
        rng = self._rng
        base_sample = self.base_delay.sample
        extra = self.extra_delay
        extra_sample = None if type(extra) is NoDelay else extra.sample
        post_at = self.scheduler.post_at
        size = message.size_bytes
        arrive = self._arrive_fast
        tr = self.tracer
        sent_self = False
        fanout = 0
        wire = 0
        # Batched egress reservation: the copies still serialize behind one
        # another (free_at advances by one service time per copy, exactly as
        # NetworkInterface.reserve would), but the NIC's counters are settled
        # once per fanout instead of once per copy.
        service_time = egress.fixed_overhead + size / egress.bandwidth_bps
        free_at = egress.free_at
        now = self.scheduler.now
        if free_at < now:
            free_at = now
        for dst in targets:
            if dst == src:
                if not include_self:
                    continue
                sent_self = True
                fanout += 1
                self.scheduler.post_after(self.local_delivery_delay, self._deliver, dst, message)
                continue
            if dst not in handlers:
                raise KeyError(f"unknown destination {dst!r}")
            fanout += 1
            wire += 1
            delay = base_sample(rng)
            if extra_sample is not None:
                delay += extra_sample(rng)
            free_at += service_time
            if tr is not None:
                tr.metrics.observe(src, "hop_delay", (free_at - now) + delay)
            post_at(free_at + delay, arrive, dst, message)
        if wire:
            egress.free_at = free_at
            egress.busy_reserved += wire * service_time
            egress.bytes_transferred += wire * size
            egress.messages_transferred += wire
        if include_self and not sent_self:
            fanout += 1
            self.scheduler.post_after(self.local_delivery_delay, self._deliver, src, message)
        stats = self.stats
        stats.messages_sent += fanout
        stats.bytes_sent += fanout * size
        counts = stats.per_type_counts
        kind = message.__class__.__name__
        counts[kind] = counts.get(kind, 0) + fanout

    # ------------------------------------------------------------------
    # fast-path pipeline (no faults installed when the message was sent)
    # ------------------------------------------------------------------
    def _arrive_fast(self, dst: str, message: Message) -> None:
        if dst in self._crashed:
            # The destination crashed while the message was on the wire.
            self.stats.messages_dropped += 1
            self._trace_drop(dst, message, "crashed-dst")
            return
        # transfer() inlined (reserve + post): one fewer call per arrival.
        ingress = self._ingress[dst]
        self.scheduler.post_at(
            ingress.reserve(message.size_bytes), self._deliver, dst, message
        )

    # ------------------------------------------------------------------
    # fault-path pipeline (full event chain, conditions evaluated en route)
    # ------------------------------------------------------------------
    def _send_faulty(self, src: str, dst: str, message: Message) -> None:
        now = self.scheduler.now
        self._prune_expired(now)
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            self._trace_drop(dst, message, "crashed")
            return
        for partition in self._partitions:
            if partition.blocks(src, dst, now):
                self.stats.messages_dropped += 1
                self._trace_drop(dst, message, "partitioned")
                return
        if src == dst:
            self.scheduler.post_after(self.local_delivery_delay, self._deliver, dst, message)
            return
        self._egress[src].transfer(message.size_bytes, self._propagate, src, dst, message)

    def _propagate(self, src: str, dst: str, message: Message) -> None:
        rng = self._rng
        delay = self.base_delay.sample(rng) + self.extra_delay.sample(rng)
        now = self.scheduler.now
        for window in self._fluctuations:
            if window.active(now):
                delay += window.sample(rng)
        slow = self._slow_factor
        if slow:
            factor = max(slow.get(src, 1.0), slow.get(dst, 1.0))
            delay *= factor
        self.scheduler.post_after(delay, self._arrive, src, dst, message)

    def _arrive(self, src: str, dst: str, message: Message) -> None:
        if dst in self._crashed or src in self._crashed:
            self.stats.messages_dropped += 1
            self._trace_drop(dst, message, "crashed")
            return
        self._ingress[dst].transfer(message.size_bytes, self._deliver, dst, message)

    def _deliver(self, dst: str, message: Message) -> None:
        if dst in self._crashed:
            self.stats.messages_dropped += 1
            self._trace_drop(dst, message, "crashed-dst")
            return
        self.stats.messages_delivered += 1
        self._handlers[dst](message)

    def _trace_drop(self, dst: str, message: Message, reason: str) -> None:
        tr = self.tracer
        if tr is not None:
            tr.emit(
                self.scheduler.now, dst, obs_trace.NET, "drop", 0,
                {"message": message.__class__.__name__, "reason": reason},
            )
