"""The simulated network connecting replicas and clients.

Message path (mirroring the paper's delay decomposition)::

    sender NIC  ->  propagation delay  ->  receiver NIC  ->  deliver()

The propagation delay is ``base_delay + extra_delay (+ fluctuation)`` where
``base_delay`` models the data-center LAN and ``extra_delay`` is the
configurable ``delay`` parameter of Table I.  Per-node slow-downs (the "slow"
run-time command) and partitions are applied before a message is accepted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.network.delays import DelayModel, NoDelay, NormalDelay
from repro.network.fluctuation import FluctuationWindow
from repro.network.nic import DEFAULT_BANDWIDTH_BPS, NetworkInterface
from repro.network.partition import Partition
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.types.messages import Message

DeliveryHandler = Callable[[Message], None]

# A LAN round-trip below one millisecond, as in the paper's testbed
# ("inter-VM latency below 1ms"): one-way mean 0.25 ms, stddev 0.05 ms.
DEFAULT_LAN_DELAY = NormalDelay(mean_delay=0.25e-3, stddev=0.05e-3)


@dataclass
class NetworkStats:
    """Aggregate traffic counters for one simulation run."""

    messages_sent: int = 0
    messages_delivered: int = 0
    messages_dropped: int = 0
    bytes_sent: int = 0
    per_type_counts: Dict[str, int] = field(default_factory=dict)

    def record_send(self, message: Message) -> None:
        self.messages_sent += 1
        self.bytes_sent += message.size_bytes
        kind = type(message).__name__
        self.per_type_counts[kind] = self.per_type_counts.get(kind, 0) + 1


class Network:
    """Connects named endpoints and moves messages between them."""

    def __init__(
        self,
        scheduler: EventScheduler,
        streams: RandomStreams,
        base_delay: Optional[DelayModel] = None,
        extra_delay: Optional[DelayModel] = None,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        local_delivery_delay: float = 5e-6,
    ) -> None:
        self.scheduler = scheduler
        self.streams = streams
        self.base_delay = base_delay if base_delay is not None else DEFAULT_LAN_DELAY
        self.extra_delay = extra_delay if extra_delay is not None else NoDelay()
        self.bandwidth_bps = bandwidth_bps
        self.local_delivery_delay = local_delivery_delay
        self.stats = NetworkStats()

        self._handlers: Dict[str, DeliveryHandler] = {}
        self._egress: Dict[str, NetworkInterface] = {}
        self._ingress: Dict[str, NetworkInterface] = {}
        self._slow_factor: Dict[str, float] = {}
        self._fluctuations: List[FluctuationWindow] = []
        self._partitions: List[Partition] = []
        self._crashed: set[str] = set()

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def register(self, node_id: str, handler: DeliveryHandler) -> None:
        """Attach an endpoint; ``handler`` receives its delivered messages."""
        if node_id in self._handlers:
            raise ValueError(f"endpoint {node_id!r} is already registered")
        self._handlers[node_id] = handler
        self._egress[node_id] = NetworkInterface(
            self.scheduler, name=f"{node_id}.egress", bandwidth_bps=self.bandwidth_bps
        )
        self._ingress[node_id] = NetworkInterface(
            self.scheduler, name=f"{node_id}.ingress", bandwidth_bps=self.bandwidth_bps
        )

    def endpoints(self) -> List[str]:
        """All registered endpoint ids."""
        return sorted(self._handlers)

    def egress_nic(self, node_id: str) -> NetworkInterface:
        """The egress interface of ``node_id`` (for utilization reporting)."""
        return self._egress[node_id]

    def ingress_nic(self, node_id: str) -> NetworkInterface:
        """The ingress interface of ``node_id``."""
        return self._ingress[node_id]

    # ------------------------------------------------------------------
    # fault / condition injection
    # ------------------------------------------------------------------
    def set_slow(self, node_id: str, factor: float) -> None:
        """Multiply propagation delays to and from ``node_id`` (run-time "slow")."""
        if factor < 1.0:
            raise ValueError(f"slow factor must be >= 1, got {factor}")
        self._slow_factor[node_id] = factor

    def clear_slow(self, node_id: str) -> None:
        """Remove a previously configured slow-down."""
        self._slow_factor.pop(node_id, None)

    def add_fluctuation(self, window: FluctuationWindow) -> None:
        """Install a fluctuation window (extra random delay while active)."""
        self._fluctuations.append(window)

    def add_partition(self, partition: Partition) -> None:
        """Install a partition (messages across groups are dropped)."""
        self._partitions.append(partition)

    def heal_partitions(self, now: Optional[float] = None) -> int:
        """Close every partition active at ``now`` (default: current time).

        Returns the number of partitions healed.
        """
        if now is None:
            now = self.scheduler.now
        healed = 0
        for partition in self._partitions:
            if partition.active(now):
                partition.end = now
                healed += 1
        return healed

    def crash(self, node_id: str) -> None:
        """Crash an endpoint: all traffic to and from it is dropped."""
        self._crashed.add(node_id)

    def recover(self, node_id: str) -> None:
        """Recover a crashed endpoint."""
        self._crashed.discard(node_id)

    def is_crashed(self, node_id: str) -> bool:
        """True if ``node_id`` has been crashed via :meth:`crash`."""
        return node_id in self._crashed

    # ------------------------------------------------------------------
    # sending
    # ------------------------------------------------------------------
    def send(self, src: str, dst: str, message: Message) -> None:
        """Send ``message`` from ``src`` to ``dst`` through NICs and the wire."""
        if src not in self._handlers:
            raise KeyError(f"unknown sender {src!r}")
        if dst not in self._handlers:
            raise KeyError(f"unknown destination {dst!r}")
        self.stats.record_send(message)
        if src in self._crashed or dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        now = self.scheduler.now
        for partition in self._partitions:
            if partition.blocks(src, dst, now):
                self.stats.messages_dropped += 1
                return
        if src == dst:
            # Loopback skips the NICs; a replica talking to itself (e.g. the
            # leader "sending" its own vote) costs only a context switch.
            self.scheduler.call_after(self.local_delivery_delay, self._deliver, dst, message)
            return
        self._egress[src].transfer(
            message.size_bytes, lambda: self._propagate(src, dst, message)
        )

    def broadcast(self, src: str, targets: List[str], message: Message, include_self: bool = False) -> None:
        """Send ``message`` to every node in ``targets`` (and optionally ``src``)."""
        for dst in targets:
            if dst == src and not include_self:
                continue
            self.send(src, dst, message)
        if include_self and src not in targets:
            self.send(src, src, message)

    # ------------------------------------------------------------------
    # internal pipeline stages
    # ------------------------------------------------------------------
    def _propagate(self, src: str, dst: str, message: Message) -> None:
        rng = self.streams.get("network")
        delay = self.base_delay.sample(rng) + self.extra_delay.sample(rng)
        now = self.scheduler.now
        for window in self._fluctuations:
            if window.active(now):
                delay += window.sample(rng)
        factor = max(self._slow_factor.get(src, 1.0), self._slow_factor.get(dst, 1.0))
        delay *= factor
        self.scheduler.call_after(delay, self._arrive, src, dst, message)

    def _arrive(self, src: str, dst: str, message: Message) -> None:
        if dst in self._crashed or src in self._crashed:
            self.stats.messages_dropped += 1
            return
        self._ingress[dst].transfer(message.size_bytes, lambda: self._deliver(dst, message))

    def _deliver(self, dst: str, message: Message) -> None:
        if dst in self._crashed:
            self.stats.messages_dropped += 1
            return
        self.stats.messages_delivered += 1
        self._handlers[dst](message)
