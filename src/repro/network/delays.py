"""One-way propagation delay models.

The paper assumes the round-trip time between any two machines follows a
normal distribution N(µ, σ); one-way delays here are therefore modelled as
N(µ/2, σ/2) by the caller's choice of parameters.  Additional configured
delay (the ``delay`` knob of Table I, e.g. "5ms ± 1ms") composes additively.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence


class DelayModel(ABC):
    """Samples a one-way propagation delay in seconds."""

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay sample."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value of the delay (used by the analytical model)."""


@dataclass
class NoDelay(DelayModel):
    """Zero propagation delay (useful for unit tests)."""

    def sample(self, rng: random.Random) -> float:
        return 0.0

    def mean(self) -> float:
        return 0.0


@dataclass
class FixedDelay(DelayModel):
    """A constant delay."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative delay: {self.delay}")

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay


@dataclass
class NormalDelay(DelayModel):
    """Normally distributed delay, truncated at a floor (default 0)."""

    mean_delay: float
    stddev: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_delay < 0 or self.stddev < 0:
            raise ValueError("mean and stddev must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.gauss(self.mean_delay, self.stddev))

    def mean(self) -> float:
        return self.mean_delay


@dataclass
class UniformDelay(DelayModel):
    """Uniformly distributed delay in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid range [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


class CompositeDelay(DelayModel):
    """Sum of several delay models (base LAN delay + configured extra delay)."""

    def __init__(self, components: Sequence[DelayModel]) -> None:
        if not components:
            raise ValueError("CompositeDelay needs at least one component")
        self.components = list(components)

    def sample(self, rng: random.Random) -> float:
        return sum(component.sample(rng) for component in self.components)

    def mean(self) -> float:
        return sum(component.mean() for component in self.components)
