"""One-way propagation delay models.

The paper assumes the round-trip time between any two machines follows a
normal distribution N(µ, σ); one-way delays here are therefore modelled as
N(µ/2, σ/2) by the caller's choice of parameters.  Additional configured
delay (the ``delay`` knob of Table I, e.g. "5ms ± 1ms") composes additively.

Delay models are an extension point: subclass :class:`DelayModel` and
register with :func:`register_delay_model`; :func:`make_delay_model` then
builds instances from JSON-style specs like ``{"kind": "normal",
"mean_delay": 5e-3, "stddev": 1e-3}``, which is how scenario events describe
delay changes declaratively.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Type, Union

from repro.plugins import Registry

#: The delay-model extension point.
DELAY_MODELS: Registry[Type["DelayModel"]] = Registry("delay model")


def register_delay_model(name: str, *aliases: str, override: bool = False) -> Callable:
    """Class decorator registering a DelayModel subclass."""
    return DELAY_MODELS.register(name, *aliases, override=override)


def available_delay_models() -> List[str]:
    """Canonical names of the registered delay models."""
    return DELAY_MODELS.available()


class DelayModel(ABC):
    """Samples a one-way propagation delay in seconds."""

    @classmethod
    def from_spec(cls, **params) -> "DelayModel":
        """Build an instance from the non-``kind`` keys of a JSON spec."""
        return cls(**params)

    @abstractmethod
    def sample(self, rng: random.Random) -> float:
        """Draw one delay sample."""

    @abstractmethod
    def mean(self) -> float:
        """Expected value of the delay (used by the analytical model)."""


def make_delay_model(spec: Union["DelayModel", str, Dict, None]) -> "DelayModel":
    """Build a delay model from a spec.

    Accepts an existing model (returned unchanged), a registered name
    (built with no arguments, e.g. ``"none"``), or a JSON-style dict whose
    ``kind`` key names the model and whose remaining keys are constructor
    arguments.
    """
    if spec is None:
        return NoDelay()
    if isinstance(spec, DelayModel):
        return spec
    if isinstance(spec, str):
        return DELAY_MODELS.get(spec).from_spec()
    params = dict(spec)
    kind = params.pop("kind", None)
    if kind is None:
        raise ValueError(f"delay model spec needs a 'kind' key: {spec!r}")
    return DELAY_MODELS.get(kind).from_spec(**params)


@register_delay_model("none", "no", "zero")
@dataclass
class NoDelay(DelayModel):
    """Zero propagation delay (useful for unit tests)."""

    def sample(self, rng: random.Random) -> float:
        return 0.0

    def mean(self) -> float:
        return 0.0


@register_delay_model("fixed", "constant")
@dataclass
class FixedDelay(DelayModel):
    """A constant delay."""

    delay: float

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise ValueError(f"negative delay: {self.delay}")

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay


@register_delay_model("normal", "gauss", "gaussian")
@dataclass
class NormalDelay(DelayModel):
    """Normally distributed delay, truncated at a floor (default 0)."""

    mean_delay: float
    stddev: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.mean_delay < 0 or self.stddev < 0:
            raise ValueError("mean and stddev must be non-negative")

    def sample(self, rng: random.Random) -> float:
        return max(self.floor, rng.gauss(self.mean_delay, self.stddev))

    def mean(self) -> float:
        return self.mean_delay


@register_delay_model("uniform")
@dataclass
class UniformDelay(DelayModel):
    """Uniformly distributed delay in ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ValueError(f"invalid range [{self.low}, {self.high}]")

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0


@register_delay_model("composite", "sum")
class CompositeDelay(DelayModel):
    """Sum of several delay models (base LAN delay + configured extra delay)."""

    @classmethod
    def from_spec(cls, **params) -> "CompositeDelay":
        return cls([make_delay_model(c) for c in params.get("components", [])])

    def __init__(self, components: Sequence[DelayModel]) -> None:
        if not components:
            raise ValueError("CompositeDelay needs at least one component")
        self.components = list(components)

    def sample(self, rng: random.Random) -> float:
        return sum(component.sample(rng) for component in self.components)

    def mean(self) -> float:
        return sum(component.mean() for component in self.components)
