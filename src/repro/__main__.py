"""``python -m repro`` — the campaign/experiment command line."""

from repro.experiments.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
