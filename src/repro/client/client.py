"""Clients issuing transactions to the replicated service.

Two client models are provided, matching the two ways the paper drives load:

* :class:`ClosedLoopClient` keeps a fixed number of requests outstanding
  (Table I's ``concurrency``); the benchmark saturates the system by raising
  the concurrency level, exactly as §VI does.
* :class:`PoissonClient` issues requests as an open-loop Poisson process with
  a configurable rate, which is the arrival model assumed by the analytical
  queuing model (§V) and is used for the model-validation experiment and
  Table II.

Clients pick a uniformly random replica per request, measure latency from
submission to the committed reply, and report it to the metrics collector.

Client types are an extension point: subclass :class:`ClientBase`, override
``from_config`` to pull whatever knobs you need from the
:class:`~repro.bench.config.Configuration`, and register with
:func:`register_client`; ``Configuration(client="yourkind")`` then selects
it in every runner.  The default (``client="auto"``) picks Poisson when
``arrival_rate > 0`` and closed-loop otherwise, matching the two ways the
paper drives load.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Type

from repro.network.network import Network
from repro.obs import trace as obs_trace
from repro.plugins import Registry
from repro.sim.events import EventScheduler
from repro.sim.random import RandomStreams
from repro.types.messages import ClientReply, ClientRequest, Message
from repro.types.sizes import SizeModel
from repro.types.transaction import Transaction
from repro.client.workload import WorkloadSpec

#: Backoff before re-submitting a request that was rejected by a full mempool.
REJECTION_BACKOFF = 2e-3

#: The client-type extension point.  Values are ClientBase subclasses built
#: via their ``from_config`` classmethod.
CLIENTS: Registry[Type["ClientBase"]] = Registry("client type")


def register_client(name: str, *aliases: str, override: bool = False) -> Callable:
    """Class decorator registering a ClientBase subclass as a client type."""
    return CLIENTS.register(name, *aliases, override=override)


def available_clients() -> List[str]:
    """Canonical names of the registered client types."""
    return CLIENTS.available()


class ClientBase:
    """Shared plumbing for the two client models."""

    def __init__(
        self,
        client_id: str,
        scheduler: EventScheduler,
        network: Network,
        streams: RandomStreams,
        replicas: List[str],
        workload: Optional[WorkloadSpec] = None,
        size_model: Optional[SizeModel] = None,
        metrics=None,
        request_timeout: float = 1.0,
    ) -> None:
        if not replicas:
            raise ValueError("client needs at least one replica to talk to")
        if request_timeout <= 0:
            raise ValueError(f"request_timeout must be positive, got {request_timeout}")
        self.client_id = client_id
        self.scheduler = scheduler
        self.network = network
        self.streams = streams
        self.replicas = list(replicas)
        self.workload = workload if workload is not None else WorkloadSpec()
        self.size_model = size_model if size_model is not None else SizeModel()
        self.metrics = metrics
        self.request_timeout = request_timeout
        # Observability (repro.obs): set by the cluster builder when a tracer
        # is installed.
        self.tracer = None

        # The per-client stream is fixed for the client's lifetime; cache it
        # instead of re-resolving the name on every request.
        self._rng = streams.get(f"client:{self.client_id}")
        self._outstanding: Dict[str, float] = {}
        self._stop_time: Optional[float] = None
        self.requests_sent = 0
        self.replies_committed = 0
        self.replies_rejected = 0
        self.requests_timed_out = 0

        network.register(client_id, self.deliver)

    # ------------------------------------------------------------------
    # construction from a Configuration (registry hook)
    # ------------------------------------------------------------------
    @classmethod
    def from_config(
        cls,
        client_id: str,
        scheduler: EventScheduler,
        network: Network,
        streams: RandomStreams,
        replicas: List[str],
        *,
        workload: WorkloadSpec,
        size_model: SizeModel,
        metrics,
        config,
        **extra,
    ) -> "ClientBase":
        """Build a client from a :class:`Configuration`.

        Subclasses extend ``extra`` with their own knobs (concurrency, rate);
        this is what lets the runner treat every registered client type
        uniformly.
        """
        return cls(
            client_id,
            scheduler,
            network,
            streams,
            replicas,
            workload=workload,
            size_model=size_model,
            metrics=metrics,
            request_timeout=config.request_timeout,
            **extra,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self, stop_time: Optional[float] = None) -> None:
        """Begin issuing requests; subclasses define the arrival pattern."""
        self._stop_time = stop_time
        self._begin()

    def _begin(self) -> None:
        raise NotImplementedError

    def _issuing_allowed(self) -> bool:
        if self._stop_time is None:
            return True
        return self.scheduler.now < self._stop_time

    # ------------------------------------------------------------------
    # request submission and reply handling
    # ------------------------------------------------------------------
    def _submit_request(self) -> Optional[str]:
        now = self.scheduler.now
        stop = self._stop_time
        if stop is not None and now >= stop:
            return None
        rng = self._rng
        operation = self.workload.operation_for(rng.random())
        transaction = Transaction.create(
            client_id=self.client_id,
            created_at=now,
            payload_size=self.workload.payload_size,
            operation=operation,
            key=f"k{rng.randrange(self.workload.key_space)}",
            value=f"v{self.requests_sent}",
            # Per-client sequence: txids (and thus chain hashes) are
            # deterministic across repeated runs in one process, which the
            # fuzzer's same-seed fingerprint comparison relies on.
            sequence=self.requests_sent,
        )
        replica = rng.choice(self.replicas)
        request = ClientRequest(
            sender=self.client_id,
            size_bytes=self.size_model.client_request_size(transaction.payload_size),
            transaction=transaction,
        )
        self._outstanding[transaction.txid] = now
        # Handle-free timeout: cheaper than allocating a cancellable Event per
        # request.  A reply does not cancel anything — the post fires later and
        # finds the txid gone from _outstanding, which makes it a no-op.
        self.scheduler.post_after(self.request_timeout, self._expire, transaction.txid)
        self.requests_sent += 1
        self.network.send(self.client_id, replica, request)
        return transaction.txid

    def _expire(self, txid: str) -> None:
        """Give up on a request that received no reply within the timeout.

        The transaction may still commit later (it is not withdrawn from the
        replicas), but the client stops waiting for it — as a real benchmark
        client with an HTTP timeout would — and the closed-loop subclass
        issues a replacement request to another randomly chosen replica.
        """
        if self._outstanding.pop(txid, None) is None:
            # Already replied (or already expired): the timeout post for a
            # finished request is deliberately left to fire as a no-op.
            return
        self.requests_timed_out += 1
        if self.metrics is not None:
            self.metrics.record_timeout(txid, self.scheduler.now)
        self._on_timed_out(txid)

    def _on_timed_out(self, txid: str) -> None:
        """Hook for subclasses (closed-loop clients issue a replacement)."""

    def deliver(self, message: Message) -> None:
        """Network delivery callback for replies."""
        if message.__class__ is not ClientReply and not isinstance(message, ClientReply):
            return
        sent_at = self._outstanding.pop(message.txid, None)
        if sent_at is None:
            # Duplicate reply, or a reply for a request the client already
            # gave up on; ignore.
            return
        if message.status == "committed":
            self.replies_committed += 1
            latency = self.scheduler.now - sent_at
            if self.metrics is not None:
                self.metrics.record_latency(message.txid, latency, self.scheduler.now)
            tr = self.tracer
            if tr is not None:
                tr.metrics.observe(self.client_id, "request_to_commit", latency)
                tr.emit(
                    self.scheduler.now, self.client_id, obs_trace.CLIENT,
                    "commit-reply", 0,
                    {"replica": message.replica, "latency": latency},
                )
            self._on_committed(message.txid, latency)
        else:
            self.replies_rejected += 1
            if self.metrics is not None:
                self.metrics.record_rejection(message.txid, self.scheduler.now)
            self._on_rejected(message.txid)

    def _on_committed(self, txid: str, latency: float) -> None:
        """Hook for subclasses (closed-loop clients issue the next request)."""

    def _on_rejected(self, txid: str) -> None:
        """Hook for subclasses (closed-loop clients retry after a backoff)."""


@register_client("closed-loop", "closed")
class ClosedLoopClient(ClientBase):
    """Keeps ``concurrency`` requests outstanding at all times."""

    def __init__(self, *args, concurrency: int = 10, **kwargs) -> None:
        if concurrency <= 0:
            raise ValueError(f"concurrency must be positive, got {concurrency}")
        super().__init__(*args, **kwargs)
        self.concurrency = concurrency

    @classmethod
    def from_config(cls, client_id, scheduler, network, streams, replicas, *, config, **kwargs):
        return super().from_config(
            client_id, scheduler, network, streams, replicas,
            config=config, concurrency=config.concurrency, **kwargs,
        )

    def _begin(self) -> None:
        for _ in range(self.concurrency):
            self._submit_request()

    def _on_committed(self, txid: str, latency: float) -> None:
        self._submit_request()

    def _on_rejected(self, txid: str) -> None:
        if self._issuing_allowed():
            self.scheduler.call_after(REJECTION_BACKOFF, self._submit_request)

    def _on_timed_out(self, txid: str) -> None:
        self._submit_request()


@register_client("poisson", "open-loop", "open")
class PoissonClient(ClientBase):
    """Open-loop client issuing requests as a Poisson process."""

    def __init__(self, *args, rate: float = 100.0, **kwargs) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        super().__init__(*args, **kwargs)
        self.rate = rate

    @classmethod
    def from_config(cls, client_id, scheduler, network, streams, replicas, *, config, **kwargs):
        # The configured arrival rate is the total across all clients.
        return super().from_config(
            client_id, scheduler, network, streams, replicas,
            config=config, rate=config.arrival_rate / config.num_clients, **kwargs,
        )

    def _begin(self) -> None:
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        if not self._issuing_allowed():
            return
        gap = self.streams.exponential(f"arrivals:{self.client_id}", self.rate)
        self.scheduler.call_after(gap, self._arrive)

    def _arrive(self) -> None:
        if not self._issuing_allowed():
            return
        self._submit_request()
        self._schedule_next_arrival()
