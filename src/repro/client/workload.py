"""Workload specification shared by the client implementations."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class WorkloadSpec:
    """Describes the transactions a client generates.

    ``payload_size`` is Table I's ``psize``; ``write_fraction`` controls the
    put/get mix (the paper uses writes only, which remains the default);
    ``key_space`` bounds the number of distinct keys touched.
    """

    payload_size: int = 0
    write_fraction: float = 1.0
    key_space: int = 1024

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise ValueError("payload_size must be non-negative")
        if not 0.0 <= self.write_fraction <= 1.0:
            raise ValueError("write_fraction must be within [0, 1]")
        if self.key_space <= 0:
            raise ValueError("key_space must be positive")

    def operation_for(self, draw: float) -> str:
        """Map a uniform draw in [0, 1) to an operation kind."""
        return "put" if draw < self.write_fraction else "get"
