"""Client library: closed-loop and open-loop (Poisson) workload generators."""

from repro.client.client import ClientBase, ClosedLoopClient, PoissonClient
from repro.client.workload import WorkloadSpec

__all__ = ["ClientBase", "ClosedLoopClient", "PoissonClient", "WorkloadSpec"]
