"""Client library: workload generators (a registry-backed extension point)."""

from repro.client.client import (
    CLIENTS,
    ClientBase,
    ClosedLoopClient,
    PoissonClient,
    available_clients,
    register_client,
)
from repro.client.workload import WorkloadSpec

__all__ = [
    "CLIENTS",
    "ClientBase",
    "ClosedLoopClient",
    "PoissonClient",
    "WorkloadSpec",
    "available_clients",
    "register_client",
]
