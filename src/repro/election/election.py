"""Leader election: mapping views to designated leaders.

All strategies are deterministic functions of the view so that every replica
independently agrees on the leader without communication, as required by the
propose-vote scheme.  The ``master`` configuration parameter of Table I maps
to :class:`StaticLeaderElection`; the default (``master = 0``) is rotation.

Election schemes are an extension point: subclass :class:`LeaderElection`,
implement ``leader(view)`` (and ``from_config`` if the scheme needs more
than the node list), and register with :func:`register_election`::

    @register_election("reputation")
    class ReputationElection(LeaderElection):
        def leader(self, view):
            ...

``Configuration(election="reputation")`` then selects it everywhere.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Sequence, Type

from repro.crypto.digest import digest_fields
from repro.plugins import Registry

#: The leader-election extension point.  Values are LeaderElection
#: subclasses built via their ``from_config`` classmethod.
ELECTIONS: Registry[Type["LeaderElection"]] = Registry("election kind")


def register_election(name: str, *aliases: str, override: bool = False) -> Callable:
    """Class decorator registering a LeaderElection subclass."""
    return ELECTIONS.register(name, *aliases, override=override)


def available_elections() -> List[str]:
    """Canonical names of the registered election kinds."""
    return ELECTIONS.available()


class LeaderElection(ABC):
    """Deterministically selects the leader of each view."""

    def __init__(self, nodes: Sequence[str]) -> None:
        if not nodes:
            raise ValueError("election requires at least one node")
        self.nodes: List[str] = list(nodes)

    @classmethod
    def from_config(
        cls, nodes: Sequence[str], master: str = "", seed: int = 0
    ) -> "LeaderElection":
        """Build an instance from configuration values.

        The default implementation only needs the node list; schemes that use
        the deployment seed or the ``master`` id override this.
        """
        return cls(nodes)

    @abstractmethod
    def leader(self, view: int) -> str:
        """Return the node id of the leader for ``view``."""

    def is_leader(self, node_id: str, view: int) -> bool:
        """True if ``node_id`` leads ``view``."""
        return self.leader(view) == node_id


@register_election("round-robin", "rr", "rotation")
class RoundRobinElection(LeaderElection):
    """Rotate leadership through the node list, one view per node."""

    def leader(self, view: int) -> str:
        return self.nodes[view % len(self.nodes)]


@register_election("static", "master", "fixed")
class StaticLeaderElection(LeaderElection):
    """A single stable leader (PBFT-style), used when ``master`` is set."""

    def __init__(self, nodes: Sequence[str], master: str) -> None:
        super().__init__(nodes)
        if master not in self.nodes:
            raise ValueError(f"master {master!r} is not one of the nodes")
        self.master = master

    @classmethod
    def from_config(
        cls, nodes: Sequence[str], master: str = "", seed: int = 0
    ) -> "StaticLeaderElection":
        if not master:
            raise ValueError("static election requires a master node id")
        return cls(nodes, master)

    def leader(self, view: int) -> str:
        return self.master


@register_election("hash", "random")
class HashBasedElection(LeaderElection):
    """Pseudo-random rotation derived from a hash of the view and a seed.

    This is the "leader election based on hash functions" design choice the
    paper's model discussion mentions (§V-E); it removes the predictability
    of round-robin while staying deterministic across replicas.
    """

    def __init__(self, nodes: Sequence[str], seed: int = 0) -> None:
        super().__init__(nodes)
        self.seed = seed

    @classmethod
    def from_config(
        cls, nodes: Sequence[str], master: str = "", seed: int = 0
    ) -> "HashBasedElection":
        return cls(nodes, seed=seed)

    def leader(self, view: int) -> str:
        digest = digest_fields("leader", self.seed, view)
        index = int(digest[:16], 16) % len(self.nodes)
        return self.nodes[index]


def make_election(nodes: Sequence[str], master: str = "", kind: str = "round-robin", seed: int = 0) -> LeaderElection:
    """Build an election strategy from configuration values.

    ``master`` (a node id) takes precedence, matching Table I where a
    non-zero ``master`` selects a static leader; otherwise ``kind`` is looked
    up in the :data:`ELECTIONS` registry.
    """
    if master:
        return StaticLeaderElection(nodes, master)
    return ELECTIONS.get(kind).from_config(nodes, master=master, seed=seed)
