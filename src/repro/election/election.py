"""Leader election: mapping views to designated leaders.

All strategies are deterministic functions of the view so that every replica
independently agrees on the leader without communication, as required by the
propose-vote scheme.  The ``master`` configuration parameter of Table I maps
to :class:`StaticLeaderElection`; the default (``master = 0``) is rotation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Sequence

from repro.crypto.digest import digest_fields


class LeaderElection(ABC):
    """Deterministically selects the leader of each view."""

    def __init__(self, nodes: Sequence[str]) -> None:
        if not nodes:
            raise ValueError("election requires at least one node")
        self.nodes: List[str] = list(nodes)

    @abstractmethod
    def leader(self, view: int) -> str:
        """Return the node id of the leader for ``view``."""

    def is_leader(self, node_id: str, view: int) -> bool:
        """True if ``node_id`` leads ``view``."""
        return self.leader(view) == node_id


class RoundRobinElection(LeaderElection):
    """Rotate leadership through the node list, one view per node."""

    def leader(self, view: int) -> str:
        return self.nodes[view % len(self.nodes)]


class StaticLeaderElection(LeaderElection):
    """A single stable leader (PBFT-style), used when ``master`` is set."""

    def __init__(self, nodes: Sequence[str], master: str) -> None:
        super().__init__(nodes)
        if master not in self.nodes:
            raise ValueError(f"master {master!r} is not one of the nodes")
        self.master = master

    def leader(self, view: int) -> str:
        return self.master


class HashBasedElection(LeaderElection):
    """Pseudo-random rotation derived from a hash of the view and a seed.

    This is the "leader election based on hash functions" design choice the
    paper's model discussion mentions (§V-E); it removes the predictability
    of round-robin while staying deterministic across replicas.
    """

    def __init__(self, nodes: Sequence[str], seed: int = 0) -> None:
        super().__init__(nodes)
        self.seed = seed

    def leader(self, view: int) -> str:
        digest = digest_fields("leader", self.seed, view)
        index = int(digest[:16], 16) % len(self.nodes)
        return self.nodes[index]


def make_election(nodes: Sequence[str], master: str = "", kind: str = "round-robin", seed: int = 0) -> LeaderElection:
    """Build an election strategy from configuration values.

    ``master`` (a node id) takes precedence, matching Table I where a
    non-zero ``master`` selects a static leader.
    """
    if master:
        return StaticLeaderElection(nodes, master)
    if kind == "round-robin":
        return RoundRobinElection(nodes)
    if kind == "hash":
        return HashBasedElection(nodes, seed=seed)
    raise ValueError(f"unknown election kind {kind!r}")
