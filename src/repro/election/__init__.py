"""Leader election strategies (a registry-backed extension point)."""

from repro.election.election import (
    ELECTIONS,
    HashBasedElection,
    LeaderElection,
    RoundRobinElection,
    StaticLeaderElection,
    available_elections,
    make_election,
    register_election,
)

__all__ = [
    "ELECTIONS",
    "HashBasedElection",
    "LeaderElection",
    "RoundRobinElection",
    "StaticLeaderElection",
    "available_elections",
    "make_election",
    "register_election",
]
