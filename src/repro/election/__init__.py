"""Leader election strategies."""

from repro.election.election import (
    HashBasedElection,
    LeaderElection,
    RoundRobinElection,
    StaticLeaderElection,
    make_election,
)

__all__ = [
    "HashBasedElection",
    "LeaderElection",
    "RoundRobinElection",
    "StaticLeaderElection",
    "make_election",
]
