"""Deployment runner: the protocol stack over real TCP, real time, real keys.

This is the "implementation" axis of the paper's fig8.  The same
:class:`~repro.core.replica.Replica` (and Byzantine strategy subclasses),
pacemaker, sync/checkpoint managers, and clients that run in the
discrete-event model are wired to an :class:`~repro.transport.clock.AsyncioClock`
and an :class:`~repro.transport.asyncio_net.AsyncioTransport` instead — zero
protocol-class changes, which ``tests/test_transport.py`` pins down by
diffing the protocol modules' imports against this package.

What changes between the modes is exactly what the paper varies:

========================  ==========================  =========================
aspect                    model                       deploy
========================  ==========================  =========================
time                      virtual event clock         loop's monotonic clock
message fabric            modeled NIC + link delays   framed TCP streams
signatures                HMAC tags, cost *modeled*   Ed25519, cost *measured*
serialization             size-model estimate         real JSON encode/decode
========================  ==========================  =========================

The runner emits the same :class:`~repro.bench.runner.ExperimentResult` /
``RunMetrics`` record schema, so campaign storage, aggregation, and the
fig8 figure consume model and deployment records side by side.
"""

from __future__ import annotations

import asyncio
import time
from typing import Dict, List

from repro.bench.config import Configuration
from repro.bench.metrics import MetricsCollector
from repro.bench.profiles import cost_profile
from repro.bench.runner import ExperimentResult
from repro.checkpoint.manager import CheckpointSettings
from repro.client.client import CLIENTS, ClientBase
from repro.client.workload import WorkloadSpec
from repro.core.byzantine import STRATEGIES
from repro.core.replica import Replica, ReplicaSettings
from repro.crypto.keys import KeyRegistry
from repro.election.election import make_election
from repro.obs import trace as obs_trace
from repro.sim.random import RandomStreams
from repro.sync.manager import SyncSettings
from repro.transport.asyncio_net import AsyncioTransport
from repro.transport.clock import AsyncioClock
from repro.types.sizes import SizeModel


class DeploymentError(RuntimeError):
    """A deployment run failed (replica handler raised, cluster diverged)."""


class DeploymentRunner:
    """Launches an n-replica loopback cluster and drives the clients.

    Construction validates the configuration; :meth:`start` (a coroutine)
    binds sockets and starts replicas and clients; :meth:`run` sleeps out the
    configured horizon on the wall clock.  Tests drive crash/recover through
    ``runner.replicas[...]`` exactly as simulation tests do through the
    cluster.
    """

    def __init__(self, config: Configuration, host: str = "127.0.0.1") -> None:
        if config.mode != "deploy":
            config = config.replace(mode="deploy")
        config.validate()
        self.config = config
        self.host = host
        self.clock: AsyncioClock = None  # type: ignore[assignment]
        self.transport: AsyncioTransport = None  # type: ignore[assignment]
        self.registry = KeyRegistry(
            deployment_seed=config.seed, scheme=config.resolved_signing()
        )
        self.replicas: Dict[str, Replica] = {}
        self.clients: List[ClientBase] = []
        self.metrics = MetricsCollector(
            window_start=config.warmup, window_end=config.warmup + config.runtime
        )
        self.observer_id = config.node_ids()[0]
        self._started = False

    async def start(self) -> None:
        """Bind the transport and start every replica and client."""
        if self._started:
            raise RuntimeError("deployment already started")
        self._started = True
        config = self.config
        self.clock = AsyncioClock()
        self.transport = AsyncioTransport(host=self.host)
        streams = RandomStreams(seed=config.seed)
        node_ids = config.node_ids()
        election = make_election(
            node_ids, master=config.master, kind=config.election, seed=config.seed
        )
        settings = ReplicaSettings(
            block_size=config.block_size,
            mempool_capacity=config.mempool_capacity,
            view_timeout=config.view_timeout,
            propose_wait_after_tc=config.propose_wait_after_tc,
            sync=SyncSettings(
                enabled=config.sync_enabled,
                max_batch=config.sync_max_batch,
                fanout=config.sync_fanout,
            ),
            checkpoint=CheckpointSettings(
                interval=config.checkpoint_interval,
                snapshot_sync=config.snapshot_sync_enabled,
            ),
            quorum_threshold=config.quorum_threshold,
        )
        # Crypto/serialization cost is real wall-clock work here; charging
        # the configured model on top would double-count it.
        costs = cost_profile("measured")
        sizes = SizeModel()
        byzantine = set(config.byzantine_ids())
        self.metrics.observer = self.observer_id
        # Same observability seam as the simulation builder: replicas and
        # clients pick up the process-global tracer (timestamps come from the
        # shared AsyncioClock, so deploy traces use wall time since start).
        tracer = obs_trace.ACTIVE

        for node_id in node_ids:
            replica_cls = STRATEGIES.get(config.strategy) if node_id in byzantine else Replica
            replica = replica_cls(
                node_id,
                self.clock,
                self.transport,
                election,
                self.registry,
                node_ids,
                protocol=config.protocol,
                settings=settings,
                cost_model=costs,
                size_model=sizes,
                metrics=self.metrics if node_id == self.observer_id else None,
            )
            replica.sync.metrics = self.metrics
            replica.checkpoint.metrics = self.metrics
            if tracer is not None:
                replica.attach_tracer(tracer)
            self.replicas[node_id] = replica

        client_cls = CLIENTS.get(config.resolved_client())
        workload = WorkloadSpec(payload_size=config.payload_size)
        for client_id in config.client_ids():
            client = client_cls.from_config(
                client_id,
                self.clock,
                self.transport,
                streams,
                node_ids,
                workload=workload,
                size_model=sizes,
                metrics=self.metrics,
                config=config,
            )
            client.tracer = tracer
            self.clients.append(client)

        await self.transport.start()
        for replica in self.replicas.values():
            replica.start()
        stop_time = config.warmup + config.runtime
        for client in self.clients:
            client.start(stop_time=stop_time)

    async def run(self) -> None:
        """Let the cluster run for the configured horizon of wall time."""
        await asyncio.sleep(self.config.total_duration)
        self.raise_handler_errors()

    async def stop(self) -> None:
        """Stop timers and tear the transport down."""
        for replica in self.replicas.values():
            replica.pacemaker.stop()
        await self.transport.stop()

    def raise_handler_errors(self) -> None:
        """Re-raise the first exception any message handler raised."""
        if self.transport.errors:
            raise DeploymentError(
                f"{len(self.transport.errors)} handler error(s); first: "
                f"{self.transport.errors[0]!r}"
            ) from self.transport.errors[0]

    def honest_replicas(self) -> List[Replica]:
        """Replicas that follow the protocol."""
        byzantine = set(self.config.byzantine_ids())
        return [r for rid, r in self.replicas.items() if rid not in byzantine]

    def consistency_check(self) -> bool:
        """True if every honest replica's committed chain is a consistent prefix."""
        honest = self.honest_replicas()
        if not honest:
            return True
        min_height = min(r.forest.committed_height for r in honest)
        reference = honest[0].forest.consistency_hash(min_height)
        return all(r.forest.consistency_hash(min_height) == reference for r in honest)

    def result(self, elapsed: float) -> ExperimentResult:
        """Summarize the run into the shared campaign record schema."""
        metrics = self.metrics.summarize()
        metrics.wall_clock_seconds = elapsed
        metrics.events_per_second = (
            self.clock.processed_events / elapsed if elapsed > 0 else 0.0
        )
        observer = self.replicas[self.observer_id]
        return ExperimentResult(
            config=self.config,
            metrics=metrics,
            consistent=self.consistency_check(),
            highest_view=observer.pacemaker.stats.highest_view,
            timeline=self.metrics.throughput_timeline(
                bucket=0.5, end=self.config.total_duration
            ),
        )


async def deploy_and_run(config: Configuration, host: str = "127.0.0.1") -> ExperimentResult:
    """Coroutine running one full deployment: start, horizon, stop, result."""
    runner = DeploymentRunner(config, host=host)
    await runner.start()
    started = time.perf_counter()
    await runner.run()
    elapsed = time.perf_counter() - started
    await runner.stop()
    return runner.result(elapsed)


def run_deployment(config: Configuration, host: str = "127.0.0.1") -> ExperimentResult:
    """Run one deployment experiment to completion (blocking entry point).

    ``repro.bench.runner.run_experiment`` dispatches here when
    ``config.mode == "deploy"``, so everything built on ``run_experiment``
    (campaigns, the CLI, benchmarks) gains the deployment axis for free.
    """
    return asyncio.run(deploy_and_run(config, host=host))
