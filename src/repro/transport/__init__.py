"""Real-transport deployment mode: the protocol stack over asyncio TCP.

See :mod:`repro.transport.base` for the seam contract,
:mod:`repro.transport.runtime` for the deployment runner, and
``docs/ARCHITECTURE.md`` ("Transport seam & deployment mode") for the tour.
"""

from repro.transport.base import Clock, TimerHandle, Transport
from repro.transport.clock import AsyncioClock, AsyncioTimer
from repro.transport.asyncio_net import AsyncioTransport, TransportStats
from repro.transport.runtime import DeploymentError, DeploymentRunner, run_deployment

__all__ = [
    "Clock",
    "TimerHandle",
    "Transport",
    "AsyncioClock",
    "AsyncioTimer",
    "AsyncioTransport",
    "TransportStats",
    "DeploymentError",
    "DeploymentRunner",
    "run_deployment",
]
