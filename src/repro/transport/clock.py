"""Wall-clock :class:`~repro.transport.base.Clock` backed by asyncio.

The deployment runtime swaps this in for the discrete-event
:class:`~repro.sim.events.EventScheduler`.  Pacemaker view timers, client
request timeouts, and CPU-queue completions all become real asyncio timers
behind the same ``call_after``/``TimerHandle`` interface, so none of those
components change.

Time is reported relative to the clock's creation (``now`` starts near 0.0),
matching the simulation convention that a run begins at t=0 — metrics windows
like ``[warmup, warmup+runtime)`` work unmodified.
"""

from __future__ import annotations

import asyncio
from typing import Callable


class AsyncioTimer:
    """Timer handle mirroring :class:`repro.sim.events.Event` semantics."""

    __slots__ = ("_handle", "fired", "cancelled")

    def __init__(self) -> None:
        self._handle: asyncio.TimerHandle | None = None
        self.fired = False
        self.cancelled = False

    @property
    def pending(self) -> bool:
        """True while the timer has neither fired nor been cancelled."""
        return not self.fired and not self.cancelled

    def cancel(self) -> None:
        """Cancel the timer; a no-op once fired or already cancelled."""
        if self.pending and self._handle is not None:
            self._handle.cancel()
            self.cancelled = True


class AsyncioClock:
    """Monotonic wall clock + timers on the running event loop.

    Must be constructed inside a running loop (the deployment runner creates
    it from its entry coroutine).  ``processed_events`` counts fired timer
    callbacks so the host-perf ``events_per_second`` metric has a deployment
    analogue of the scheduler's event count.
    """

    def __init__(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._t0 = self._loop.time()
        self.processed_events = 0

    @property
    def now(self) -> float:
        """Seconds of monotonic wall time since the clock was created."""
        return self._loop.time() - self._t0

    def call_after(self, delay: float, callback: Callable, *args, **kwargs) -> AsyncioTimer:
        """Run ``callback(*args, **kwargs)`` after ``delay`` wall seconds.

        Unlike the event scheduler, a negative delay is clamped to zero
        rather than rejected: wall time advances while replica code runs, so
        a deadline computed "now" can already be marginally in the past.
        """
        timer = AsyncioTimer()

        def fire() -> None:
            timer.fired = True
            self.processed_events += 1
            callback(*args, **kwargs)

        timer._handle = self._loop.call_later(max(0.0, delay), fire)
        return timer

    def call_at(self, when: float, callback: Callable, *args, **kwargs) -> AsyncioTimer:
        """Run ``callback`` at absolute clock time ``when``."""
        return self.call_after(when - self.now, callback, *args, **kwargs)

    def post_after(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` wall seconds, no handle.

        The wall-clock analogue of the scheduler's fire-and-forget tier:
        nothing to cancel, so no :class:`AsyncioTimer` is allocated.
        """

        def fire() -> None:
            self.processed_events += 1
            callback(*args)

        self._loop.call_later(max(0.0, delay), fire)

    def post_at(self, when: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at absolute clock time ``when``, no handle."""
        self.post_after(when - self.now, callback, *args)
