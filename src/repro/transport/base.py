"""The transport seam: structural protocols the replica stack depends on.

The protocol classes, :class:`~repro.core.replica.Replica`, the pacemaker,
sync/checkpoint managers, and clients never import a concrete scheduler or
network.  They are written against two small structural interfaces:

* :class:`Clock` — ``now``, ``call_after``/``call_at`` returning a
  :class:`TimerHandle`.  The discrete-event
  :class:`~repro.sim.events.EventScheduler` satisfies it with virtual time;
  :class:`~repro.transport.clock.AsyncioClock` satisfies it with the event
  loop's monotonic wall clock.
* :class:`Transport` — ``register``/``send``/``broadcast`` plus
  crash/recover controls.  The simulated :class:`~repro.network.network.Network`
  satisfies it with modeled NIC/link delays;
  :class:`~repro.transport.asyncio_net.AsyncioTransport` satisfies it with
  framed messages over real TCP connections.

These are :class:`typing.Protocol` classes (structural, not nominal): the
simulation backends conform without importing this module, which is exactly
the property the import-isolation test in ``tests/test_transport.py`` pins
down — swapping the deployment backend in requires zero protocol-class edits.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol, runtime_checkable

from repro.types.messages import Message


@runtime_checkable
class TimerHandle(Protocol):
    """A cancellable timer returned by :meth:`Clock.call_after`."""

    @property
    def pending(self) -> bool:
        """True while the timer has neither fired nor been cancelled."""
        ...

    def cancel(self) -> None:
        """Cancel the timer; a no-op once fired or already cancelled."""
        ...


@runtime_checkable
class Clock(Protocol):
    """Time source and timer scheduler (virtual or wall-clock)."""

    @property
    def now(self) -> float:
        """Current time in seconds (simulated or monotonic wall time)."""
        ...

    def call_after(self, delay: float, callback: Callable, *args, **kwargs) -> TimerHandle:
        """Run ``callback`` after ``delay`` seconds."""
        ...

    def call_at(self, when: float, callback: Callable, *args, **kwargs) -> TimerHandle:
        """Run ``callback`` at absolute time ``when``."""
        ...

    def post_after(self, delay: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds, no handle (fast path)."""
        ...

    def post_at(self, when: float, callback: Callable, *args) -> None:
        """Run ``callback(*args)`` at absolute time ``when``, no handle."""
        ...


@runtime_checkable
class Transport(Protocol):
    """Message fabric connecting replicas and clients by node id."""

    def register(self, node_id: str, handler: Callable[[Message], None]) -> None:
        """Attach an endpoint; ``handler`` receives every delivered message."""
        ...

    def send(self, src: str, dst: str, message: Message) -> None:
        """Send one message; raises ``KeyError`` for unknown endpoints."""
        ...

    def broadcast(
        self, src: str, targets: Iterable[str], message: Message, include_self: bool = False
    ) -> None:
        """Send to every target (optionally looping back to the sender)."""
        ...

    def crash(self, node_id: str) -> None:
        """Stop delivering to and from ``node_id``."""
        ...

    def recover(self, node_id: str) -> None:
        """Resume delivery for a crashed endpoint."""
        ...

    def is_crashed(self, node_id: str) -> bool:
        """True while ``node_id`` is crashed."""
        ...
