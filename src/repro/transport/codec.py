"""Wire codec for the deployment transport: JSON payloads, length-prefixed.

The simulation never serializes — messages are Python objects handed between
replicas, and :class:`~repro.types.sizes.SizeModel` *estimates* their wire
size for the NIC model.  The real transport has to actually put them on a
socket, so this module gives every message kind in :mod:`repro.types`,
:mod:`repro.sync`, and :mod:`repro.checkpoint` a canonical JSON encoding,
framed with a 4-byte big-endian length prefix.

JSON (rather than a binary format) keeps frames debuggable with ``nc`` and
avoids any dependency; the measured-throughput comparison against the model
is honest as long as both modes pay their own serialization costs — the model
charges the size-model estimate, the deployment pays real
encode/decode + syscalls.

Round-trip property: ``decode_message(encode_message(m))`` reconstructs an
equal message for every kind (``message_id`` excluded — it is
``compare=False`` bookkeeping and each decode mints a fresh one).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Callable, Dict, Optional

from repro.checkpoint.messages import SnapshotRequest, SnapshotResponse
from repro.checkpoint.snapshot import Checkpoint
from repro.crypto.signatures import Signature
from repro.executor.kvstore import DedupState, KVSnapshot
from repro.sync.messages import BlockRequest, BlockResponse
from repro.types.block import Block
from repro.types.certificates import QuorumCertificate, Timeout, TimeoutCertificate, Vote
from repro.types.messages import (
    ClientReply,
    ClientRequest,
    Message,
    ProposalMessage,
    TimeoutCertificateMessage,
    TimeoutMessage,
    VoteMessage,
)
from repro.types.transaction import Transaction

_LENGTH_PREFIX = struct.Struct(">I")

#: Upper bound on a single frame; a peer announcing more is treated as
#: corrupt rather than allocated for (snapshots dominate and stay well under).
MAX_FRAME_BYTES = 64 * 1024 * 1024


class CodecError(ValueError):
    """A payload that cannot be encoded or decoded."""


# --------------------------------------------------------------------------
# value codecs (crypto + chain types)

def _enc_signature(sig: Signature) -> Dict[str, Any]:
    return {"signer": sig.signer, "digest": sig.digest, "tag": sig.tag.hex()}


def _dec_signature(data: Dict[str, Any]) -> Signature:
    return Signature(signer=data["signer"], digest=data["digest"], tag=bytes.fromhex(data["tag"]))


def _enc_vote(vote: Vote) -> Dict[str, Any]:
    return {
        "voter": vote.voter,
        "block_id": vote.block_id,
        "view": vote.view,
        "signature": _enc_signature(vote.signature),
    }


def _dec_vote(data: Dict[str, Any]) -> Vote:
    return Vote(
        voter=data["voter"],
        block_id=data["block_id"],
        view=data["view"],
        signature=_dec_signature(data["signature"]),
    )


def _enc_qc(qc: Optional[QuorumCertificate]) -> Optional[Dict[str, Any]]:
    if qc is None:
        return None
    return {
        "block_id": qc.block_id,
        "view": qc.view,
        "signers": sorted(qc.signers),
        "signatures": [_enc_signature(sig) for sig in qc.signatures],
    }


def _dec_qc(data: Optional[Dict[str, Any]]) -> Optional[QuorumCertificate]:
    if data is None:
        return None
    return QuorumCertificate(
        block_id=data["block_id"],
        view=data["view"],
        signers=frozenset(data["signers"]),
        signatures=tuple(_dec_signature(sig) for sig in data["signatures"]),
    )


def _enc_timeout(timeout: Timeout) -> Dict[str, Any]:
    return {
        "voter": timeout.voter,
        "view": timeout.view,
        "high_qc_view": timeout.high_qc_view,
        "signature": _enc_signature(timeout.signature),
    }


def _dec_timeout(data: Dict[str, Any]) -> Timeout:
    return Timeout(
        voter=data["voter"],
        view=data["view"],
        high_qc_view=data["high_qc_view"],
        signature=_dec_signature(data["signature"]),
    )


def _enc_tc(tc: TimeoutCertificate) -> Dict[str, Any]:
    return {
        "view": tc.view,
        "signers": sorted(tc.signers),
        "signatures": [_enc_signature(sig) for sig in tc.signatures],
        "high_qc_view": tc.high_qc_view,
    }


def _dec_tc(data: Dict[str, Any]) -> TimeoutCertificate:
    return TimeoutCertificate(
        view=data["view"],
        signers=frozenset(data["signers"]),
        signatures=tuple(_dec_signature(sig) for sig in data["signatures"]),
        high_qc_view=data["high_qc_view"],
    )


def _enc_transaction(tx: Transaction) -> Dict[str, Any]:
    return {
        "txid": tx.txid,
        "client_id": tx.client_id,
        "operation": tx.operation,
        "key": tx.key,
        "value": tx.value,
        "payload_size": tx.payload_size,
        "created_at": tx.created_at,
        "sequence": tx.sequence,
    }


def _dec_transaction(data: Dict[str, Any]) -> Transaction:
    return Transaction(
        txid=data["txid"],
        client_id=data["client_id"],
        operation=data["operation"],
        key=data["key"],
        value=data["value"],
        payload_size=data["payload_size"],
        created_at=data["created_at"],
        sequence=data["sequence"],
    )


def _enc_block(block: Block) -> Dict[str, Any]:
    return {
        "block_id": block.block_id,
        "view": block.view,
        "parent_id": block.parent_id,
        "height": block.height,
        "qc": _enc_qc(block.qc),
        "proposer": block.proposer,
        "transactions": [_enc_transaction(tx) for tx in block.transactions],
    }


def _dec_block(data: Dict[str, Any]) -> Block:
    return Block(
        block_id=data["block_id"],
        view=data["view"],
        parent_id=data["parent_id"],
        height=data["height"],
        qc=_dec_qc(data["qc"]),
        proposer=data["proposer"],
        transactions=tuple(_dec_transaction(tx) for tx in data["transactions"]),
    )


def _enc_kv_snapshot(snapshot: KVSnapshot) -> Dict[str, Any]:
    return {
        "items": [[key, value] for key, value in snapshot.items],
        "dedup": {
            "sessions": [
                [client, floor, list(pending)]
                for client, floor, pending in snapshot.dedup.sessions
            ],
            "extras": list(snapshot.dedup.extras),
        },
        "operations_applied": snapshot.operations_applied,
    }


def _dec_kv_snapshot(data: Dict[str, Any]) -> KVSnapshot:
    return KVSnapshot(
        items=tuple((key, value) for key, value in data["items"]),
        dedup=DedupState(
            sessions=tuple(
                (client, floor, tuple(pending))
                for client, floor, pending in data["dedup"]["sessions"]
            ),
            extras=tuple(data["dedup"]["extras"]),
        ),
        operations_applied=data["operations_applied"],
    )


def _enc_checkpoint(checkpoint: Optional[Checkpoint]) -> Optional[Dict[str, Any]]:
    if checkpoint is None:
        return None
    return {
        "height": checkpoint.height,
        "block": _enc_block(checkpoint.block),
        "qc": _enc_qc(checkpoint.qc),
        "committed_ids": list(checkpoint.committed_ids),
        "state": _enc_kv_snapshot(checkpoint.state),
        "taken_at": checkpoint.taken_at,
    }


def _dec_checkpoint(data: Optional[Dict[str, Any]]) -> Optional[Checkpoint]:
    if data is None:
        return None
    return Checkpoint(
        height=data["height"],
        block=_dec_block(data["block"]),
        qc=_dec_qc(data["qc"]),
        committed_ids=tuple(data["committed_ids"]),
        state=_dec_kv_snapshot(data["state"]),
        taken_at=data["taken_at"],
    )


# --------------------------------------------------------------------------
# message codecs

def _enc_proposal(msg: ProposalMessage) -> Dict[str, Any]:
    return {"block": _enc_block(msg.block), "view": msg.view, "forwarded_by": msg.forwarded_by}


def _dec_proposal(base: Dict[str, Any], body: Dict[str, Any]) -> ProposalMessage:
    return ProposalMessage(
        **base, block=_dec_block(body["block"]), view=body["view"],
        forwarded_by=body["forwarded_by"],
    )


def _enc_vote_msg(msg: VoteMessage) -> Dict[str, Any]:
    return {"vote": _enc_vote(msg.vote), "forwarded_by": msg.forwarded_by}


def _dec_vote_msg(base: Dict[str, Any], body: Dict[str, Any]) -> VoteMessage:
    return VoteMessage(**base, vote=_dec_vote(body["vote"]), forwarded_by=body["forwarded_by"])


def _enc_timeout_msg(msg: TimeoutMessage) -> Dict[str, Any]:
    return {"timeout": _enc_timeout(msg.timeout)}


def _dec_timeout_msg(base: Dict[str, Any], body: Dict[str, Any]) -> TimeoutMessage:
    return TimeoutMessage(**base, timeout=_dec_timeout(body["timeout"]))


def _enc_tc_msg(msg: TimeoutCertificateMessage) -> Dict[str, Any]:
    return {"tc": _enc_tc(msg.tc)}


def _dec_tc_msg(base: Dict[str, Any], body: Dict[str, Any]) -> TimeoutCertificateMessage:
    return TimeoutCertificateMessage(**base, tc=_dec_tc(body["tc"]))


def _enc_client_request(msg: ClientRequest) -> Dict[str, Any]:
    return {"transaction": _enc_transaction(msg.transaction)}


def _dec_client_request(base: Dict[str, Any], body: Dict[str, Any]) -> ClientRequest:
    return ClientRequest(**base, transaction=_dec_transaction(body["transaction"]))


def _enc_client_reply(msg: ClientReply) -> Dict[str, Any]:
    return {
        "txid": msg.txid,
        "committed_at": msg.committed_at,
        "replica": msg.replica,
        "status": msg.status,
    }


def _dec_client_reply(base: Dict[str, Any], body: Dict[str, Any]) -> ClientReply:
    return ClientReply(
        **base, txid=body["txid"], committed_at=body["committed_at"],
        replica=body["replica"], status=body["status"],
    )


def _enc_block_request(msg: BlockRequest) -> Dict[str, Any]:
    return {
        "target_block_id": msg.target_block_id,
        "known_block_id": msg.known_block_id,
        "known_height": msg.known_height,
    }


def _dec_block_request(base: Dict[str, Any], body: Dict[str, Any]) -> BlockRequest:
    return BlockRequest(
        **base, target_block_id=body["target_block_id"],
        known_block_id=body["known_block_id"], known_height=body["known_height"],
    )


def _enc_block_response(msg: BlockResponse) -> Dict[str, Any]:
    return {
        "blocks": [_enc_block(block) for block in msg.blocks],
        "target_id": msg.target_id,
        "tip_qc": _enc_qc(msg.tip_qc),
    }


def _dec_block_response(base: Dict[str, Any], body: Dict[str, Any]) -> BlockResponse:
    return BlockResponse(
        **base, blocks=tuple(_dec_block(block) for block in body["blocks"]),
        target_id=body["target_id"], tip_qc=_dec_qc(body["tip_qc"]),
    )


def _enc_snapshot_request(msg: SnapshotRequest) -> Dict[str, Any]:
    return {"known_height": msg.known_height}


def _dec_snapshot_request(base: Dict[str, Any], body: Dict[str, Any]) -> SnapshotRequest:
    return SnapshotRequest(**base, known_height=body["known_height"])


def _enc_snapshot_response(msg: SnapshotResponse) -> Dict[str, Any]:
    return {
        "checkpoint": _enc_checkpoint(msg.checkpoint),
        "responder_height": msg.responder_height,
    }


def _dec_snapshot_response(base: Dict[str, Any], body: Dict[str, Any]) -> SnapshotResponse:
    return SnapshotResponse(
        **base, checkpoint=_dec_checkpoint(body["checkpoint"]),
        responder_height=body["responder_height"],
    )


_ENCODERS: Dict[type, Callable[[Any], Dict[str, Any]]] = {
    ProposalMessage: _enc_proposal,
    VoteMessage: _enc_vote_msg,
    TimeoutMessage: _enc_timeout_msg,
    TimeoutCertificateMessage: _enc_tc_msg,
    ClientRequest: _enc_client_request,
    ClientReply: _enc_client_reply,
    BlockRequest: _enc_block_request,
    BlockResponse: _enc_block_response,
    SnapshotRequest: _enc_snapshot_request,
    SnapshotResponse: _enc_snapshot_response,
}

_DECODERS: Dict[str, Callable[[Dict[str, Any], Dict[str, Any]], Message]] = {
    "ProposalMessage": _dec_proposal,
    "VoteMessage": _dec_vote_msg,
    "TimeoutMessage": _dec_timeout_msg,
    "TimeoutCertificateMessage": _dec_tc_msg,
    "ClientRequest": _dec_client_request,
    "ClientReply": _dec_client_reply,
    "BlockRequest": _dec_block_request,
    "BlockResponse": _dec_block_response,
    "SnapshotRequest": _dec_snapshot_request,
    "SnapshotResponse": _dec_snapshot_response,
}


def encode_message(message: Message) -> bytes:
    """Serialize a message to its JSON wire form (unframed)."""
    encoder = _ENCODERS.get(type(message))
    if encoder is None:
        raise CodecError(f"no wire encoding for {type(message).__name__}")
    payload = {
        "kind": type(message).__name__,
        "sender": message.sender,
        "size_bytes": message.size_bytes,
        "body": encoder(message),
    }
    return json.dumps(payload, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> Message:
    """Parse one unframed JSON payload back into a message object."""
    try:
        payload = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CodecError(f"malformed frame: {exc}") from exc
    kind = payload.get("kind")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise CodecError(f"unknown message kind {kind!r}")
    base = {"sender": payload["sender"], "size_bytes": payload["size_bytes"]}
    try:
        return decoder(base, payload["body"])
    except (KeyError, TypeError, ValueError) as exc:
        raise CodecError(f"malformed {kind} body: {exc}") from exc


def frame(payload: bytes) -> bytes:
    """Prefix an encoded payload with its 4-byte big-endian length."""
    if len(payload) > MAX_FRAME_BYTES:
        raise CodecError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}")
    return _LENGTH_PREFIX.pack(len(payload)) + payload


async def read_frame(reader) -> Optional[bytes]:
    """Read one length-prefixed frame from an ``asyncio.StreamReader``.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`CodecError` on a truncated or oversized frame.
    """
    try:
        prefix = await reader.readexactly(_LENGTH_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise CodecError("connection closed mid-prefix") from exc
    (length,) = _LENGTH_PREFIX.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise CodecError(f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})")
    try:
        return await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise CodecError("connection closed mid-frame") from exc
